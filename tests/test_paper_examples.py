"""The paper's worked examples (Figures 1 and 2) replayed exactly.

Figure 1: the mechanism working — m' from p_j is delayed at p_k until m
from p_i arrives.  Figure 2: the possible delivery error — two concurrent
messages from p_1 and p_2 jointly cover f(p_i), so p_k wrongly believes
m' is causally ready and delivers it before m.

Note: the paper's text says ``R = 4`` with ``f(p_k) = {3, 4}``; entry 4
does not exist in a 4-entry vector, an obvious typo.  p_k's own keys play
no role in either scenario (it only receives), so we use ``{2, 3}``.
"""

import pytest

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.detector import BasicAlertDetector, RefinedAlertDetector
from repro.core.protocol import CausalBroadcastEndpoint

R = 4
KEYS = {
    "p_i": (0, 1),
    "p_j": (1, 2),
    "p_k": (2, 3),
    "p_1": (0, 3),
    "p_2": (1, 3),
}


def make_endpoint(name, detector=None):
    return CausalBroadcastEndpoint(
        process_id=name,
        clock=ProbabilisticCausalClock(R, KEYS[name]),
        detector=detector,
    )


class TestFigure1:
    """The normal path: m -> m' delivered in causal order at p_k."""

    def test_send_vectors_match_the_paper(self):
        p_i = make_endpoint("p_i")
        p_j = make_endpoint("p_j")
        m = p_i.broadcast("m")
        assert m.timestamp.as_tuple() == (1, 1, 0, 0)
        assert p_j.on_receive(m)  # delivered immediately
        assert p_j.clock.snapshot() == (1, 1, 0, 0)
        m_prime = p_j.broadcast("m'")
        assert m_prime.timestamp.as_tuple() == (1, 2, 1, 0)

    def test_m_prime_delayed_until_m_arrives(self):
        p_i = make_endpoint("p_i")
        p_j = make_endpoint("p_j")
        p_k = make_endpoint("p_k")
        m = p_i.broadcast("m")
        p_j.on_receive(m)
        m_prime = p_j.broadcast("m'")

        # p_k receives m' first: the delivery condition fails.
        assert p_k.on_receive(m_prime) == []
        assert p_k.pending_count == 1

        # The arrival of m unblocks m' in the same step.
        delivered = p_k.on_receive(m)
        assert [record.message.payload for record in delivered] == ["m", "m'"]
        assert p_k.pending_count == 0

    def test_no_alert_in_the_normal_path(self):
        p_i = make_endpoint("p_i", BasicAlertDetector())
        p_j = make_endpoint("p_j", BasicAlertDetector())
        p_k = make_endpoint("p_k", BasicAlertDetector())
        m = p_i.broadcast("m")
        p_j.on_receive(m)
        m_prime = p_j.broadcast("m'")
        p_k.on_receive(m_prime)
        delivered = p_k.on_receive(m)
        assert all(not record.alert for record in delivered)


class TestFigure2:
    """The delivery error: f(p_i) ⊆ f(p_1) ∪ f(p_2) lets m' bypass m."""

    def build_scenario(self, detector_factory=lambda: None):
        endpoints = {
            name: make_endpoint(name, detector_factory()) for name in KEYS
        }
        p_i, p_j, p_k = endpoints["p_i"], endpoints["p_j"], endpoints["p_k"]
        p_1, p_2 = endpoints["p_1"], endpoints["p_2"]

        m = p_i.broadcast("m")
        p_j.on_receive(m)
        m_prime = p_j.broadcast("m'")
        m_1 = p_1.broadcast("m1")
        m_2 = p_2.broadcast("m2")
        return endpoints, m, m_prime, m_1, m_2

    def test_concurrent_messages_cover_f_pi(self):
        _, m, m_prime, m_1, m_2 = self.build_scenario()
        covered = set(m_1.timestamp.sender_keys) | set(m_2.timestamp.sender_keys)
        assert set(m.timestamp.sender_keys) <= covered

    def test_wrong_delivery_happens_exactly_as_in_the_paper(self):
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario()
        p_k = endpoints["p_k"]
        p_k.on_receive(m_2)
        p_k.on_receive(m_1)
        assert p_k.clock.snapshot() == (1, 1, 0, 2)

        # m' is (wrongly) considered causally ready and delivered,
        # although m has not been received.
        delivered = p_k.on_receive(m_prime)
        assert [record.message.payload for record in delivered] == ["m'"]

    def test_single_concurrent_message_is_not_enough(self):
        # The paper: "the error occurs only if we have at least two
        # concurrent messages".  With only m_1 delivered, entry 1 of
        # f(p_i) stays uncovered and m' keeps waiting.
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario()
        p_k = endpoints["p_k"]
        p_k.on_receive(m_1)
        assert p_k.on_receive(m_prime) == []
        assert p_k.pending_count == 1

    def test_algorithm4_is_silent_on_the_early_message(self):
        # Alg. 4 checks the delivered message itself: m' still has its own
        # sender increment uncovered (V_k[1] = m'.V[1] - 1), so no alert
        # fires at m's bypass moment...
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario(BasicAlertDetector)
        p_k = endpoints["p_k"]
        p_k.on_receive(m_2)
        p_k.on_receive(m_1)
        (record,) = p_k.on_receive(m_prime)
        assert record.message.payload == "m'"
        assert not record.alert

    def test_algorithm4_alerts_on_the_late_message(self):
        # ...but when the bypassed m finally arrives, all of f(p_i) is
        # already covered and the alert fires — "within the propagation
        # time of the message", as the paper puts it.
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario(BasicAlertDetector)
        p_k = endpoints["p_k"]
        p_k.on_receive(m_2)
        p_k.on_receive(m_1)
        p_k.on_receive(m_prime)
        (record,) = p_k.on_receive(m)
        assert record.message.payload == "m"
        assert record.alert

    def test_algorithm5_also_alerts_with_a_witness_in_L(self):
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario(
            lambda: RefinedAlertDetector(max_entries=16)
        )
        p_k = endpoints["p_k"]
        p_k.on_receive(m_2)
        p_k.on_receive(m_1)
        p_k.on_receive(m_prime)
        (record,) = p_k.on_receive(m)
        # m' ∈ L dominates m on f(p_i): the refined alert keeps firing.
        assert record.alert

    def test_causal_order_restored_for_later_messages(self):
        # After the glitch, the system keeps working: a new message from
        # p_j (which has seen everything) is delivered normally at p_k.
        endpoints, m, m_prime, m_1, m_2 = self.build_scenario()
        p_j, p_k = endpoints["p_j"], endpoints["p_k"]
        p_k.on_receive(m_2)
        p_k.on_receive(m_1)
        p_k.on_receive(m_prime)
        p_k.on_receive(m)
        p_j.on_receive(m_1)
        p_j.on_receive(m_2)
        m_next = p_j.broadcast("next")
        delivered = p_k.on_receive(m_next)
        assert [record.message.payload for record in delivered] == ["next"]
