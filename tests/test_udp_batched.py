"""Tests for the syscall-batched UDP transport and its node integration.

Two layers:

* transport-level — the batch drain really hands multiple datagrams per
  wakeup as borrowed ``memoryview``s, the ``rx_batch`` budget re-fires
  instead of starving, sends gather into bursts, ``sendmmsg`` degrades
  gracefully, and ``IoStats`` counts it all;
* node-level — ``io_mode="batched"`` is observationally identical to
  ``io_mode="legacy"`` under drops/dups/reorder and across a journaled
  crash/restart (same scripted exchanges as the wire differential,
  driven through the batched socket driver).
"""

import asyncio
import socket

import pytest

from repro.api import NodeConfig, create_node
from repro.core.errors import ConfigurationError
from repro.net import BatchedUdpTransport, UdpTransport
from tests.test_wire_differential import (
    BATCHED,
    Exchange,
    run_scripted,
    wait_for,
)


class BatchedExchange(Exchange):
    """The wire-differential harness over the batched socket driver."""

    async def _create_transport(self, port):
        return await BatchedUdpTransport.create(port=port)


async def run_batched_scripted(wire_kwargs, **kwargs):
    names = ("a", "b", "c")
    exchange = BatchedExchange(
        names, wire_kwargs, kwargs.pop("seed"),
        data_root=kwargs.pop("data_root", None),
    )
    for name in names:
        await exchange.boot(name)
    rounds = kwargs.pop("rounds", 8)
    crash_restart = kwargs.pop("crash_restart", False)
    assert not kwargs
    for _ in range(rounds):
        for name in names:
            await exchange.broadcast(name)
        await asyncio.sleep(0.03)
    if crash_restart:
        await exchange.crash("b")
        for _ in range(3):
            for name in ("a", "c"):
                await exchange.broadcast(name)
            await asyncio.sleep(0.05)
        await exchange.restart("b")
        for name in names:
            await exchange.broadcast(name)
    assert await wait_for(exchange.converged), (
        f"no convergence: sent={len(exchange.sent)}, "
        f"delivered={ {n: len(o) for n, o in exchange.order.items()} }"
    )
    exchange.assert_observations()
    await exchange.close()
    return exchange


class TestBatchedTransport:
    def test_roundtrip_over_loopback(self):
        async def scenario():
            rx = await BatchedUdpTransport.create()
            tx = await BatchedUdpTransport.create()
            got = []
            rx.set_receiver(lambda data, addr: got.append(bytes(data)))
            await tx.send(rx.local_address, b"hello")
            assert await wait_for(lambda: got == [b"hello"])
            await tx.close()
            await rx.close()

        asyncio.run(scenario())

    def test_burst_drains_in_batches_of_views(self):
        """A flood sent in one event-loop tick arrives through the
        batch callback as memoryviews, several per wakeup."""

        async def scenario():
            rx = await BatchedUdpTransport.create(rx_batch=64)
            tx = await BatchedUdpTransport.create(tx_batch=64)
            batches = []
            rx.set_batch_receiver(
                lambda batch: batches.append([bytes(d) for d, _ in batch])
            )
            seen_types = set()
            original = rx._batch_receiver

            def spy(batch):
                seen_types.update(type(data) for data, _ in batch)
                original(batch)

            rx.set_batch_receiver(spy)
            count = 24
            for i in range(count):
                tx.send_now(rx.local_address, b"m%03d" % i)
            assert await wait_for(
                lambda: sum(len(b) for b in batches) == count
            )
            assert seen_types == {memoryview}
            flattened = [d for batch in batches for d in batch]
            assert flattened == [b"m%03d" % i for i in range(count)]
            # The whole point: fewer wakeups than datagrams.
            stats = rx.io_stats
            assert stats.rx_datagrams == count
            assert stats.rx_wakeups < count
            assert stats.rx_batch_max > 1
            # And the send side really burst.
            assert tx.io_stats.tx_datagrams == count
            assert tx.io_stats.tx_batch_max > 1
            await tx.close()
            await rx.close()

        asyncio.run(scenario())

    def test_rx_budget_exhaustion_refires_instead_of_starving(self):
        """More pending datagrams than rx_batch: the level-triggered
        reader must fire again and drain the rest."""

        async def scenario():
            rx = await BatchedUdpTransport.create(rx_batch=2)
            tx = await BatchedUdpTransport.create()
            got = []
            rx.set_receiver(lambda data, addr: got.append(bytes(data)))
            for i in range(9):
                tx.send_now(rx.local_address, b"%d" % i)
            assert await wait_for(lambda: len(got) == 9)
            assert rx.io_stats.rx_budget_exhausted > 0
            assert rx.io_stats.rx_batch_max == 2
            await tx.close()
            await rx.close()

        asyncio.run(scenario())

    def test_oversized_datagram_rejected(self):
        async def scenario():
            transport = await BatchedUdpTransport.create()
            with pytest.raises(ConfigurationError):
                transport.send_now(("127.0.0.1", 9), b"x" * 70_000)
            with pytest.raises(ConfigurationError):
                await transport.send(("127.0.0.1", 9), b"x" * 70_000)
            await transport.close()

        asyncio.run(scenario())

    def test_batch_knob_validation(self):
        async def scenario():
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.setblocking(False)
            sock.bind(("127.0.0.1", 0))
            loop = asyncio.get_running_loop()
            try:
                with pytest.raises(ConfigurationError):
                    BatchedUdpTransport(sock, loop, rx_batch=0)
                with pytest.raises(ConfigurationError):
                    BatchedUdpTransport(sock, loop, tx_batch=-1)
            finally:
                sock.close()

        asyncio.run(scenario())

    def test_local_address_survives_close(self):
        async def scenario():
            transport = await BatchedUdpTransport.create()
            address = transport.local_address
            await transport.close()
            assert transport.local_address == address

        asyncio.run(scenario())

    def test_mmsg_roundtrip_or_clean_fallback(self):
        """With mmsg requested the transport either arms the
        sendmmsg(2) burst path (Linux/AF_INET) and delivers through it,
        or silently stays on the sendto loop — never an error."""

        async def scenario():
            rx = await BatchedUdpTransport.create()
            tx = await BatchedUdpTransport.create(mmsg=True)
            got = []
            rx.set_receiver(lambda data, addr: got.append(bytes(data)))
            for i in range(12):
                tx.send_now(rx.local_address, b"mm%d" % i)
            assert await wait_for(lambda: len(got) == 12)
            assert sorted(got) == sorted(b"mm%d" % i for i in range(12))
            if tx.mmsg_active:
                assert tx.io_stats.tx_mmsg_calls > 0
                assert tx.io_stats.tx_mmsg_datagrams == 12
            await tx.close()
            await rx.close()

        asyncio.run(scenario())


class TestNodeIntegration:
    def test_io_mode_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(io_mode="zerocopy")
        with pytest.raises(ConfigurationError):
            NodeConfig(rx_batch=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(tx_batch=0)

    def test_create_node_dispatches_io_mode(self):
        async def scenario():
            for io_mode, expected in (
                ("batched", BatchedUdpTransport),
                ("legacy", UdpTransport),
                ("mmsg", BatchedUdpTransport),
            ):
                node = await create_node("n", NodeConfig(r=8, io_mode=io_mode))
                assert type(node.transport) is expected
                await node.close()

        asyncio.run(scenario())

    def test_io_metrics_exported(self):
        """The transport's IoStats surface through the node registry as
        repro_io_* series, alongside the codec zero-copy counters."""

        async def scenario():
            a = await create_node("a", NodeConfig(r=16))
            b = await create_node("b", NodeConfig(r=16))
            a.add_peer(b.local_address)
            b.add_peer(a.local_address)
            for i in range(10):
                await a.broadcast(i)
            assert await wait_for(lambda: len(b.deliveries) == 10)
            snapshot = a.metrics.snapshot()
            counters = snapshot["counters"]
            assert counters["repro_io_rx_datagrams_total"] > 0
            assert counters["repro_io_tx_datagrams_total"] > 0
            assert counters["repro_io_rx_wakeups_total"] > 0
            assert counters["repro_codec_frames_decoded_total"] > 0
            # DATA payload views accrue on the receiving side.
            rx_counters = b.metrics.snapshot()["counters"]
            assert rx_counters["repro_codec_data_payload_views_total"] > 0
            assert "repro_io_rx_batch_datagrams" in snapshot["histograms"]
            await a.close()
            await b.close()

        asyncio.run(scenario())


class TestIoModeEquivalence:
    def test_lossy_multiparty_exchange(self):
        """Drops + dups + reorders through the batched driver: the same
        scripted exchange as the legacy driver delivers the same message
        sets, per-sender FIFO, zero oracle violations (asserted inside
        both harnesses)."""

        async def scenario():
            legacy, _ = await run_scripted(BATCHED, seed=31)
            batched = await run_batched_scripted(BATCHED, seed=31)
            for name in legacy.order:
                assert set(legacy.order[name]) == set(batched.order[name])

        asyncio.run(scenario())

    def test_crash_restart(self, tmp_path):
        """A journaled crash/restart mid-stream over the batched driver:
        retained (owned) bytes must survive the receive ring, so the
        journal replays cleanly and convergence matches the legacy run."""

        async def scenario():
            legacy, _ = await run_scripted(
                BATCHED, seed=47, data_root=tmp_path / "legacy",
                crash_restart=True,
            )
            batched = await run_batched_scripted(
                BATCHED, seed=47, data_root=tmp_path / "batched",
                crash_restart=True,
            )
            for name in legacy.order:
                assert set(legacy.order[name]) == set(batched.order[name])

        asyncio.run(scenario())

    def test_single_sender_total_order_is_identical(self):
        """One sender: delivery order is fully determined (seq order),
        so the batched driver must produce identical sequences."""

        async def scenario():
            orders = {}
            for label, cls in (("legacy", Exchange), ("batched", BatchedExchange)):
                names = ("tx", "rx1", "rx2")
                exchange = cls(names, BATCHED, seed=59)
                for name in names:
                    await exchange.boot(name)
                for _ in range(20):
                    await exchange.broadcast("tx")
                assert await wait_for(exchange.converged)
                exchange.assert_observations()
                orders[label] = {
                    name: list(exchange.order[name]) for name in ("rx1", "rx2")
                }
                await exchange.close()
            assert orders["legacy"] == orders["batched"]
            for order in orders["batched"].values():
                assert order == [("tx", i) for i in range(1, 21)]

        asyncio.run(scenario())
