"""Tests for the ground-truth causality oracle (Section 5.4.1)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, SimulationError, UnknownProcessError
from repro.sim.oracle import CausalityOracle, DeliveryVerdict


def fresh_oracle(n=3):
    oracle = CausalityOracle(capacity=n)
    for node in range(n):
        oracle.register_node(node)
    return oracle


class TestRegistration:
    def test_slots_dense(self):
        oracle = fresh_oracle(3)
        assert [oracle.slot_of(i) for i in range(3)] == [0, 1, 2]

    def test_duplicate_registration_rejected(self):
        oracle = fresh_oracle(2)
        with pytest.raises(SimulationError):
            oracle.register_node(0)

    def test_capacity_enforced(self):
        oracle = fresh_oracle(2)
        with pytest.raises(SimulationError):
            oracle.register_node("extra")

    def test_unknown_node_rejected(self):
        oracle = fresh_oracle(2)
        with pytest.raises(UnknownProcessError):
            oracle.slot_of("ghost")

    def test_initial_knowledge(self):
        oracle = CausalityOracle(capacity=3)
        oracle.register_node("old")
        oracle.on_send("old", ("old", 1), now=0.0, fanout=1)
        knowledge = np.array([1, 0, 0], dtype=np.int64)
        oracle.register_node("newcomer", initial_knowledge=knowledge)
        # The newcomer "knows" old's first message: a later message from
        # old that causally follows it is correct at the newcomer.
        oracle.on_send("old", ("old", 2), now=1.0, fanout=1)
        verdict = oracle.classify_delivery("newcomer", ("old", 2), now=2.0)
        assert verdict.verdict is DeliveryVerdict.CORRECT

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            CausalityOracle(capacity=0)


class TestClassification:
    def test_in_order_chain_is_correct(self):
        oracle = fresh_oracle(3)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=2)
        assert oracle.classify_delivery(1, ("m", 1), 10.0).verdict is DeliveryVerdict.CORRECT
        assert oracle.classify_delivery(2, ("m", 1), 12.0).verdict is DeliveryVerdict.CORRECT
        counters = oracle.totals
        assert counters.correct == 2 and counters.violations == 0

    def test_fifo_violation_detected(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        oracle.on_send(0, ("m", 2), now=1.0, fanout=1)
        # Node 1 delivers the second message first: proven violation.
        verdict = oracle.classify_delivery(1, ("m", 2), 5.0)
        assert verdict.verdict is DeliveryVerdict.VIOLATION

    def test_bypassed_message_is_ambiguous(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        oracle.on_send(0, ("m", 2), now=1.0, fanout=1)
        oracle.classify_delivery(1, ("m", 2), 5.0)  # violation + merge
        late = oracle.classify_delivery(1, ("m", 1), 6.0)
        assert late.verdict is DeliveryVerdict.AMBIGUOUS

    def test_cross_sender_violation(self):
        oracle = fresh_oracle(3)
        # Node 0 broadcasts m1; node 1 delivers it then broadcasts m2.
        oracle.on_send(0, ("a", 1), now=0.0, fanout=2)
        oracle.classify_delivery(1, ("a", 1), 10.0)
        oracle.on_send(1, ("b", 1), now=11.0, fanout=2)
        # Node 2 delivers m2 before m1: violation (m1 -> m2).
        verdict = oracle.classify_delivery(2, ("b", 1), 15.0)
        assert verdict.verdict is DeliveryVerdict.VIOLATION
        # And m1 afterwards is ambiguous.
        assert oracle.classify_delivery(2, ("a", 1), 16.0).verdict is (
            DeliveryVerdict.AMBIGUOUS
        )

    def test_concurrent_messages_any_order_correct(self):
        oracle = fresh_oracle(3)
        oracle.on_send(0, ("a", 1), now=0.0, fanout=2)
        oracle.on_send(1, ("b", 1), now=0.0, fanout=2)
        assert oracle.classify_delivery(2, ("b", 1), 5.0).verdict is DeliveryVerdict.CORRECT
        assert oracle.classify_delivery(2, ("a", 1), 6.0).verdict is DeliveryVerdict.CORRECT

    def test_latency_reported(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=100.0, fanout=1)
        assert oracle.classify_delivery(1, ("m", 1), 150.0).latency_ms == 50.0

    def test_eps_bounds(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        oracle.on_send(0, ("m", 2), now=1.0, fanout=1)
        oracle.classify_delivery(1, ("m", 2), 5.0)
        oracle.classify_delivery(1, ("m", 1), 6.0)
        counters = oracle.totals
        assert counters.eps_min == pytest.approx(0.5)
        assert counters.eps_max == pytest.approx(1.0)

    def test_per_node_counters(self):
        oracle = fresh_oracle(3)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=2)
        oracle.classify_delivery(1, ("m", 1), 5.0)
        assert oracle.per_node[1].deliveries == 1
        assert oracle.per_node[2].deliveries == 0


class TestBookkeeping:
    def test_records_freed_after_full_fanout(self):
        oracle = fresh_oracle(3)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=2)
        assert oracle.outstanding_messages == 1
        oracle.classify_delivery(1, ("m", 1), 5.0)
        oracle.classify_delivery(2, ("m", 1), 6.0)
        assert oracle.outstanding_messages == 0

    def test_classify_after_free_raises(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        oracle.classify_delivery(1, ("m", 1), 5.0)
        with pytest.raises(SimulationError):
            oracle.classify_delivery(1, ("m", 1), 6.0)

    def test_duplicate_send_rejected(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        with pytest.raises(SimulationError):
            oracle.on_send(0, ("m", 1), now=1.0, fanout=1)

    def test_adjust_fanout_frees(self):
        oracle = fresh_oracle(3)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=2)
        oracle.classify_delivery(1, ("m", 1), 5.0)
        oracle.adjust_fanout(("m", 1), -1)  # the other receiver left
        assert oracle.outstanding_messages == 0

    def test_adjust_unknown_is_noop(self):
        oracle = fresh_oracle(2)
        oracle.adjust_fanout(("ghost", 1), -1)

    def test_true_clock_inspection(self):
        oracle = fresh_oracle(2)
        oracle.on_send(0, ("m", 1), now=0.0, fanout=1)
        assert list(oracle.true_clock_of(0)) == [1, 0]
        oracle.classify_delivery(1, ("m", 1), 5.0)
        assert list(oracle.true_clock_of(1)) == [1, 0]
