"""Dynamic membership: view handshake, eviction, recycling, persistence.

Unit tests cover the config, the view value object, and the coordinator
rule; the integration tests run real UDP nodes through the full JOIN /
LEAVE / eviction lifecycle (aggressive timers, loopback only).  The
churn *soak* — bigger group, 25% loss, metrics artifacts — lives in
``test_churn_soak.py``.
"""

import asyncio

import pytest

from repro.api import NodeConfig, create_node
from repro.core.codec import MemberRecord
from repro.core.errors import ConfigurationError, MembershipError
from repro.core.keyspace import PerfectKeyAssigner
from repro.net.membership import GroupMembership, GroupView, MembershipConfig


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def quick_config(**overrides):
    base = dict(
        r=32, k=2,
        ack_timeout=0.02,
        anti_entropy_interval=0.1,
        heartbeat_interval=0.05,
        quarantine_after=0.3,
        membership=True,
        join_timeout=0.5,
        join_retries=4,
        evict_after=0.5,
        view_announce_interval=0.1,
    )
    base.update(overrides)
    return NodeConfig(**base)


class TestMembershipConfig:
    def test_defaults_valid(self):
        config = MembershipConfig()
        assert config.join_retries >= 0

    @pytest.mark.parametrize(
        "field, value",
        [
            ("join_timeout", 0.0),
            ("join_retries", -1),
            ("join_backoff", 0.5),
            ("evict_after", -1.0),
            ("announce_interval", 0.0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            MembershipConfig(**{field: value})

    def test_node_config_seed_peers_require_membership(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(seed_peers=(("127.0.0.1", 1),))

    def test_node_config_validates_membership_knobs(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(membership=True, join_timeout=-1.0)


class TestGroupView:
    def make(self):
        return GroupView(
            7,
            (
                MemberRecord("b", ("h", 2), (2, 3)),
                MemberRecord("a", ("h", 1), (0, 1)),
            ),
        )

    def test_get_by_id(self):
        view = self.make()
        assert view.get("a").address == ("h", 1)
        assert view.get("zz") is None

    def test_by_address(self):
        view = self.make()
        assert view.by_address(("h", 2)).node_id == "b"
        assert view.by_address(("h", 9)) is None

    def test_member_ids(self):
        assert sorted(self.make().member_ids()) == ["a", "b"]


class TestLifecycle:
    def test_bootstrap_makes_view_one(self):
        async def scenario():
            node = await create_node("solo", quick_config())
            membership = node.membership
            assert membership.joined
            assert membership.view.view_id == 1
            me = membership.view.get("solo")
            assert me.address == node.local_address
            assert me.keys == tuple(node.endpoint.clock.own_keys)
            # The ledger mirrors the view.
            assert membership.assigner.lookup("solo").keys == me.keys
            assert membership.is_coordinator()
            await node.close()

        asyncio.run(scenario())

    def test_join_installs_view_and_delivers_post_join_traffic(self):
        async def scenario():
            a = await create_node("a", quick_config())
            for i in range(3):
                await a.broadcast(f"pre-{i}")
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            assert b.membership.joined
            assert b.membership.view.view_id == 2
            assert sorted(b.membership.view.member_ids()) == ["a", "b"]
            assert await wait_for(lambda: a.membership.view.view_id == 2)
            # The frontier transfer: a's pre-join messages are covered,
            # not replayed (b starts from a's delivered state).
            assert len(b.deliveries) == 0
            await a.broadcast("post")
            assert await wait_for(
                lambda: "post" in b.delivered_payloads()
            ), "joiner never delivered post-join traffic"
            assert b.endpoint.stats.duplicates == 0
            # And the transferred vector keeps causality intact the
            # other way: the joiner's broadcasts deliver at the founder.
            await b.broadcast("from-joiner")
            assert await wait_for(
                lambda: "from-joiner" in a.delivered_payloads()
            )
            await b.close()
            await a.close()

        asyncio.run(scenario())

    def test_join_redirected_to_coordinator(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            # c only knows b; b is not the coordinator ('a' < 'b'), so
            # its rejection ack must redirect c to a.
            c = await create_node(
                "c", quick_config(seed_peers=(b.local_address,))
            )
            assert c.membership.joined
            assert sorted(c.membership.view.member_ids()) == ["a", "b", "c"]
            for node in (c, b, a):
                await node.close()

        asyncio.run(scenario())

    def test_join_exhausts_retries_without_seeds(self):
        async def scenario():
            config = quick_config(
                seed_peers=(("127.0.0.1", 1),),  # nobody listens there
                join_timeout=0.05, join_retries=1,
            )
            with pytest.raises(MembershipError):
                await create_node("lost", config)

        asyncio.run(scenario())

    def test_graceful_leave_shrinks_the_view(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            b_address = b.local_address
            await b.membership.leave()
            await b.close()
            assert await wait_for(
                lambda: a.membership.view.member_ids() == ("a",)
            ), "leaver never removed from the view"
            assert a.membership.leaves == 1
            assert "b" not in a.membership.assigner
            assert b_address not in a.peers
            await a.close()

        asyncio.run(scenario())

    def test_quarantine_ages_into_eviction_and_purges_state(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            await b.broadcast("doomed")
            assert await wait_for(lambda: "doomed" in a.delivered_payloads())
            assert len(a.store) > 0
            b_address = b.local_address
            await b.close()  # dies silently: no LEAVE
            assert await wait_for(
                lambda: a.membership.view.member_ids() == ("a",), timeout=10.0
            ), "silent peer never evicted"
            assert a.membership.evictions == 1
            # Eviction purged the departed sender's runtime state.
            assert "b" not in a.membership.assigner
            assert b_address not in a.peers
            assert "b" not in a.store.frontiers()
            await a.close()

        asyncio.run(scenario())

    def test_stale_frames_from_evicted_peer_dropped(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            b_address = b.local_address
            # Evict b at a directly (the scenario a partitioned
            # coordinator resolves through quarantine aging).
            a.membership._remove_member("b")
            assert a.membership.view.member_ids() == ("a",)
            before = a.stale_frames
            await b.broadcast("too-late")
            assert await wait_for(lambda: a.stale_frames > before)
            assert "too-late" not in a.delivered_payloads()
            # Warn-once: the mark survives, the log does not repeat.
            assert b_address in a._stale_warned
            await b.close()
            await a.close()

        asyncio.run(scenario())


class TestKeyRecycling:
    def test_leavers_keys_recycled_to_next_joiner(self):
        async def scenario():
            # A perfect assigner recycles slots LIFO, which makes the
            # recycling observable as exact key reuse.
            a = await create_node(
                "a", quick_config(), assigner=PerfectKeyAssigner(32, 2)
            )
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            b_keys = tuple(b.endpoint.clock.own_keys)
            await b.membership.leave()
            await b.close()
            assert await wait_for(
                lambda: a.membership.view.member_ids() == ("a",)
            )
            c = await create_node(
                "c", quick_config(seed_peers=(a.local_address,))
            )
            assert tuple(c.endpoint.clock.own_keys) == b_keys, (
                "released keys were not recycled to the next joiner"
            )
            await c.close()
            await a.close()

        asyncio.run(scenario())


class TestPersistence:
    def test_bootstrap_view_survives_restart(self, tmp_path):
        async def scenario():
            config = quick_config(data_dir=str(tmp_path / "solo"))
            node = await create_node("solo", config)
            await node.broadcast("one")
            port = node.local_address[1]
            view_id = node.membership.view.view_id
            keys = tuple(node.endpoint.clock.own_keys)
            await node.close()

            node2 = await create_node("solo", config.replace(port=port))
            assert node2.recovered is not None
            assert node2.recovered.view is not None
            assert node2.membership.view.view_id == view_id
            assert node2.membership.joined
            assert tuple(node2.endpoint.clock.own_keys) == keys
            await node2.close()

        asyncio.run(scenario())

    def test_joiner_rejoins_consistently_after_restart(self, tmp_path):
        async def scenario():
            a = await create_node("a", quick_config())
            b_config = quick_config(
                seed_peers=(a.local_address,),
                data_dir=str(tmp_path / "b"),
            )
            b = await create_node("b", b_config)
            granted = tuple(b.endpoint.clock.own_keys)
            await b.broadcast("alive")
            assert await wait_for(lambda: "alive" in a.delivered_payloads())
            port = b.local_address[1]
            await b.close()  # crash: no LEAVE

            # Restart before eviction heals silently; the JOIN handshake
            # is idempotent, so b keeps its identity and keys.
            b2 = await create_node("b", b_config.replace(port=port))
            assert b2.recovered is not None
            assert b2.membership.joined
            assert tuple(b2.endpoint.clock.own_keys) == granted
            assert sorted(b2.membership.view.member_ids()) == ["a", "b"]
            await b2.broadcast("again")
            assert await wait_for(lambda: "again" in a.delivered_payloads())
            await b2.close()
            await a.close()

        asyncio.run(scenario())


class TestMetrics:
    def test_view_gauges_exported(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            snapshot = a.metrics.snapshot()
            gauges = snapshot["gauges"]
            counters = snapshot["counters"]
            assert gauges["repro_membership_view_id"] == 2
            assert gauges["repro_membership_view_size"] == 2
            assert counters["repro_membership_joins_admitted_total"] == 1
            assert counters["repro_membership_view_changes_total"] >= 2
            joiner = b.metrics.snapshot()
            assert joiner["counters"]["repro_membership_join_attempts_total"] >= 1
            await b.close()
            await a.close()

        asyncio.run(scenario())

    def test_double_attach_rejected(self):
        async def scenario():
            node = await create_node("solo", quick_config())
            with pytest.raises(ConfigurationError):
                GroupMembership(node, MembershipConfig())
            await node.close()

        asyncio.run(scenario())
