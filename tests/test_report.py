"""Tests for the markdown report builder."""

import pytest

from repro.analysis.report import ClaimCheck, ExperimentSection, ReportBuilder
from repro.analysis.stats import proportion_estimate
from repro.core.errors import ConfigurationError


class TestExperimentSection:
    def test_render_contains_table_and_config(self):
        section = ExperimentSection(
            title="Figure X",
            description="What it shows.",
            configuration={"R": 100, "K": 4},
            headers=["k", "eps"],
        )
        section.add_row(1, 0.01)
        section.add_row(2, 0.002)
        text = section.render()
        assert "## Figure X" in text
        assert "R=100" in text
        assert "| k | eps |" in text
        assert "0.002" in text

    def test_row_width_validated(self):
        section = ExperimentSection(title="t", headers=["a", "b"])
        with pytest.raises(ConfigurationError):
            section.add_row(1)

    def test_claims_render_with_markers(self):
        section = ExperimentSection(title="t")
        section.check("optimum is interior", True, "K=3 beats K=1 and K=8")
        section.check("something else", False)
        text = section.render()
        assert "✅ optimum is interior" in text
        assert "❌ something else" in text
        assert not section.all_claims_pass

    def test_estimate_formatting(self):
        section = ExperimentSection(title="t", headers=["x", "eps"])
        section.add_row(1, proportion_estimate(5, 1000))
        assert "[" in section.render()


class TestReportBuilder:
    def test_document_structure(self):
        report = ReportBuilder("My repro", preamble="Intro text.")
        section = report.section("Exp 1", headers=["a"])
        section.add_row(1)
        section.check("claim", True)
        text = report.render()
        assert text.startswith("# My repro")
        assert "Intro text." in text
        assert "## Exp 1" in text
        assert report.all_claims_pass

    def test_failing_sections_flagged_up_top(self):
        report = ReportBuilder("r")
        bad = report.section("Bad Exp")
        bad.check("broken claim", False)
        text = report.render()
        assert "Attention" in text
        assert "Bad Exp" in text

    def test_write_to_file(self, tmp_path):
        report = ReportBuilder("r")
        report.section("s").check("c", True)
        target = tmp_path / "report.md"
        report.write(str(target))
        assert "# r" in target.read_text()

    def test_add_sweep_default_columns(self):
        import dataclasses

        from repro.analysis.sweep import sweep_parameter
        from repro.sim import PoissonWorkload, SimulationConfig

        base = SimulationConfig(
            n_nodes=8, r=16, k=2, duration_ms=3000.0,
            workload=PoissonWorkload(700.0),
        )
        points = sweep_parameter(
            base, [2, 3],
            lambda cfg, k: dataclasses.replace(cfg, k=k),
            repeats=1,
        )
        section = ExperimentSection(title="sweep")
        section.add_sweep(points)
        text = section.render()
        assert "| value | eps_min |" in text
        assert len(section.rows) == 2
