"""Smoke tests: every example script parses, and the fast ones run.

The examples double as living documentation; these tests keep them from
rotting.  The slower simulation-driven ones are compile-checked here and
exercised in full by the documentation workflow (they also run during
development via ``python examples/<name>.py``).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "collaborative_editing.py",
    "churn_membership.py",
    "alert_and_recovery.py",
    "clock_family_tour.py",
    "async_chat.py",
    "partition_heal.py",
]

# Examples cheap enough to execute inside the unit-test run.
FAST_EXAMPLES = ["alert_and_recovery.py", "async_chat.py"]


class TestExamplesCompile:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_compiles(self, name):
        path = EXAMPLES_DIR / name
        assert path.exists(), f"missing example {name}"
        py_compile.compile(str(path), doraise=True)


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_example_runs_to_completion(self, name, capsys):
        # run_path executes the script as __main__; the examples assert
        # their own invariants internally, so completing is the test.
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{name} produced no output"


class TestExampleInventoryMatchesReadme:
    def test_every_example_is_documented(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text(encoding="utf-8")
        for name in ALL_EXAMPLES:
            assert name in readme, f"{name} missing from README"
