"""Differential tests for the zero-copy decode fast path.

The batched transport hands the codecs ``memoryview`` slices into a
preallocated receive ring instead of owned ``bytes``; those views are
only valid until the receive callback returns.  Three families of
invariants keep the fast path honest:

* **observational identity** — decoding through a ``memoryview`` (and a
  ``bytearray``) must produce results indistinguishable from the legacy
  ``bytes`` path: same fields, same re-encoding, byte-for-byte — for
  full messages, deltas, every frame type, and BATCH splits;
* **torn buffers** — any truncation must raise :class:`CodecError` on
  the view path exactly where the bytes path does, never a stray
  ``UnicodeDecodeError``/``struct.error``, and never return a frame
  holding views past the torn end;
* **buffer lifetime** — ``retain()`` at the journal boundary must yield
  bytes that survive the ring being recycled (scribbling over the
  source buffer), while counters attribute every copy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import Timestamp
from repro.core.codec import (
    AckFrame,
    BatchFrame,
    CodecCounters,
    CodecError,
    DataFrame,
    FrameCodec,
    MessageCodec,
    retain,
)
from repro.core.protocol import Message

from tests.test_wire_properties import frames, messages


def _variants(data: bytes):
    """The same wire bytes under every buffer type a transport may hand
    the codec: owned bytes, a mutable scratch buffer, and views."""
    backing = bytearray(data)
    return (
        data,
        backing,
        memoryview(data),
        memoryview(backing),
    )


def _assert_same_message(decoded: Message, reference: Message, codec: MessageCodec):
    assert decoded.sender == reference.sender
    assert decoded.seq == reference.seq
    assert decoded.payload == reference.payload
    assert decoded.timestamp.sender_keys == reference.timestamp.sender_keys
    assert decoded.timestamp.vector.dtype == np.int64
    assert np.array_equal(decoded.timestamp.vector, reference.timestamp.vector)
    assert codec.encode(decoded) == codec.encode(reference)


class TestMessageDecodeIdentity:
    @settings(max_examples=150, deadline=None)
    @given(messages())
    def test_view_decode_matches_bytes_decode(self, message):
        codec = MessageCodec()
        data = codec.encode(message)
        reference = codec.decode(data)
        for variant in _variants(data):
            _assert_same_message(codec.decode(variant), reference, codec)

    @settings(max_examples=100, deadline=None)
    @given(messages(), st.data())
    def test_delta_view_decode_matches_bytes_decode(self, message, data):
        codec = MessageCodec()
        vector = message.timestamp.vector
        increments = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 500),
                    min_size=len(vector),
                    max_size=len(vector),
                )
            ),
            dtype=np.int64,
        )
        ref_vector = np.maximum(vector - increments, 0)
        ref_vector.flags.writeable = False
        ref_seq = data.draw(st.integers(0, message.seq - 1))
        delta = codec.encode_delta(message, ref_seq, ref_vector)
        keys = message.timestamp.sender_keys
        reference = codec.decode_delta(delta, ref_vector, keys)
        for variant in _variants(delta):
            assert MessageCodec.is_delta(variant)
            assert codec.delta_header(variant) == (
                message.sender, message.seq, ref_seq,
            )
            _assert_same_message(
                codec.decode_delta(variant, ref_vector, keys), reference, codec
            )


class TestFrameDecodeIdentity:
    @settings(max_examples=200, deadline=None)
    @given(frames())
    def test_view_decode_matches_bytes_decode(self, frame):
        codec = FrameCodec()
        data = codec.encode(frame)
        reference = codec.decode(data)
        for variant in _variants(data):
            decoded = codec.decode(variant)
            assert type(decoded) is type(reference)
            # Re-encoding accepts borrowed payload/inner views and must
            # reproduce the wire bytes exactly — the retransmit path
            # depends on this.
            assert codec.encode(decoded) == data

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=6))
    def test_batch_inner_views_split_identically(self, payloads):
        codec = FrameCodec()
        inners = tuple(
            codec.encode(DataFrame(seq=i, payload=payload))
            for i, payload in enumerate(payloads)
        )
        data = codec.encode(BatchFrame(frames=inners, ack=AckFrame(cumulative=7)))
        decoded = codec.decode(memoryview(data))
        assert len(decoded.frames) == len(inners)
        for inner_view, inner_bytes in zip(decoded.frames, inners):
            # The zero-copy split hands back views; contents must match
            # the standalone encodings bit-for-bit and re-parse to the
            # same frame.
            assert bytes(inner_view) == inner_bytes
            assert codec.decode(inner_view) == codec.decode(inner_bytes)


class TestTornBuffers:
    @settings(max_examples=150, deadline=None)
    @given(messages(), st.data())
    def test_truncated_message_raises_codec_error_on_both_paths(self, message, data):
        codec = MessageCodec()
        encoded = codec.encode(message)
        cut = data.draw(st.integers(0, len(encoded) - 1))
        torn = encoded[:cut]
        for variant in (torn, memoryview(torn)):
            with pytest.raises(CodecError):
                codec.decode(variant)

    @settings(max_examples=150, deadline=None)
    @given(frames(), st.data())
    def test_truncated_frame_raises_codec_error_on_both_paths(self, frame, data):
        codec = FrameCodec()
        encoded = codec.encode(frame)
        cut = data.draw(st.integers(0, len(encoded) - 1))
        torn = encoded[:cut]
        for variant in (torn, memoryview(torn)):
            with pytest.raises(CodecError):
                codec.decode(variant)

    def test_truncated_sender_never_leaks_unicode_error(self):
        """The sender length check must run before the UTF-8 decode —
        a datagram torn mid-sender is a CodecError, not a decode crash."""
        codec = MessageCodec()
        vector = np.zeros(4, dtype=np.int64)
        vector.flags.writeable = False
        message = Message(
            sender="sender-éé",
            seq=1,
            timestamp=Timestamp(vector=vector, sender_keys=(0,), seq=1),
            payload=None,
        )
        encoded = codec.encode(message)
        for cut in range(len(encoded)):
            with pytest.raises(CodecError):
                codec.decode(memoryview(encoded[:cut]))


class TestBufferLifetime:
    def test_retain_copies_views_and_passes_bytes_through(self):
        counters = CodecCounters()
        owned = b"immutable"
        assert retain(owned, counters) is owned
        assert counters.retain_noops == 1
        assert counters.retain_copies == 0

        backing = bytearray(b"recyclable")
        view = memoryview(backing)[:6]
        kept = retain(view, counters)
        assert kept == b"recycl"
        assert counters.retain_copies == 1
        assert counters.retained_bytes == 6
        backing[:6] = b"XXXXXX"
        assert kept == b"recycl"  # unaffected by the ring being reused

    def test_decoded_message_survives_ring_recycling(self):
        """Everything MessageCodec.decode returns must already be owned:
        the protocol stores Message objects long past the callback."""
        codec = MessageCodec()
        vector = np.arange(8, dtype=np.int64)
        vector.flags.writeable = False
        message = Message(
            sender="alice",
            seq=3,
            timestamp=Timestamp(vector=vector, sender_keys=(1, 4), seq=3),
            payload={"k": "v"},
        )
        backing = bytearray(codec.encode(message))
        decoded = codec.decode(memoryview(backing))
        for i in range(len(backing)):
            backing[i] = 0xAA
        _assert_same_message(decoded, message, codec)

    def test_data_frame_payload_is_borrowed_until_retained(self):
        """DATA payloads ARE views into the receive buffer — the whole
        point of the fast path — so consumers must retain() before the
        callback returns.  This documents the sharp edge."""
        codec = FrameCodec()
        backing = bytearray(codec.encode(DataFrame(seq=1, payload=b"payload")))
        frame = codec.decode(memoryview(backing))
        assert isinstance(frame.payload, memoryview)
        owned = retain(frame.payload)
        for i in range(len(backing)):
            backing[i] = 0x00
        assert owned == b"payload"
        assert bytes(frame.payload) != b"payload"  # the view went stale

    def test_counters_attribute_views_and_copies(self):
        codec = FrameCodec()
        inner = codec.encode(DataFrame(seq=1, payload=b"abc"))
        batch = codec.encode(BatchFrame(frames=(inner, inner)))
        codec.decode(memoryview(batch))
        snapshot = codec.counters.snapshot()
        assert snapshot["frames_decoded"] == 1
        assert snapshot["batch_inner_views"] == 2
        # Decoding owned bytes takes no views at all.
        codec.decode(batch)
        assert codec.counters.snapshot()["batch_inner_views"] == 2
