"""Differential suite: the batched wire is observationally identical to PR-1's.

The coalescing / delayed-ack / delta-timestamp wire (the `NodeConfig`
defaults) must be indistinguishable *above the codec* from the
one-datagram-per-frame, ack-per-frame, full-timestamp wire of PR 1
(``coalesce_mtu=0, ack_delay=0, wire_delta=False``).  Each test runs
the same scripted scenario under both configs over real loopback UDP
with injected drops, duplication, and reordering — plus a mid-stream
crash/restart — and compares everything the application can observe:

* full convergence — every node delivers the complete message set;
* zero causal violations against the simulator's ground-truth oracle
  (disjoint key sets make the delivery condition exact, so this is a
  sound zero, not a probabilistic one);
* per-sender FIFO at every node;
* for a single sender, the *total* delivery order — which is fully
  determined (seq order) and therefore must be identical between the
  two wire configurations, datagram schedule notwithstanding.

The wire stats double-check that the comparison is honest: the batched
run must actually have batched and delta-encoded, the legacy run must
have done neither.
"""

import asyncio

import pytest

from repro.api import NodeConfig, create_node
from repro.net import FaultyTransport, UdpTransport
from repro.net.session import TransportStats
from repro.sim.oracle import CausalityOracle, DeliveryVerdict
from repro.util.rng import RandomSource

LEGACY = dict(coalesce_mtu=0, ack_delay=0.0, wire_delta=False)
BATCHED = {}  # the defaults

FAULTS = dict(drop_rate=0.20, duplicate_rate=0.10, reorder_rate=0.10)


async def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class Exchange:
    """One scripted multi-node run under a given wire configuration."""

    def __init__(self, names, wire_kwargs, seed, data_root=None):
        self.names = names
        self.seed = seed
        self.data_root = data_root
        self.oracle = CausalityOracle(capacity=len(names))
        self.nodes = {}
        self.addresses = {}
        # message_ids in delivery order, accumulated across incarnations.
        self.order = {name: [] for name in names}
        self.violations = []
        self.sent = []
        # Disjoint key sets => the (R, K) delivery condition is exact
        # and a zero-violation assertion cannot flake (see the chaos
        # soak for the full rationale).
        self.keys = {
            name: tuple(range(3 * i, 3 * i + 3)) for i, name in enumerate(names)
        }
        self.config = NodeConfig(
            r=64,
            k=3,
            ack_timeout=0.02,
            anti_entropy_interval=0.1,
            **wire_kwargs,
        )
        for name in names:
            self.oracle.register_node(name)

    def _on_delivery(self, name):
        def callback(record):
            if record.local:
                return
            self.order[name].append(record.message.message_id)
            result = self.oracle.classify_delivery(
                name,
                record.message.message_id,
                now=asyncio.get_running_loop().time(),
            )
            if result.verdict is DeliveryVerdict.VIOLATION:
                self.violations.append((name, record.message.message_id))

        return callback

    async def _create_transport(self, port):
        # Overridden by the I/O-loop differential suite to run the same
        # script over the batched socket driver.
        return await UdpTransport.create(port=port)

    async def boot(self, name, port=0):
        udp = await self._create_transport(port)
        transport = FaultyTransport(
            udp,
            rng=RandomSource(seed=self.seed).spawn(f"wire-{name}"),
            **FAULTS,
        )
        config = self.config.replace(keys=self.keys[name])
        if self.data_root is not None:
            config = config.replace(data_dir=str(self.data_root / name))
        node = await create_node(
            name, config, transport=transport,
            on_delivery=self._on_delivery(name),
        )
        self.nodes[name] = node
        self.addresses[name] = udp.local_address
        for other, address in self.addresses.items():
            if other != name:
                node.add_peer(address)
                self.nodes[other].add_peer(udp.local_address)
        return node

    async def broadcast(self, name):
        node = self.nodes[name]
        message_id = (name, node.endpoint.clock.send_count + 1)
        self.oracle.on_send(
            name,
            message_id,
            now=asyncio.get_running_loop().time(),
            fanout=len(self.names) - 1,
        )
        await node.broadcast(message_id)
        self.sent.append(message_id)

    async def crash(self, name):
        node = self.nodes.pop(name)
        await node.close()

    async def restart(self, name):
        node = await self.boot(name, port=self.addresses[name][1])
        assert node.recovered is not None, f"{name} recovered nothing"
        return node

    def converged(self):
        expected = len(self.sent) * (len(self.names) - 1)
        return sum(len(order) for order in self.order.values()) == expected

    def merged_stats(self):
        merged = TransportStats()
        for node in self.nodes.values():
            merged = merged.merge(node.transport_stats())
        return merged

    async def close(self):
        for node in self.nodes.values():
            await node.close()

    # ------------------------------------------------------------------
    # the shared observational assertions

    def assert_observations(self):
        assert self.converged(), (
            f"no convergence: sent={len(self.sent)}, "
            f"delivered={ {n: len(o) for n, o in self.order.items()} }"
        )
        assert not self.violations, f"causal violations: {self.violations}"
        expected = set(self.sent)
        for name, order in self.order.items():
            own = {m for m in expected if m[0] == name}
            assert set(order) == expected - own, (
                f"{name} delivered a different message set"
            )
            last = {}
            for sender, seq in order:
                if sender in last:
                    assert seq == last[sender] + 1, (
                        f"{name} broke {sender}'s FIFO at seq {seq}"
                    )
                last[sender] = seq


async def run_scripted(wire_kwargs, *, seed, rounds=8, data_root=None,
                       crash_restart=False):
    """The fixed script both wire configs execute."""
    names = ("a", "b", "c")
    exchange = Exchange(names, wire_kwargs, seed, data_root=data_root)
    for name in names:
        await exchange.boot(name)

    for _ in range(rounds):
        for name in names:
            await exchange.broadcast(name)
        await asyncio.sleep(0.03)

    if crash_restart:
        await exchange.crash("b")
        for _ in range(3):
            for name in ("a", "c"):
                await exchange.broadcast(name)
            await asyncio.sleep(0.05)
        await exchange.restart("b")
        for name in names:
            await exchange.broadcast(name)

    assert await wait_for(exchange.converged), (
        f"no convergence: sent={len(exchange.sent)}, "
        f"delivered={ {n: len(o) for n, o in exchange.order.items()} }"
    )
    exchange.assert_observations()
    stats = exchange.merged_stats()
    await exchange.close()
    return exchange, stats


def assert_wire_shapes(legacy_stats, batched_stats):
    """The two runs really exercised different wires."""
    assert legacy_stats.batches_sent == 0
    assert legacy_stats.delta_sent == 0
    assert legacy_stats.acks_piggybacked == 0
    assert batched_stats.batches_sent > 0, "batched run never coalesced"
    assert batched_stats.delta_sent > 0, "batched run never sent a delta"


class TestObservationalEquivalence:
    def test_lossy_multiparty_exchange(self):
        """Drops + dups + reorders: both wires deliver the same message
        sets, in per-sender FIFO order, with zero oracle violations."""

        async def scenario():
            legacy, legacy_stats = await run_scripted(LEGACY, seed=31)
            batched, batched_stats = await run_scripted(BATCHED, seed=31)
            assert_wire_shapes(legacy_stats, batched_stats)
            for name in legacy.order:
                assert set(legacy.order[name]) == set(batched.order[name])

        asyncio.run(scenario())

    def test_crash_restart(self, tmp_path):
        """A journaled crash/restart mid-stream: both wires converge to
        the same delivered sets; the restarted node's delta references
        survive (batched) or never existed (legacy) — either way the
        application can't tell the wires apart."""

        async def scenario():
            legacy, legacy_stats = await run_scripted(
                LEGACY, seed=47, data_root=tmp_path / "legacy",
                crash_restart=True,
            )
            batched, batched_stats = await run_scripted(
                BATCHED, seed=47, data_root=tmp_path / "batched",
                crash_restart=True,
            )
            assert_wire_shapes(legacy_stats, batched_stats)
            for name in legacy.order:
                assert set(legacy.order[name]) == set(batched.order[name])

        asyncio.run(scenario())

    def test_single_sender_total_order_is_identical(self):
        """With one sender the delivery order is fully determined (seq
        order), so both wires must produce *identical* sequences at
        every receiver, whatever the datagram schedule did."""

        async def scenario():
            orders = {}
            for label, wire in (("legacy", LEGACY), ("batched", BATCHED)):
                names = ("tx", "rx1", "rx2")
                exchange = Exchange(names, wire, seed=59)
                for name in names:
                    await exchange.boot(name)
                for _ in range(20):
                    await exchange.broadcast("tx")
                assert await wait_for(exchange.converged)
                exchange.assert_observations()
                orders[label] = {
                    name: list(exchange.order[name]) for name in ("rx1", "rx2")
                }
                await exchange.close()
            assert orders["legacy"] == orders["batched"]
            for order in orders["batched"].values():
                assert order == [("tx", i) for i in range(1, 21)]

        asyncio.run(scenario())


class TestRegistryDifferential:
    def test_registry_wire_counters_match_transport_stats(self):
        """The observability acceptance test: the registry-backed wire
        series must be value-identical to the TransportStats counters the
        pre-registry code maintained — under both wire configurations,
        with faults active.  Both reads happen with no await in between,
        so the event loop cannot interleave wire activity."""

        RTT_FIELDS = ("rtt", "rtt_min", "rtt_max")

        async def scenario():
            import dataclasses

            for wire_kwargs in (LEGACY, BATCHED):
                names = ("a", "b", "c")
                exchange = Exchange(names, wire_kwargs, seed=71)
                for name in names:
                    await exchange.boot(name)
                for _ in range(6):
                    for name in names:
                        await exchange.broadcast(name)
                    await asyncio.sleep(0.03)
                assert await wait_for(exchange.converged)
                for name, node in exchange.nodes.items():
                    stats = node.transport_stats()
                    counters = node.metrics.snapshot()["counters"]
                    for field in dataclasses.fields(TransportStats):
                        if field.name in RTT_FIELDS:
                            continue
                        key = f"repro_wire_{field.name}_total"
                        assert counters[key] == getattr(stats, field.name), (
                            f"{name}: {key}={counters[key]} but "
                            f"TransportStats.{field.name}="
                            f"{getattr(stats, field.name)} "
                            f"(wire={wire_kwargs or 'BATCHED'})"
                        )
                    if stats.rtt is not None:
                        gauges = node.metrics.snapshot()["gauges"]
                        assert gauges["repro_wire_rtt_mean_seconds"] == (
                            pytest.approx(stats.rtt)
                        )
                await exchange.close()

        asyncio.run(scenario())
