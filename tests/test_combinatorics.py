"""Unit and property tests for combination ranking/unranking (Algorithm 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import (
    binomial,
    iter_combinations_lex,
    num_key_sets,
    rank_colex,
    rank_lex,
    unrank_colex,
    unrank_lex,
    validate_subset,
)
from repro.core.errors import ConfigurationError, RankOutOfRangeError


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(0, 20):
            for k in range(0, n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_out_of_range_k_is_zero(self):
        assert binomial(5, -1) == 0
        assert binomial(5, 6) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            binomial(-1, 0)

    def test_large_exact(self):
        # Exact integer arithmetic, no float rounding.
        assert binomial(100, 50) == math.comb(100, 50)


class TestNumKeySets:
    def test_paper_configuration(self):
        # R=100, K=4: the paper's reference point.
        assert num_key_sets(100, 4) == math.comb(100, 4) == 3_921_225

    def test_k_equals_r(self):
        assert num_key_sets(7, 7) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            num_key_sets(0, 1)
        with pytest.raises(ConfigurationError):
            num_key_sets(5, 6)
        with pytest.raises(ConfigurationError):
            num_key_sets(5, 0)


class TestUnrankLex:
    def test_known_sequence_r4_k2(self):
        expected = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert [unrank_lex(i, 4, 2) for i in range(6)] == expected

    def test_first_and_last(self):
        assert unrank_lex(0, 10, 3) == (0, 1, 2)
        assert unrank_lex(binomial(10, 3) - 1, 10, 3) == (7, 8, 9)

    def test_k_one_is_identity(self):
        for i in range(8):
            assert unrank_lex(i, 8, 1) == (i,)

    def test_k_zero(self):
        assert unrank_lex(0, 5, 0) == ()
        with pytest.raises(RankOutOfRangeError):
            unrank_lex(1, 5, 0)

    def test_rank_out_of_range(self):
        with pytest.raises(RankOutOfRangeError):
            unrank_lex(6, 4, 2)
        with pytest.raises(RankOutOfRangeError):
            unrank_lex(-1, 4, 2)

    def test_matches_iterator_order(self):
        combos = list(iter_combinations_lex(7, 3))
        assert combos == [unrank_lex(i, 7, 3) for i in range(binomial(7, 3))]


class TestRankLex:
    def test_inverse_small_exhaustive(self):
        for n in range(1, 9):
            for k in range(1, n + 1):
                for rank in range(binomial(n, k)):
                    assert rank_lex(unrank_lex(rank, n, k), n) == rank

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            rank_lex((3, 1), 5)

    def test_rejects_out_of_domain(self):
        with pytest.raises(ConfigurationError):
            rank_lex((0, 5), 5)


class TestColex:
    def test_known_sequence_r4_k2(self):
        expected = [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]
        assert [unrank_colex(i, 4, 2) for i in range(6)] == expected

    def test_inverse_small_exhaustive(self):
        for n in range(1, 9):
            for k in range(1, n + 1):
                for rank in range(binomial(n, k)):
                    assert rank_colex(unrank_colex(rank, n, k), n) == rank

    def test_out_of_range(self):
        with pytest.raises(RankOutOfRangeError):
            unrank_colex(6, 4, 2)


class TestIterCombinations:
    def test_count(self):
        assert len(list(iter_combinations_lex(6, 3))) == binomial(6, 3)

    def test_k_zero_yields_empty(self):
        assert list(iter_combinations_lex(4, 0)) == [()]

    def test_k_greater_than_n_yields_nothing(self):
        assert list(iter_combinations_lex(3, 4)) == []

    def test_strictly_increasing_lex(self):
        combos = list(iter_combinations_lex(8, 4))
        assert combos == sorted(combos)
        assert len(set(combos)) == len(combos)


class TestValidateSubset:
    def test_accepts_sorted(self):
        assert validate_subset([0, 2, 4], 5) == (0, 2, 4)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_subset([1, 1], 5)

    def test_rejects_non_int(self):
        with pytest.raises(ConfigurationError):
            validate_subset([0.5, 2], 5)

    def test_empty_ok(self):
        assert validate_subset([], 5) == ()


# ---------------------------------------------------------------------------
# property tests — the invariants the paper's key scheme relies on
# ---------------------------------------------------------------------------

rk_strategy = st.tuples(st.integers(2, 40), st.integers(1, 6)).filter(
    lambda pair: pair[1] <= pair[0]
)


@settings(max_examples=200, deadline=None)
@given(rk=rk_strategy, data=st.data())
def test_unrank_yields_k_distinct_entries_in_range(rk, data):
    """Every set_id expands to exactly K distinct entries in [0, R)."""
    r, k = rk
    rank = data.draw(st.integers(0, binomial(r, k) - 1))
    keys = unrank_lex(rank, r, k)
    assert len(keys) == k
    assert len(set(keys)) == k
    assert all(0 <= key < r for key in keys)
    assert list(keys) == sorted(keys)


@settings(max_examples=200, deadline=None)
@given(rk=rk_strategy, data=st.data())
def test_distinct_ids_yield_distinct_sets(rk, data):
    """Distinct set_ids give distinct key sets (intersection <= K-1)."""
    r, k = rk
    total = binomial(r, k)
    rank_a = data.draw(st.integers(0, total - 1))
    rank_b = data.draw(st.integers(0, total - 1))
    set_a = set(unrank_lex(rank_a, r, k))
    set_b = set(unrank_lex(rank_b, r, k))
    if rank_a != rank_b:
        assert set_a != set_b
        assert len(set_a & set_b) <= k - 1
    else:
        assert set_a == set_b


@settings(max_examples=200, deadline=None)
@given(rk=rk_strategy, data=st.data())
def test_rank_unrank_roundtrip(rk, data):
    r, k = rk
    rank = data.draw(st.integers(0, binomial(r, k) - 1))
    assert rank_lex(unrank_lex(rank, r, k), r) == rank
    assert rank_colex(unrank_colex(rank, r, k), r) == rank


@settings(max_examples=100, deadline=None)
@given(rk=rk_strategy, data=st.data())
def test_lex_order_is_monotone(rk, data):
    """Lower rank means lexicographically smaller subset."""
    r, k = rk
    total = binomial(r, k)
    rank_a = data.draw(st.integers(0, total - 1))
    rank_b = data.draw(st.integers(0, total - 1))
    combo_a = unrank_lex(rank_a, r, k)
    combo_b = unrank_lex(rank_b, r, k)
    assert (rank_a < rank_b) == (combo_a < combo_b) or rank_a == rank_b
