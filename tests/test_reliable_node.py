"""Soak and recovery tests for the reliable networked node.

The acceptance bar: with >= 20% injected datagram loss plus duplication
and reordering between *real* UDP endpoints, two ``create_node()``
participants reach 100% causally-ordered delivery, and the wire stats
prove the reliability machinery (retransmissions, anti-entropy) did it.
"""

import asyncio
import logging

import pytest

from repro.api import NodeConfig, create_node
from repro.core.errors import ConfigurationError
from repro.net import FaultWindow, FaultyTransport, UdpTransport
from repro.net.node import MessageStore
from repro.util.rng import RandomSource


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def make_lossy_node(name, config, seed, **faults):
    transport = FaultyTransport(
        await UdpTransport.create(),
        rng=RandomSource(seed=seed).spawn("faults"),
        **faults,
    )
    return await create_node(name, config, transport=transport)


class TestSoakUnderLoss:
    @pytest.mark.soak
    def test_full_causal_delivery_despite_loss_dup_reorder(self):
        """The ISSUE acceptance test: >= 20% drop + dup + reorder on
        loopback UDP; eventual 100% delivery in causal order with
        nonzero retransmissions."""

        async def scenario():
            config = NodeConfig(
                r=64,
                k=3,
                ack_timeout=0.02,
                anti_entropy_interval=0.15,
            )
            alice = await make_lossy_node(
                "alice", config, seed=1,
                drop_rate=0.25, duplicate_rate=0.10, reorder_rate=0.15,
            )
            bob = await make_lossy_node(
                "bob", config, seed=2,
                drop_rate=0.25, duplicate_rate=0.10, reorder_rate=0.15,
            )
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)

            rounds = 25
            # Causally chained ping-pong: bob's i-th message depends on
            # having delivered alice's i-th, and vice versa, so *any*
            # permanently lost message would wedge the whole exchange.
            for i in range(rounds):
                await alice.broadcast(("alice", i))
                assert await wait_for(
                    lambda i=i: ("alice", i) in bob.delivered_payloads()
                ), f"bob never delivered alice's message {i}"
                await bob.broadcast(("bob", i))
                assert await wait_for(
                    lambda i=i: ("bob", i) in alice.delivered_payloads()
                ), f"alice never delivered bob's message {i}"

            for node in (alice, bob):
                payloads = node.delivered_payloads()
                assert len(payloads) == 2 * rounds, "delivery is not 100%"
                # Causal order: ("alice", i) precedes ("bob", i) precedes
                # ("alice", i+1) — the chain above forces exactly this.
                for i in range(rounds):
                    assert payloads.index(("alice", i)) < payloads.index(("bob", i))
                    if i + 1 < rounds:
                        assert payloads.index(("bob", i)) < payloads.index(
                            ("alice", i + 1)
                        )

            # The wire was genuinely hostile and the runtime fought back.
            dropped = alice.transport.dropped + bob.transport.dropped
            assert dropped > 0, "fault injection never fired"
            total = alice.transport_stats().merge(bob.transport_stats())
            assert total.retransmits > 0, "loss was never repaired by retransmit"
            assert total.duplicates >= 0
            await alice.close()
            await bob.close()

        asyncio.run(scenario())

    @pytest.mark.soak
    def test_anti_entropy_recovers_without_retransmission(self):
        """With retransmission disabled (max_retries=0) and heavy loss,
        the periodic digest exchange alone must converge the nodes."""

        async def scenario():
            config = NodeConfig(
                r=64,
                k=3,
                ack_timeout=0.02,
                max_retries=0,
                anti_entropy_interval=0.05,
            )
            alice = await make_lossy_node("alice", config, seed=3, drop_rate=0.4)
            bob = await make_lossy_node("bob", config, seed=4, drop_rate=0.4)
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)

            for i in range(15):
                await alice.broadcast(i)
            assert await wait_for(
                lambda: len(bob.delivered_payloads()) == 15, timeout=30.0
            ), "anti-entropy did not converge"
            assert bob.delivered_payloads() == list(range(15))
            stats = alice.transport_stats()
            assert stats.digests_sent > 0
            assert stats.drops > 0, "every frame survived: loss not exercised"
            await alice.close()
            await bob.close()

        asyncio.run(scenario())

    def test_anti_entropy_heals_transitive_gaps(self):
        """A message from alice reaches carol via bob's store even when
        the alice->carol link drops every datagram."""

        async def scenario():
            config = NodeConfig(r=64, k=3, ack_timeout=0.02,
                                anti_entropy_interval=0.05)
            alice = await create_node("alice", config)
            bob = await create_node("bob", config)
            carol = await create_node("carol", config)
            # alice only talks to bob; bob and carol are fully connected.
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)
            bob.add_peer(carol.local_address)
            carol.add_peer(bob.local_address)

            await alice.broadcast("relayed")
            assert await wait_for(
                lambda: carol.delivered_payloads() == ["relayed"], timeout=20.0
            ), "carol never received alice's message via bob"
            for node in (alice, bob, carol):
                await node.close()

        asyncio.run(scenario())


class TestMessageStore:
    def test_frontier_tracks_contiguous_and_extras(self):
        store = MessageStore()
        store.add("p", 1, b"a")
        store.add("p", 2, b"b")
        store.add("p", 4, b"d")
        assert store.frontiers() == {"p": (2, (4,))}
        store.add("p", 3, b"c")
        assert store.frontiers() == {"p": (4, ())}

    def test_duplicate_add_is_noop(self):
        store = MessageStore()
        assert store.add("p", 1, b"a")
        assert not store.add("p", 1, b"a")
        assert len(store) == 1

    def test_missing_for_serves_only_what_remote_lacks(self):
        store = MessageStore()
        for seq in range(1, 6):
            store.add("p", seq, bytes([seq]))
        store.add("q", 1, b"q1")
        remote = {"p": (3, (5,))}
        assert sorted(store.missing_for(remote)) == [b"\x04", b"q1"]

    def test_eviction_keeps_frontier_truthful(self):
        store = MessageStore(limit=2)
        store.add("p", 1, b"a")
        store.add("p", 2, b"b")
        store.add("p", 3, b"c")
        assert len(store) == 2
        assert store.knows("p", 1)          # still known...
        assert store.get("p", 1) is None    # ...but no longer servable
        assert store.frontiers() == {"p": (3, ())}
        assert list(store.missing_for({"p": (1, ())})) == [b"b", b"c"]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageStore(limit=0)

    def test_eviction_counted_and_unservable_request_logged_once(self, caplog):
        store = MessageStore(limit=2)
        for seq in range(1, 5):
            store.add("p", seq, bytes([seq]))
        assert store.stats.evictions == 2
        with caplog.at_level(logging.WARNING, logger="repro.net.node"):
            # A digest whose frontier lies below the evicted high-water
            # mark asks for bytes this store no longer holds.
            list(store.missing_for({"p": (0, ())}))
            list(store.missing_for({"p": (1, ())}))
        assert store.stats.unservable_requests == 2
        warnings = [
            record for record in caplog.records if "evicted" in record.message
        ]
        assert len(warnings) == 1, "the unservable warning must log only once"
        # A fully-covered digest is not an unservable request.
        list(store.missing_for({"p": (4, ())}))
        assert store.stats.unservable_requests == 2


class TestNodeSurface:
    def test_stats_and_store_exposed(self):
        async def scenario():
            config = NodeConfig(r=32, k=2)
            a = await create_node("a", config)
            b = await create_node("b", config)
            a.add_peer(b.local_address)
            b.add_peer(a.local_address)
            await a.broadcast("x")
            assert await wait_for(lambda: b.delivered_payloads() == ["x"])
            assert a.transport_stats(b.local_address).data_sent == 1
            assert a.transport_stats_by_peer()[b.local_address].data_sent == 1
            assert b.store.knows("a", 1)
            assert a.peers == (b.local_address,)
            a.remove_peer(b.local_address)
            assert a.peers == ()
            await a.close()
            await b.close()

        asyncio.run(scenario())

    def test_remove_peer_purges_session_and_liveness_state(self):
        """Satellite regression: remove_peer must not leak per-peer
        session state (unacked queue, stats, receive bookkeeping) or a
        stale liveness entry that would later quarantine the departed
        address."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02,
                heartbeat_interval=0.05, quarantine_after=0.5,
            )
            alice = await create_node("alice", config)
            bob = await create_node("bob", config)
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)
            await alice.broadcast("hello")
            assert await wait_for(lambda: bob.delivered_payloads() == ["hello"])
            assert bob.local_address in alice.session.all_stats()

            alice.remove_peer(bob.local_address)
            assert bob.local_address not in alice.session.all_stats()
            assert alice.session.unacked_count(bob.local_address) == 0
            await bob.close()
            # With bob's entry purged, his silence must never trip the
            # failure detector on a peer alice no longer talks to.
            await asyncio.sleep(0.7)
            assert not alice.liveness.is_quarantined(bob.local_address)
            assert alice.liveness.quarantines == 0
            # Removing an unknown address stays a no-op.
            alice.remove_peer(("127.0.0.1", 1))
            await alice.close()

        asyncio.run(scenario())

    def test_max_retries_exhaustion_dropped_then_healed(self):
        """Satellite: a frame abandoned after ``max_retries`` increments
        ``drops`` and frees the unacked slot; anti-entropy then delivers
        the message end-to-end once the outage lifts."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, max_retries=2,
                anti_entropy_interval=0.1,
            )
            # Every datagram alice sends in the first 0.5 s vanishes —
            # long enough for 2 retries at a 20 ms timeout to exhaust.
            transport = FaultyTransport(
                await UdpTransport.create(),
                windows=(FaultWindow(start=0.0, end=0.5, drop=True),),
            )
            alice = await create_node("alice", config, transport=transport)
            bob = await create_node("bob", config)
            alice.transport.arm()
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)

            await alice.broadcast("blocked")
            assert await wait_for(
                lambda: alice.transport_stats(bob.local_address).drops >= 1,
                timeout=5.0,
            ), "exhausted frame was never counted as dropped"
            stats = alice.transport_stats(bob.local_address)
            assert stats.retransmits >= 2
            # The retransmit path gave up; the digest exchange must not.
            assert await wait_for(
                lambda: bob.delivered_payloads() == ["blocked"], timeout=20.0
            ), "anti-entropy never healed the dropped frame"
            # Abandoned frames do not linger: once healed and acked, the
            # unacked queue drains completely.
            assert await wait_for(
                lambda: alice.session.unacked_count(bob.local_address) == 0,
                timeout=5.0,
            )
            await alice.close()
            await bob.close()

        asyncio.run(scenario())

    def test_negative_anti_entropy_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(anti_entropy_interval=-1.0)

    def test_malformed_inner_message_counted(self):
        async def scenario():
            config = NodeConfig(r=32, k=2)
            a = await create_node("a", config)
            b = await create_node("b", config)
            # Push garbage through a's *session* so it arrives as a valid
            # DATA frame whose payload is not a decodable message.
            await a.session.send(b.local_address, b"junk")
            assert await wait_for(lambda: b.decode_errors == 1)
            await a.close()
            await b.close()

        asyncio.run(scenario())
