"""Tests for the deterministic random source."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.util.rng import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(seed=11)
        b = RandomSource(seed=11)
        assert [a.integer(0, 100) for _ in range(20)] == [
            b.integer(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(seed=1)
        b = RandomSource(seed=2)
        assert [a.integer(0, 10**9) for _ in range(5)] != [
            b.integer(0, 10**9) for _ in range(5)
        ]

    def test_spawn_is_independent_of_parent_consumption(self):
        parent_a = RandomSource(seed=5)
        parent_b = RandomSource(seed=5)
        parent_b.integer(0, 100)  # consume some draws
        child_a = parent_a.spawn("network")
        child_b = parent_b.spawn("network")
        assert [child_a.random() for _ in range(10)] == [
            child_b.random() for _ in range(10)
        ]

    def test_spawn_names_give_distinct_streams(self):
        root = RandomSource(seed=5)
        one = root.spawn("alpha")
        two = root.spawn("beta")
        assert [one.random() for _ in range(5)] != [two.random() for _ in range(5)]


class TestInteger:
    def test_range_respected(self):
        rng = RandomSource(seed=0)
        draws = [rng.integer(3, 9) for _ in range(500)]
        assert min(draws) >= 3 and max(draws) < 9
        assert set(draws) == {3, 4, 5, 6, 7, 8}

    def test_empty_range_rejected(self):
        rng = RandomSource(seed=0)
        with pytest.raises(ConfigurationError):
            rng.integer(5, 5)

    def test_huge_range_beyond_64_bits(self):
        # set_id spaces like C(100, 8) ≈ 1.9e11 fit in 64 bits, but very
        # large (R, K) do not; the sampler must still be uniform-ish and
        # in-range.
        rng = RandomSource(seed=0)
        high = 1 << 130
        draws = [rng.integer(0, high) for _ in range(50)]
        assert all(0 <= d < high for d in draws)
        assert any(d > (1 << 64) for d in draws)  # actually uses the space

    def test_huge_range_deterministic(self):
        high = (1 << 100) + 7
        a = [RandomSource(seed=3).integer(0, high) for _ in range(1)]
        b = [RandomSource(seed=3).integer(0, high) for _ in range(1)]
        assert a == b


class TestDistributions:
    def test_uniform_bounds(self):
        rng = RandomSource(seed=1)
        draws = [rng.uniform(2.0, 3.0) for _ in range(200)]
        assert all(2.0 <= d < 3.0 for d in draws)

    def test_gauss_moments(self):
        rng = RandomSource(seed=1)
        draws = [rng.gauss(100, 20) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        std = math.sqrt(sum((d - mean) ** 2 for d in draws) / len(draws))
        assert mean == pytest.approx(100, abs=1.0)
        assert std == pytest.approx(20, abs=1.0)

    def test_gauss_positive_floor(self):
        rng = RandomSource(seed=1)
        # Mean far below the floor: resampling fails, fallback kicks in.
        draws = [rng.gauss_positive(-100, 1, floor=0.0) for _ in range(10)]
        assert all(d > 0 for d in draws)
        # Regular case: all positive, distribution barely affected.
        draws = [rng.gauss_positive(100, 20) for _ in range(1000)]
        assert all(d > 0 for d in draws)

    def test_exponential_mean(self):
        rng = RandomSource(seed=2)
        draws = [rng.exponential(50.0) for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(50.0, rel=0.05)

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            RandomSource(seed=0).exponential(0.0)


class TestCollections:
    def test_choice(self):
        rng = RandomSource(seed=3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(50))
        with pytest.raises(ConfigurationError):
            rng.choice([])

    def test_sample_distinct(self):
        rng = RandomSource(seed=3)
        picked = rng.sample(list(range(10)), 4)
        assert len(picked) == 4
        assert len(set(picked)) == 4
        with pytest.raises(ConfigurationError):
            rng.sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        rng = RandomSource(seed=3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
