"""Tests for the network delay models (Section 5.4 methodology)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.network import (
    ConstantDelayModel,
    ExponentialDelayModel,
    GaussianDelayModel,
    UniformDelayModel,
)
from repro.util.rng import RandomSource


class TestGaussianDelayModel:
    def test_defaults_match_the_paper(self):
        model = GaussianDelayModel()
        assert model.mean_delay() == 100.0

    def test_base_delay_distribution(self):
        model = GaussianDelayModel(mean=100, std=20, skew_std=20)
        rng = RandomSource(seed=1)
        draws = [model.sample_base(rng) for _ in range(10_000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(100, abs=1.5)
        assert all(d > 0 for d in draws)

    def test_arrival_clusters_around_base(self):
        model = GaussianDelayModel(mean=100, std=20, skew_std=20)
        rng = RandomSource(seed=2)
        base = 140.0
        draws = [model.sample_arrival(rng, base) for _ in range(10_000)]
        assert sum(draws) / len(draws) == pytest.approx(base, abs=1.5)

    def test_zero_skew_returns_base(self):
        model = GaussianDelayModel(mean=100, std=20, skew_std=0)
        rng = RandomSource(seed=3)
        assert model.sample_arrival(rng, 123.4) == 123.4

    def test_always_positive_even_with_wild_parameters(self):
        model = GaussianDelayModel(mean=1, std=50, skew_std=50)
        rng = RandomSource(seed=4)
        for _ in range(2000):
            base = model.sample_base(rng)
            assert base > 0
            assert model.sample_arrival(rng, base) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianDelayModel(mean=0)
        with pytest.raises(ConfigurationError):
            GaussianDelayModel(std=-1)


class TestConstantDelayModel:
    def test_exact_delay_no_reordering(self):
        model = ConstantDelayModel(delay=75.0)
        rng = RandomSource(seed=0)
        assert model.sample_base(rng) == 75.0
        assert model.sample_arrival(rng, 75.0) == 75.0
        assert model.mean_delay() == 75.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantDelayModel(delay=0.0)


class TestUniformDelayModel:
    def test_bounds(self):
        model = UniformDelayModel(50, 150, skew=10)
        rng = RandomSource(seed=5)
        for _ in range(1000):
            base = model.sample_base(rng)
            assert 50 <= base <= 150
            arrival = model.sample_arrival(rng, base)
            assert base - 10 <= arrival <= base + 10
            assert arrival > 0

    def test_mean(self):
        assert UniformDelayModel(50, 150).mean_delay() == 100.0

    def test_zero_skew(self):
        model = UniformDelayModel(50, 150)
        rng = RandomSource(seed=5)
        base = model.sample_base(rng)
        assert model.sample_arrival(rng, base) == base

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformDelayModel(0, 10)
        with pytest.raises(ConfigurationError):
            UniformDelayModel(20, 10)
        with pytest.raises(ConfigurationError):
            UniformDelayModel(10, 20, skew=-1)


class TestExponentialDelayModel:
    def test_mean(self):
        model = ExponentialDelayModel(mean_excess=50, offset=50)
        assert model.mean_delay() == 100.0
        rng = RandomSource(seed=6)
        draws = [model.sample_base(rng) for _ in range(10_000)]
        assert sum(draws) / len(draws) == pytest.approx(100, rel=0.05)
        assert all(d >= 50 for d in draws)

    def test_heavy_tail_exceeds_gaussian(self):
        # At equal mean, the exponential model produces more extreme
        # delays than the Gaussian one — the stress property it exists for.
        exponential = ExponentialDelayModel(mean_excess=50, offset=50)
        gaussian = GaussianDelayModel(mean=100, std=20)
        rng_e, rng_g = RandomSource(seed=7), RandomSource(seed=8)
        max_e = max(exponential.sample_base(rng_e) for _ in range(5000))
        max_g = max(gaussian.sample_base(rng_g) for _ in range(5000))
        assert max_e > max_g

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelayModel(mean_excess=0)
        with pytest.raises(ConfigurationError):
            ExponentialDelayModel(offset=-1)
        with pytest.raises(ConfigurationError):
            ExponentialDelayModel(skew_std=-1)
