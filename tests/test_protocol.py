"""Tests for the causal broadcast endpoint (protocol machine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import ProbabilisticCausalClock, VectorCausalClock
from repro.core.detector import BasicAlertDetector
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord, Message
from repro.util.rng import RandomSource


def endpoint(name, keys, r=6, **kwargs):
    return CausalBroadcastEndpoint(
        process_id=name, clock=ProbabilisticCausalClock(r, keys), **kwargs
    )


class TestBroadcast:
    def test_broadcast_returns_timestamped_message(self):
        ep = endpoint("a", (0, 1))
        message = ep.broadcast("hello")
        assert message.sender == "a"
        assert message.seq == 1
        assert message.payload == "hello"
        assert message.timestamp.sender_keys == (0, 1)
        assert message.message_id == ("a", 1)

    def test_sequence_numbers_increase(self):
        ep = endpoint("a", (0,))
        ids = [ep.broadcast().seq for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_local_self_delivery_callback(self):
        records = []
        ep = CausalBroadcastEndpoint(
            process_id="a",
            clock=ProbabilisticCausalClock(4, (0,)),
            deliver_callback=records.append,
        )
        ep.broadcast("x")
        assert len(records) == 1
        assert records[0].local and records[0].message.payload == "x"

    def test_sender_never_redelivers_own_message(self):
        ep = endpoint("a", (0, 1))
        message = ep.broadcast()
        assert ep.on_receive(message) == []
        assert ep.stats.duplicates == 1
        assert ep.clock.snapshot() == (1, 1, 0, 0, 0, 0)  # no double increment


class TestReceive:
    def test_in_order_delivery(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        m1, m2 = a.broadcast("1"), a.broadcast("2")
        assert [r.message.payload for r in b.on_receive(m1)] == ["1"]
        assert [r.message.payload for r in b.on_receive(m2)] == ["2"]

    def test_reordered_fifo_queued_then_cascaded(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        m1, m2, m3 = a.broadcast("1"), a.broadcast("2"), a.broadcast("3")
        assert b.on_receive(m3) == []
        assert b.on_receive(m2) == []
        assert b.pending_count == 2
        delivered = b.on_receive(m1)
        assert [r.message.payload for r in delivered] == ["1", "2", "3"]
        assert b.pending_count == 0

    def test_duplicate_of_pending_message_dropped(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        _, m2 = a.broadcast(), a.broadcast()
        b.on_receive(m2)
        assert b.on_receive(m2) == []
        assert b.stats.duplicates == 1
        assert b.pending_count == 1

    def test_duplicate_of_delivered_message_dropped(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        m1 = a.broadcast()
        b.on_receive(m1)
        assert b.on_receive(m1) == []
        assert b.stats.duplicates == 1
        assert b.clock.snapshot()[0] == 1

    def test_cross_sender_causality(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        c = endpoint("c", (4, 5))
        m1 = a.broadcast("from-a")
        b.on_receive(m1)
        m2 = b.broadcast("from-b-after-a")
        assert c.on_receive(m2) == []  # waits for m1
        delivered = c.on_receive(m1)
        assert [r.message.payload for r in delivered] == ["from-a", "from-b-after-a"]

    def test_delivery_callback_invoked_per_delivery(self):
        deliveries = []
        a = endpoint("a", (0, 1))
        b = CausalBroadcastEndpoint(
            process_id="b",
            clock=ProbabilisticCausalClock(6, (2, 3)),
            deliver_callback=deliveries.append,
        )
        m1, m2 = a.broadcast(), a.broadcast()
        b.on_receive(m2)
        b.on_receive(m1)
        assert [d.message.seq for d in deliveries] == [1, 2]
        assert all(not d.local for d in deliveries)


class TestStats:
    def test_counters(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3))
        m1, m2 = a.broadcast(), a.broadcast()
        b.on_receive(m2)
        b.on_receive(m1)
        b.on_receive(m1)
        assert a.stats.sent == 2
        assert b.stats.received == 3
        assert b.stats.delivered == 2
        assert b.stats.duplicates == 1
        assert b.stats.pending_peak == 1

    def test_alert_counter_with_detector(self):
        # Replay the Figure-2 violation and check the endpoint counts it.
        from tests.test_paper_examples import KEYS, make_endpoint

        endpoints = {
            name: make_endpoint(name, BasicAlertDetector()) for name in KEYS
        }
        m = endpoints["p_i"].broadcast("m")
        endpoints["p_j"].on_receive(m)
        m_prime = endpoints["p_j"].broadcast("m'")
        m_1 = endpoints["p_1"].broadcast()
        m_2 = endpoints["p_2"].broadcast()
        p_k = endpoints["p_k"]
        for msg in (m_2, m_1, m_prime, m):
            p_k.on_receive(msg)
        assert p_k.stats.alerts == 1


class TestMaxPending:
    def test_bound_enforced(self):
        a = endpoint("a", (0, 1))
        b = endpoint("b", (2, 3), max_pending=2)
        messages = [a.broadcast() for _ in range(4)]
        b.on_receive(messages[3])
        b.on_receive(messages[2])
        with pytest.raises(ConfigurationError):
            b.on_receive(messages[1])

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            endpoint("a", (0,), max_pending=0)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_messages=st.integers(1, 25))
def test_any_arrival_order_delivers_everything_fifo(seed, n_messages):
    """Property: whatever the arrival permutation of one sender's stream,
    the receiver delivers all messages, in sequence order (paper's
    liveness, single-sender case)."""
    rng = RandomSource(seed=seed)
    a = endpoint("a", (0, 1))
    b = endpoint("b", (2, 3))
    messages = [a.broadcast(i) for i in range(n_messages)]
    shuffled = list(messages)
    rng.shuffle(shuffled)
    delivered = []
    for message in shuffled:
        delivered.extend(r.message.seq for r in b.on_receive(message))
    assert delivered == sorted(delivered)
    assert len(delivered) == n_messages
    assert b.pending_count == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_vector_clock_endpoints_never_violate(seed):
    """With exact vector clocks, any interleaving of a causal chain is
    delivered in causal order — the zero-error baseline."""
    rng = RandomSource(seed=seed)
    n = 4
    endpoints = [
        CausalBroadcastEndpoint(process_id=i, clock=VectorCausalClock(n, i))
        for i in range(n)
    ]
    # Build a causal chain: each process broadcasts after delivering the
    # previous broadcast.
    chain = []
    for i in range(n):
        message = endpoints[i].broadcast(i)
        chain.append(message)
        for j in range(n):
            if j > i:  # later senders must have seen it to extend the chain
                endpoints[j].on_receive(message)
    # A fresh observer receives the chain in random order.
    observer = CausalBroadcastEndpoint(process_id="obs", clock=VectorCausalClock(n, n - 1))
    shuffled = list(chain)
    rng.shuffle(shuffled)
    order = []
    for message in shuffled:
        order.extend(r.message.payload for r in observer.on_receive(message))
    assert order == sorted(order)
    assert len(order) == n
