"""The chaos harness: crash/restart + partition + 25% loss, oracle-checked.

The ISSUE acceptance scenario: four real UDP nodes under 25% drop, 10%
duplication, and 10% reordering, with one scheduled partition window and
two crash/restarts mid-stream, must deliver 100% of messages in causal
order — verified against the simulator's ground-truth
:class:`~repro.sim.oracle.CausalityOracle` — and each journal-recovered
node must resume with exactly its pre-crash vector clock and sequence
numbers.

Marked ``soak``: excluded from tier-1 (see pyproject addopts), run in
CI's dedicated soak job.
"""

import asyncio

import pytest

from repro.api import NodeConfig, create_node
from repro.net import FaultWindow, FaultyTransport, UdpTransport
from repro.net.session import TransportStats
from repro.sim.oracle import CausalityOracle, DeliveryVerdict
from repro.util.rng import RandomSource

pytestmark = pytest.mark.soak

NAMES = ("a", "b", "c", "d")
DROP, DUP, REORDER = 0.25, 0.10, 0.10


async def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class Harness:
    """Four chaos-wrapped nodes, an oracle, and crash/restart plumbing."""

    def __init__(self, tmp_path):
        self.tmp = tmp_path
        self.oracle = CausalityOracle(capacity=len(NAMES))
        self.nodes = {}
        self.addresses = {}
        self.sent = 0
        # Deliveries performed by a node's *previous* incarnations: a
        # restarted node never re-delivers what it already delivered
        # (that is the journal working), so its fresh deliveries list
        # only ever grows by what it missed.
        self.delivered_before_crash = {name: 0 for name in NAMES}
        self.config = NodeConfig(
            r=64, k=3,
            ack_timeout=0.02,
            anti_entropy_interval=0.1,
            heartbeat_interval=0.05,
            quarantine_after=0.6,
            journal_snapshot_interval=16,
        )
        # Explicitly disjoint key sets: with shared entries the (R, K)
        # scheme's violations are *probabilistic by design* (the hash
        # assignment at this R gives b and c two common entries, and the
        # simulator suite is what measures those rates), so a zero-
        # violation assertion would flake on timing.  Disjoint keys make
        # the delivery condition exact, so the oracle soundly verifies
        # the thing this soak is about: the runtime's reliability and
        # recovery machinery.
        self.keys = {
            name: tuple(range(3 * i, 3 * i + 3)) for i, name in enumerate(NAMES)
        }
        for name in NAMES:
            self.oracle.register_node(name)

    def _wrap(self, transport, name, windows=()):
        return FaultyTransport(
            transport,
            drop_rate=DROP, duplicate_rate=DUP, reorder_rate=REORDER,
            rng=RandomSource(seed=7).spawn(f"chaos-{name}"),
            windows=windows,
        )

    def _on_delivery(self, name):
        def callback(record):
            if record.local:
                return
            result = self.oracle.classify_delivery(
                name,
                record.message.message_id,
                now=asyncio.get_running_loop().time(),
            )
            assert result.verdict is not DeliveryVerdict.VIOLATION, (
                f"{name} delivered {record.message.message_id} out of "
                f"causal order"
            )
        return callback

    async def boot(self, name, port=0, windows=()):
        udp = await UdpTransport.create(port=port)
        transport = self._wrap(udp, name, windows=windows)
        node = await create_node(
            name,
            self.config.replace(
                data_dir=str(self.tmp / name), keys=self.keys[name],
                metrics_path=str(self.tmp / f"{name}.metrics.jsonl"),
                metrics_interval=0.2,
            ),
            transport=transport,
            on_delivery=self._on_delivery(name),
            start=False,
        )
        self.nodes[name] = node
        self.addresses[name] = udp.local_address
        return node

    async def start_all(self):
        for name, node in self.nodes.items():
            await node.start()
            node.transport.arm()
            for other, address in self.addresses.items():
                if other != name:
                    node.add_peer(address)

    async def broadcast(self, name):
        node = self.nodes[name]
        # Register with the oracle *before* the wire send: a fast peer
        # could deliver (and classify) the message before broadcast()
        # returns.  The message id is deterministic: (name, next seq).
        message_id = (name, node.endpoint.clock.send_count + 1)
        self.oracle.on_send(
            name,
            message_id,
            now=asyncio.get_running_loop().time(),
            fanout=len(NAMES) - 1,
        )
        message = await node.broadcast((name, self.sent))
        assert message.message_id == message_id
        self.sent += 1

    async def crash(self, name):
        node = self.nodes.pop(name)
        state = (node.endpoint.clock.snapshot(), node.endpoint.clock.send_count)
        self.delivered_before_crash[name] += len(node.deliveries)
        await node.close()
        return state

    async def restart(self, name, pre_crash_state):
        port = self.addresses[name][1]
        node = await self.boot(name, port=port)
        # The acceptance bar: the journal reconstructed *exactly* the
        # pre-crash clock — vector and send counter.  Checked against
        # the recovery record (what the constructor restored) rather
        # than the live clock, which in-flight retransmits may already
        # be advancing.
        assert node.recovered is not None, f"{name} recovered nothing"
        assert tuple(node.recovered.vector) == pre_crash_state[0], (
            f"{name}'s recovered vector differs from its pre-crash vector"
        )
        assert node.recovered.send_seq == pre_crash_state[1], (
            f"{name}'s recovered send count differs"
        )
        await node.start()
        node.transport.arm()
        for other, address in self.addresses.items():
            if other != name:
                node.add_peer(address)
        return node

    def converged(self):
        return all(
            self.delivered_before_crash[name] + len(node.deliveries) == self.sent
            for name, node in self.nodes.items()
        )


def test_chaos_soak(tmp_path):
    """Two crash/restarts and a partition under 25% loss: 100% causal
    delivery, exact journal recovery, zero oracle violations."""

    async def scenario():
        harness = Harness(tmp_path)
        # Partition {a, b} | {c, d} during [1.0, 1.6) of transport time.
        # Each side's windows drop datagrams to the other side only;
        # heartbeats die with the rest, so quarantine may fire — which
        # is part of what the scenario must survive.
        for name in NAMES:
            await harness.boot(name)
        sides = {
            "a": ("c", "d"), "b": ("c", "d"),
            "c": ("a", "b"), "d": ("a", "b"),
        }
        for name, others in sides.items():
            node = harness.nodes[name]
            window = FaultWindow(
                start=1.0, end=1.6, drop=True,
                peers=frozenset(harness.addresses[o] for o in others),
            )
            node.transport.set_windows((window,))
        await harness.start_all()

        # Phase 1 — all four broadcast across the partition window.
        for i in range(10):
            for name in NAMES:
                await harness.broadcast(name)
            await asyncio.sleep(0.18)

        # Phase 2 — crash b, keep the others talking, restart b.
        b_state = await harness.crash("b")
        for i in range(4):
            for name in ("a", "c", "d"):
                await harness.broadcast(name)
            await asyncio.sleep(0.25)  # > quarantine_after in total
        assert await wait_for(
            lambda: any(
                harness.nodes[n].liveness.is_quarantined(
                    harness.addresses["b"]
                )
                for n in ("a", "c", "d")
            ),
            timeout=10.0,
        ), "nobody quarantined the crashed node"
        await harness.restart("b", b_state)
        for name in NAMES:
            await harness.broadcast(name)

        # Phase 3 — crash c the same way, restart, final burst.
        c_state = await harness.crash("c")
        await asyncio.sleep(0.8)
        for name in ("a", "b", "d"):
            await harness.broadcast(name)
        await harness.restart("c", c_state)
        for name in NAMES:
            await harness.broadcast(name)

        # Convergence: every node delivers every message.
        assert await wait_for(harness.converged, timeout=60.0), (
            f"no convergence: sent={harness.sent}, delivered="
            f"{ {n: harness.delivered_before_crash[n] + len(node.deliveries) for n, node in harness.nodes.items()} }"
        )

        # Oracle verdicts: all deliveries accounted, zero violations,
        # zero ambiguous (nothing was force-merged).
        totals = harness.oracle.totals
        assert totals.deliveries == harness.sent * (len(NAMES) - 1)
        assert totals.violations == 0, f"{totals.violations} causal violations"
        assert totals.ambiguous == 0, f"{totals.ambiguous} ambiguous deliveries"

        # Per-sender FIFO at every node (causal order implies it).  A
        # restarted node's list starts mid-stream (pre-crash deliveries
        # belong to its previous incarnation), so only consecutiveness
        # *within* the list is asserted, from whatever seq it starts at.
        for name, node in harness.nodes.items():
            last = {}
            for record in node.deliveries:
                sender, seq = record.message.message_id
                if sender in last:
                    assert seq == last[sender] + 1, (
                        f"{name} broke {sender}'s FIFO order at seq {seq}"
                    )
                last[sender] = seq

        # The chaos genuinely fired, and the liveness layer reacted.
        total_window_drops = sum(
            node.transport.window_dropped for node in harness.nodes.values()
        )
        total_drops = sum(
            node.transport.dropped for node in harness.nodes.values()
        )
        assert total_drops > 0, "probabilistic loss never fired"
        assert total_window_drops > 0, "the partition window never fired"
        quarantines = sum(
            node.liveness.quarantines for node in harness.nodes.values()
        )
        resumes = sum(
            node.liveness.resumes for node in harness.nodes.values()
        )
        assert quarantines >= 1, "no peer was ever quarantined"
        assert resumes >= 1, "no quarantined peer ever resumed"

        # The batched wire path (the NodeConfig defaults) was live
        # through the whole ordeal: frames coalesced into batches and
        # O(K) delta timestamps flowed despite the partition, the loss,
        # and two crash/restarts.
        def merged_wire():
            merged = TransportStats()
            for node in harness.nodes.values():
                merged = merged.merge(node.transport_stats())
            return merged

        wire = merged_wire()
        assert wire.batches_sent > 0, "nothing ever coalesced"
        assert wire.delta_sent > 0, "no delta timestamp ever flowed"

        # And the crash/restarts did not leave any link in permanent
        # full-encoding fallback: references resync via the journal's
        # persisted delta state or a digest exchange after a reference
        # miss, so a fresh post-convergence round still travels (at
        # least partly) as deltas.
        deltas_before = wire.delta_sent
        for name in NAMES:
            await harness.broadcast(name)
        assert await wait_for(harness.converged, timeout=30.0), (
            "no convergence on the post-restart delta-resync round"
        )
        assert merged_wire().delta_sent > deltas_before, (
            "every link fell back to full encodings for good after the "
            "restarts — delta references never resynced"
        )

        for node in harness.nodes.values():
            await node.close()

        # Observability acceptance: the soak exported metrics JSONL for
        # every node, and the fleet-wide merge shows the pipeline was
        # alive end to end — detector checks ran, wire counters moved,
        # the pending-depth gauge and the delivery-latency histogram
        # were exported.
        from repro.obs import Histogram, last_snapshot, merge_snapshots

        snapshots = []
        for name in NAMES:
            snapshot = last_snapshot(tmp_path / f"{name}.metrics.jsonl")
            assert snapshot is not None, f"{name} exported no metrics"
            snapshots.append(snapshot)
        fleet = merge_snapshots(snapshots)
        counters = fleet["counters"]
        assert counters["repro_detector_checks_total"] > 0
        assert counters["repro_endpoint_delivered_total"] > 0
        assert counters["repro_wire_datagrams_sent_total"] > 0
        assert counters["repro_wire_retransmits_total"] > 0
        assert "repro_pending_depth" in fleet["gauges"]
        waits = Histogram.from_dict(
            fleet["histograms"]["repro_delivery_wait_seconds"]
        )
        assert waits.count > 0, "delivery-latency histogram is empty"

    asyncio.run(scenario())
