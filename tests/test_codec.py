"""Tests for the wire codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import ProbabilisticCausalClock, Timestamp
from repro.core.codec import (
    CodecError,
    JsonPayloadCodec,
    MessageCodec,
    RawBytesPayloadCodec,
    decode_varint,
    encode_varint,
)
from repro.core.protocol import CausalBroadcastEndpoint, Message


def make_message(payload=None, sender="node-1", r=16, keys=(0, 3, 7), sends=1):
    endpoint = CausalBroadcastEndpoint(sender, ProbabilisticCausalClock(r, keys))
    message = None
    for _ in range(sends):
        message = endpoint.broadcast(payload)
    return message


class TestVarint:
    def test_known_values(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"
        assert encode_varint(128) == b"\x80\x01"
        assert encode_varint(300) == b"\xac\x02"

    def test_roundtrip_large(self):
        for value in (0, 1, 127, 128, 2**32, 2**63 - 1):
            data = encode_varint(value)
            decoded, offset = decode_varint(data, 0)
            assert decoded == value and offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            decode_varint(b"\x80", 0)

    @given(value=st.integers(0, 2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value), 0)
        assert decoded == value


class TestMessageCodec:
    def test_roundtrip_preserves_everything(self):
        codec = MessageCodec()
        original = make_message(payload={"op": "add", "item": "milk"}, sends=5)
        decoded = codec.decode(codec.encode(original))
        assert decoded.sender == original.sender
        assert decoded.seq == original.seq
        assert decoded.payload == original.payload
        assert decoded.timestamp.as_tuple() == original.timestamp.as_tuple()
        assert decoded.timestamp.sender_keys == original.timestamp.sender_keys
        assert list(decoded.timestamp.adjusted) == list(original.timestamp.adjusted)

    def test_decoded_message_drives_a_real_endpoint(self):
        codec = MessageCodec()
        sender = CausalBroadcastEndpoint("a", ProbabilisticCausalClock(8, (0, 1)))
        receiver = CausalBroadcastEndpoint("b", ProbabilisticCausalClock(8, (2, 3)))
        m1 = sender.broadcast("one")
        m2 = sender.broadcast("two")
        wire2 = codec.encode(m2)
        wire1 = codec.encode(m1)
        assert receiver.on_receive(codec.decode(wire2)) == []
        delivered = receiver.on_receive(codec.decode(wire1))
        assert [r.message.payload for r in delivered] == ["one", "two"]

    def test_fixed_and_varint_agree(self):
        message = make_message(payload=[1, 2, 3], sends=9)
        fixed = MessageCodec(varint_entries=False)
        varint = MessageCodec(varint_entries=True)
        assert fixed.decode(fixed.encode(message)).timestamp.as_tuple() == (
            varint.decode(varint.encode(message)).timestamp.as_tuple()
        )

    def test_varint_is_smaller_for_sparse_vectors(self):
        message = make_message(r=100, keys=(0, 1, 2, 3))
        fixed = MessageCodec(varint_entries=False)
        varint = MessageCodec(varint_entries=True)
        assert varint.encoded_size(message) < fixed.encoded_size(message)

    def test_tuple_payload_roundtrips_via_json(self):
        # CRDT ops are nested tuples; JSON turns them into lists and the
        # codec normalises back.
        payload = ("add", "x", ("replica", 3))
        codec = MessageCodec()
        decoded = codec.decode(codec.encode(make_message(payload=payload)))
        assert decoded.payload == payload

    def test_none_payload(self):
        codec = MessageCodec()
        decoded = codec.decode(codec.encode(make_message(payload=None)))
        assert decoded.payload is None

    def test_unicode_sender(self):
        codec = MessageCodec()
        decoded = codec.decode(codec.encode(make_message(sender="pëer-ωμέγα")))
        assert decoded.sender == "pëer-ωμέγα"

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            MessageCodec().decode(b"XX\x01\x00garbage")

    def test_truncation_rejected_everywhere(self):
        codec = MessageCodec()
        wire = codec.encode(make_message(payload={"k": "v"}))
        for cut in (3, 5, 10, len(wire) - 1):
            with pytest.raises(CodecError):
                codec.decode(wire[:cut])

    def test_unencodable_payload_rejected(self):
        codec = MessageCodec()
        with pytest.raises(CodecError):
            codec.encode(make_message(payload=object()))

    def test_raw_bytes_codec(self):
        codec = MessageCodec(payload_codec=RawBytesPayloadCodec())
        decoded = codec.decode(codec.encode(make_message(payload=b"\x00\xff")))
        assert decoded.payload == b"\x00\xff"
        with pytest.raises(CodecError):
            codec.encode(make_message(payload="not bytes"))


class TestJsonPayloadCodec:
    def test_empty_is_none(self):
        codec = JsonPayloadCodec()
        assert codec.decode(b"") is None
        assert codec.encode(None) == b""

    def test_nested_tuplify(self):
        codec = JsonPayloadCodec()
        assert codec.decode(codec.encode({"a": [1, [2, 3]]})) == {"a": (1, (2, 3))}

    def test_malformed_rejected(self):
        with pytest.raises(CodecError):
            JsonPayloadCodec().decode(b"{nope")


@settings(max_examples=100, deadline=None)
@given(
    r=st.integers(1, 40),
    seed_entries=st.data(),
    seq=st.integers(1, 2**40),
)
def test_any_timestamp_roundtrips(r, seed_entries, seq):
    k = seed_entries.draw(st.integers(1, min(4, r)))
    keys = tuple(sorted(seed_entries.draw(
        st.sets(st.integers(0, r - 1), min_size=k, max_size=k)
    )))
    entries = seed_entries.draw(
        st.lists(st.integers(0, 2**31), min_size=r, max_size=r)
    )
    vector = np.asarray(entries, dtype=np.int64)
    vector.flags.writeable = False
    message = Message(
        sender="s", seq=seq,
        timestamp=Timestamp(vector=vector, sender_keys=keys, seq=seq),
        payload=None,
    )
    codec = MessageCodec()
    decoded = codec.decode(codec.encode(message))
    assert decoded.timestamp.as_tuple() == message.timestamp.as_tuple()
    assert decoded.timestamp.sender_keys == keys
    assert decoded.seq == seq


class TestWireRangeGuards:
    """Entries are int64 in memory but uint32 on the fixed-width wire."""

    @staticmethod
    def _message_with_entry(value, r=8, keys=(1, 4)):
        vector = np.zeros(r, dtype=np.int64)
        vector[2] = value
        vector.flags.writeable = False
        return Message(
            sender="s",
            seq=1,
            timestamp=Timestamp(vector=vector, sender_keys=keys, seq=1),
            payload=None,
        )

    def test_fixed_width_overflow_raises_codec_error(self):
        codec = MessageCodec(varint_entries=False)
        message = self._message_with_entry(2**32)
        with pytest.raises(CodecError, match="uint32 wire range"):
            codec.encode(message)

    def test_fixed_width_boundary_value_roundtrips(self):
        codec = MessageCodec(varint_entries=False)
        message = self._message_with_entry(2**32 - 1)
        decoded = codec.decode(codec.encode(message))
        assert int(decoded.timestamp.vector[2]) == 2**32 - 1

    def test_varint_mode_carries_entries_beyond_uint32(self):
        codec = MessageCodec(varint_entries=True)
        message = self._message_with_entry(2**40)
        decoded = codec.decode(codec.encode(message))
        assert int(decoded.timestamp.vector[2]) == 2**40

    def test_negative_entry_rejected_in_both_modes(self):
        for varint in (True, False):
            codec = MessageCodec(varint_entries=varint)
            message = self._message_with_entry(-1)
            with pytest.raises(CodecError, match="negative"):
                codec.encode(message)

    def test_sender_key_beyond_uint32_rejected(self):
        codec = MessageCodec()
        message = self._message_with_entry(1, keys=(1, 2**32))
        with pytest.raises(CodecError, match="sender keys"):
            codec.encode(message)
