"""Membership churn soak: 4 → 7 → 3 nodes under 25% loss, oracle-checked.

The dynamic-membership acceptance scenario: a bootstrapped group grows to
seven real UDP nodes through the JOIN handshake, then shrinks to three
through two graceful LEAVEs and two forced evictions (silent crashes aged
through quarantine), all over a transport dropping 25% of datagrams and
duplicating/reordering 10% — and every delivery stays causally ordered
against the simulator's ground-truth oracle.  A final joiner then proves
the evicted key sets were recycled, the coordinator renegotiates the
clock geometry with a mid-soak epoch bump (K: 3 → 2, re-tiled disjoint),
and a crash/restart rejoins journal-consistently on the new geometry.

Design notes that keep the oracle's zero-violation bar *sound*:

* Every node runs its own :class:`PerfectKeyAssigner` mirror and the
  founder holds explicit keys ``(0, 1, 2)`` (the perfect assigner's
  slot-0 tile), so every granted key set is disjoint and the (R, K)
  delivery condition is exact — violations would be real bugs, not the
  scheme's by-design error rate.
* Traffic quiesces to a convergence barrier before each membership
  change.  The JOIN/LEAVE/eviction machinery itself then runs *mid
  traffic* (view propagation, quarantine aging, and the lossy JOIN
  retries all overlap the resumed broadcast rounds), but no data frame
  is in flight at the instant of a handshake, so the joiner's
  state-transfer frontier equals the global send vector and the
  oracle's ``initial_knowledge`` seeding is exact.
* The session's pre-join data gate keeps this sound even when a lost
  JOIN_ACK stretches the handshake: anti-entropy rounds racing the
  retry cannot push history into the half-joined node.

Marked ``soak``: excluded from tier-1 (see pyproject addopts), run in
CI's dedicated churn-soak job, which uploads the per-node metrics JSONL
written to ``CHURN_SOAK_METRICS_DIR`` (default: the test tmpdir).
"""

import asyncio
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import NodeConfig, create_node
from repro.core.keyspace import PerfectKeyAssigner
from repro.net import FaultyTransport, UdpTransport
from repro.sim.oracle import CausalityOracle, DeliveryVerdict
from repro.util.rng import RandomSource

pytestmark = pytest.mark.soak

DROP, DUP, REORDER = 0.25, 0.10, 0.10
ALL_NAMES = ("a", "b", "c", "d", "e", "f", "g", "h")
CAPACITY = len(ALL_NAMES)


async def wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class Harness:
    """Chaos-wrapped membership cluster with exact delivery accounting."""

    def __init__(self, data_dir, metrics_dir):
        self.data_dir = data_dir
        self.metrics_dir = metrics_dir
        self.oracle = CausalityOracle(capacity=CAPACITY)
        self.nodes = {}
        # Per-node count of messages sent to it while it was a member;
        # a live node has converged when len(deliveries) matches.
        self.expected = {}
        self.sends = {name: 0 for name in ALL_NAMES}
        # Sends a name made before its latest incarnation: a restarted
        # node's fresh ``deliveries`` list only sees later traffic.
        self.restart_base = {name: 0 for name in ALL_NAMES}
        self.released = {}  # name -> key set it held when it left/died
        self.config = NodeConfig(
            r=64, k=3,
            ack_timeout=0.02,
            anti_entropy_interval=0.1,
            heartbeat_interval=0.05,
            quarantine_after=0.6,
            membership=True,
            join_timeout=0.3,
            join_retries=10,
            join_backoff=1.5,
            evict_after=1.0,
            view_announce_interval=0.15,
        )

    def _wrap(self, udp, name):
        return FaultyTransport(
            udp,
            drop_rate=DROP, duplicate_rate=DUP, reorder_rate=REORDER,
            rng=RandomSource(seed=23).spawn(f"churn-{name}"),
        )

    def _on_delivery(self, name):
        def callback(record):
            if record.local:
                return
            result = self.oracle.classify_delivery(
                name,
                record.message.message_id,
                now=asyncio.get_running_loop().time(),
            )
            assert result.verdict is not DeliveryVerdict.VIOLATION, (
                f"{name} delivered {record.message.message_id} out of "
                f"causal order"
            )
        return callback

    def _register(self, name):
        # A joiner's state transfer covers everything sent so far (the
        # barrier guarantees frontiers == send counts), so its oracle
        # clock starts at the global send vector.
        knowledge = np.zeros(CAPACITY, dtype=np.int64)
        for other, count in self.sends.items():
            if count:
                knowledge[self.oracle.slot_of(other)] = count
        self.oracle.register_node(name, initial_knowledge=knowledge)

    async def spawn(self, name, seeds=(), assigner=None, keys=None):
        udp = await UdpTransport.create(port=0)
        config = self.config.replace(
            seed_peers=tuple(seeds),
            keys=keys,
            data_dir=str(Path(self.data_dir) / name),
            metrics_path=str(Path(self.metrics_dir) / f"{name}.metrics.jsonl"),
            metrics_interval=0.2,
        )
        # Register before the node can classify anything; create_node
        # runs the (lossy, retried) JOIN handshake before returning.
        self._register(name)
        node = await create_node(
            name, config,
            transport=self._wrap(udp, name),
            on_delivery=self._on_delivery(name),
            assigner=assigner,
        )
        self.nodes[name] = node
        self.expected[name] = 0
        return node

    async def restart(self, name, seeds=()):
        """Revive a killed node from its journal (same data dir, fresh
        port): the rejoin must come back on the group's *current*
        geometry, not the founding one.  No oracle registration — the
        incarnation keeps its identity and its recovered knowledge."""
        udp = await UdpTransport.create(port=0)
        config = self.config.replace(
            seed_peers=tuple(seeds),
            data_dir=str(Path(self.data_dir) / name),
            metrics_path=str(Path(self.metrics_dir) / f"{name}.metrics.jsonl"),
            metrics_interval=0.2,
        )
        node = await create_node(
            name, config,
            transport=self._wrap(udp, name),
            on_delivery=self._on_delivery(name),
        )
        self.nodes[name] = node
        self.expected[name] = 0
        self.restart_base[name] = self.sends[name]
        return node

    async def broadcast(self, name):
        node = self.nodes[name]
        # Register with the oracle *before* the wire send: a fast peer
        # can deliver before broadcast() returns.
        message_id = (name, node.endpoint.clock.send_count + 1)
        self.oracle.on_send(
            name, message_id,
            now=asyncio.get_running_loop().time(),
            fanout=len(self.nodes) - 1,
        )
        for other in self.nodes:
            if other != name:
                self.expected[other] += 1
        self.sends[name] += 1
        message = await node.broadcast((name, self.sends[name]))
        assert message.message_id == message_id

    async def rounds(self, count, pause=0.1):
        for _ in range(count):
            for name in tuple(self.nodes):
                await self.broadcast(name)
            await asyncio.sleep(pause)

    def converged(self):
        # ``node.deliveries`` includes the node's own (local) sends —
        # minus whatever an earlier incarnation sent before a restart.
        return all(
            len(node.deliveries)
            == self.expected[name] + self.sends[name] - self.restart_base[name]
            for name, node in self.nodes.items()
        )

    async def barrier(self, label):
        assert await wait_for(self.converged, timeout=60.0), (
            f"no convergence at '{label}': expected={self.expected}, "
            f"delivered="
            f"{ {n: len(node.deliveries) for n, node in self.nodes.items()} }"
        )

    async def leave(self, name):
        node = self.nodes.pop(name)
        self.released[name] = tuple(node.endpoint.clock.own_keys)
        await node.membership.leave()
        await node.close()

    async def kill(self, name):
        node = self.nodes.pop(name)
        self.released[name] = tuple(node.endpoint.clock.own_keys)
        await node.close()  # silent: no LEAVE, quarantine must age it out


def test_churn_soak(tmp_path):
    metrics_dir = Path(os.environ.get("CHURN_SOAK_METRICS_DIR", tmp_path))
    metrics_dir.mkdir(parents=True, exist_ok=True)

    async def scenario():
        harness = Harness(tmp_path / "journals", metrics_dir)

        # Phase 1 — form the base group of four and soak it.
        founder = await harness.spawn(
            "a", keys=(0, 1, 2), assigner=PerfectKeyAssigner(64, 3)
        )
        seed = (founder.local_address,)
        await harness.spawn("b", seeds=seed)
        # c only knows b: the JOIN must redirect to the coordinator,
        # through the lossy transport.
        await harness.spawn("c", seeds=(harness.nodes["b"].local_address,))
        await harness.spawn("d", seeds=seed)
        assert await wait_for(
            lambda: founder.membership.view.view_id == 4, timeout=30.0
        )
        await harness.rounds(6)
        await harness.barrier("base group")

        # Phase 2 — flash growth to seven, traffic between every join.
        for joiner in ("e", "f", "g"):
            await harness.spawn(joiner, seeds=seed)
            # The joiner starts from the transferred frontier, not from
            # a replay of history.
            assert len(harness.nodes[joiner].deliveries) == 0
            await harness.rounds(2)
            await harness.barrier(f"after {joiner} joined")
        assert founder.membership.view.view_id == 7
        assert len(founder.membership.view.members) == 7

        # Phase 3 — shrink: two graceful leaves, view churn mid-traffic.
        await harness.leave("d")
        await harness.rounds(2)
        await harness.barrier("after d left")
        await harness.leave("e")
        await harness.rounds(2)
        await harness.barrier("after e left")
        assert await wait_for(
            lambda: sorted(founder.membership.view.member_ids())
            == ["a", "b", "c", "f", "g"],
            timeout=30.0,
        ), "graceful leaves never shrank the view"

        # Phase 4 — two forced evictions: silent crashes that quarantine
        # ages out while the survivors keep broadcasting.
        for victim in ("f", "g"):
            await harness.kill(victim)
            # Traffic keeps flowing while the victim's silence ages
            # through quarantine into coordinator eviction.
            deadline_rounds = 0
            while victim in founder.membership.view.member_ids():
                await harness.rounds(1)
                deadline_rounds += 1
                assert deadline_rounds < 100, f"{victim} never evicted"
            await harness.barrier(f"after {victim} evicted")
        # f and g are always evicted; d or e can degrade from a graceful
        # leave into an eviction if the whole LEAVE burst is lost (the
        # documented backstop), so the split may shift but never the sum.
        assert founder.membership.evictions >= 2
        assert founder.membership.evictions + founder.membership.leaves == 4
        assert sorted(founder.membership.view.member_ids()) == ["a", "b", "c"]
        for departed in ("d", "e", "f", "g"):
            assert departed not in founder.membership.assigner
            assert departed not in founder.store.frontiers()

        # Phase 5 — a late joiner inherits recycled keys (the perfect
        # assigner recycles released slots LIFO, so h gets an evictee's
        # exact key set) and converges on post-join traffic.
        await harness.spawn("h", seeds=seed)
        h_keys = tuple(harness.nodes["h"].endpoint.clock.own_keys)
        assert h_keys in (harness.released["f"], harness.released["g"]), (
            f"joiner got {h_keys}, not a recycled evictee key set "
            f"(released: {harness.released})"
        )
        await harness.rounds(4)
        await harness.barrier("final group")
        assert harness.expected["h"] > 0
        assert founder.membership.view.view_id == 12

        # Phase 6 — mid-soak epoch bump: at a quiesced barrier the
        # coordinator renegotiates the group's K.  The perfect assigner
        # re-tiles disjoint slots at the new K, so the exact delivery
        # condition — and with it the oracle's zero-violation bar —
        # survives the new geometry.
        assert founder.membership.epoch == 0
        bumped = founder.membership.propose_epoch(2)
        assert bumped.epoch == 1 and bumped.view_id == 13
        assert await wait_for(
            lambda: all(
                n.membership.epoch == 1 for n in harness.nodes.values()
            ),
            timeout=30.0,
        ), "epoch bump never reached every member"
        for node in harness.nodes.values():
            assert node.endpoint.clock.k == 2
            assert node.epoch == 1  # outgoing frames stamp the new epoch
        claimed = [
            key for m in founder.membership.view.members for key in m.keys
        ]
        assert len(claimed) == len(set(claimed)) == 8, (
            f"re-tiled keys are not disjoint: {claimed}"
        )
        await harness.rounds(4)
        await harness.barrier("after the epoch bump")

        # Phase 7 — crash/restart on the bumped geometry: h dies
        # silently (journal kept) and rejoins; recovery plus the
        # re-admission grant must agree with the live epoch-1 view.
        h_keys_bumped = tuple(harness.nodes["h"].endpoint.clock.own_keys)
        await harness.kill("h")
        revived = await harness.restart("h", seeds=seed)
        assert revived.membership.epoch == 1
        assert revived.endpoint.clock.k == 2
        assert revived.epoch == 1
        assert tuple(revived.endpoint.clock.own_keys) == h_keys_bumped, (
            "the rejoin re-granted different keys than the journal "
            "recovered"
        )
        await harness.rounds(3)
        await harness.barrier("after h rejoined on the new geometry")
        assert founder.membership.view.k() == 2

        # Oracle verdicts: violations are asserted per delivery in the
        # callback; the totals prove the classification actually ran and
        # nothing was ever force-merged (ambiguity only arises after a
        # violation or a bad state-transfer seed).
        totals = harness.oracle.totals
        assert totals.deliveries > 0
        assert totals.violations == 0, f"{totals.violations} causal violations"
        assert totals.ambiguous == 0, f"{totals.ambiguous} ambiguous deliveries"

        # The loss genuinely fired, and liveness saw the crashed nodes.
        assert sum(n.transport.dropped for n in harness.nodes.values()) > 0
        assert sum(n.liveness.quarantines for n in harness.nodes.values()) >= 2

        for node in harness.nodes.values():
            await node.close()

        # Observability: every incarnation exported metrics JSONL (the
        # CI job uploads these), and the membership pipeline's counters
        # moved where they should have.
        from repro.obs import last_snapshot, merge_snapshots

        snapshots = {}
        for name in ALL_NAMES:
            snapshot = last_snapshot(metrics_dir / f"{name}.metrics.jsonl")
            assert snapshot is not None, f"{name} exported no metrics"
            snapshots[name] = snapshot
        coordinator = snapshots["a"]
        # 12 views of churn + the epoch bump.  h's quick restart is an
        # idempotent re-admission (no view change, no new admission) —
        # unless its crash aged into an eviction first, which adds an
        # eviction view and a genuine re-join.
        assert coordinator["gauges"]["repro_membership_view_id"] >= 13
        assert coordinator["gauges"]["repro_membership_view_size"] == 4
        assert coordinator["gauges"]["repro_membership_epoch"] == 1
        counters = coordinator["counters"]
        assert counters["repro_membership_epoch_bumps_total"] == 1
        assert counters["repro_membership_joins_admitted_total"] >= 7
        assert counters["repro_membership_evictions_total"] >= 2
        assert (
            counters["repro_membership_evictions_total"]
            + counters["repro_membership_leaves_total"]
        ) in (4, 5)
        assert counters["repro_membership_view_changes_total"] >= 13
        fleet = merge_snapshots(list(snapshots.values()))
        assert fleet["counters"]["repro_membership_join_attempts_total"] >= 7
        assert fleet["counters"]["repro_endpoint_delivered_total"] > 0

    asyncio.run(scenario())
