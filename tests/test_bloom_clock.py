"""Bloom clock (Ramabaja) unit tests and its false-positive theory.

The Bloom clock draws ``h`` hashed cells *per event* instead of the
(n, r, k) family's static per-process keys; everything downstream —
Algorithm 2's delivery condition, the pending buffers, the detectors —
reads ``timestamp.sender_keys`` and works unchanged.  These tests pin
the key derivation (deterministic across processes), the per-event
variation, causal delivery through the standard endpoint, and the
``p_fp`` curve's identity with the paper's ``P_err``.
"""

import pytest

from repro.core.clocks import BloomCausalClock
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint
from repro.core.theory import optimal_k, p_error, p_fp


class TestKeyDerivation:
    def test_same_owner_same_sequence_same_keys(self):
        """Key sets are a pure function of (salt, owner, seq): a restarted
        or remote replica of the same owner derives identical cells."""
        a = BloomCausalClock(64, hashes=4, owner="alice")
        b = BloomCausalClock(64, hashes=4, owner="alice")
        for _ in range(5):
            assert a.prepare_send().sender_keys == b.prepare_send().sender_keys

    def test_keys_vary_per_event(self):
        clock = BloomCausalClock(64, hashes=4, owner="alice")
        key_sets = {clock.prepare_send().sender_keys for _ in range(10)}
        assert len(key_sets) == 10  # fresh draw each event

    def test_keys_vary_per_owner(self):
        a = BloomCausalClock(64, hashes=4, owner="alice")
        b = BloomCausalClock(64, hashes=4, owner="bob")
        assert a.prepare_send().sender_keys != b.prepare_send().sender_keys

    def test_salt_shifts_the_family(self):
        a = BloomCausalClock(64, hashes=4, owner="alice", salt=0)
        b = BloomCausalClock(64, hashes=4, owner="alice", salt=1)
        assert a.prepare_send().sender_keys != b.prepare_send().sender_keys

    def test_exactly_h_distinct_sorted_cells(self):
        clock = BloomCausalClock(32, hashes=5, owner="alice")
        for _ in range(8):
            keys = clock.prepare_send().sender_keys
            assert len(keys) == 5
            assert len(set(keys)) == 5
            assert list(keys) == sorted(keys)
            assert all(0 <= key < 32 for key in keys)

    def test_hashes_validation(self):
        with pytest.raises(ConfigurationError):
            BloomCausalClock(16, hashes=0, owner="a")
        with pytest.raises(ConfigurationError):
            BloomCausalClock(4, hashes=5, owner="a")

    def test_hashes_property(self):
        assert BloomCausalClock(16, hashes=3, owner="a").hashes == 3


class TestCausalDelivery:
    def _endpoint(self, name, m=48, h=3):
        return CausalBroadcastEndpoint(
            name, BloomCausalClock(m, hashes=h, owner=name)
        )

    def test_out_of_order_chain_held_and_released(self):
        sender = self._endpoint("s")
        chain = [sender.broadcast(i) for i in range(6)]
        receiver = self._endpoint("rx")
        assert receiver.on_receive(chain[2]) == []   # blocked: missing 0, 1
        assert receiver.on_receive(chain[1]) == []   # still missing 0
        records = receiver.on_receive(chain[0])      # releases 0, 1, 2
        assert [r.message.payload for r in records] == [0, 1, 2]
        records = [
            record
            for message in chain[3:]
            for record in receiver.on_receive(message)
        ]
        assert [r.message.payload for r in records] == [3, 4, 5]
        assert receiver.pending_count == 0

    def test_cross_process_dependency(self):
        alice, bob, carol = (self._endpoint(n) for n in ("a", "b", "c"))
        m1 = alice.broadcast("hi")
        bob.on_receive(m1)
        m2 = bob.broadcast("re: hi")  # causally after m1
        assert carol.on_receive(m2) == []  # must wait for m1
        records = carol.on_receive(m1)
        assert [r.message.payload for r in records] == ["hi", "re: hi"]


class TestFalsePositiveTheory:
    def test_identity_with_p_err(self):
        """One covering formula predicts both families (static keys and
        per-event keys draw from the same Bloom analysis)."""
        for m, h, x in [(100, 4, 20.0), (64, 3, 8.0), (256, 6, 40.0)]:
            assert p_fp(m, h, x) == p_error(m, h, x)

    def test_monotone_in_inserts(self):
        values = [p_fp(128, 4, x) for x in (1.0, 5.0, 20.0, 80.0)]
        assert values == sorted(values)
        assert 0.0 <= values[0] and values[-1] <= 1.0

    def test_optimal_h_matches_shared_optimum(self):
        m, x = 128, 16.0
        h_star = optimal_k(m, x)  # ln2 · m / X, shared with the (R, K) clock
        below, above = int(h_star) - 1, int(h_star) + 2
        assert p_fp(m, int(round(h_star)), x) <= p_fp(m, max(1, below), x)
        assert p_fp(m, int(round(h_star)), x) <= p_fp(m, above, x)

    def test_zero_inserts_no_false_positives(self):
        assert p_fp(64, 4, 0.0) == 0.0
