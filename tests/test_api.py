"""Tests for the repro.api assembly layer (NodeConfig + factories)."""

import asyncio

import pytest

from repro import NodeConfig, create_clock, create_detector, create_endpoint, create_node
from repro.api import DETECTORS, SCHEMES
from repro.core.clocks import (
    LamportCausalClock,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    VectorCausalClock,
)
from repro.core.detector import BasicAlertDetector, NullDetector, RefinedAlertDetector
from repro.core.errors import ConfigurationError
from repro.core.keyspace import RandomKeyAssigner
from repro.core.protocol import CausalBroadcastEndpoint
from repro.net import LocalAsyncBus, ReliableCausalNode
from repro.util.rng import RandomSource


class TestNodeConfig:
    def test_defaults_are_valid(self):
        config = NodeConfig()
        assert config.scheme == "probabilistic"
        assert config.r > 0 and 0 < config.k <= config.r

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scheme="quantum"),
            dict(detector="psychic"),
            dict(payload_codec="xml"),
            dict(scheme="vector"),           # vector without n
            dict(r=0),
            dict(k=0),
            dict(r=4, k=9),
            dict(anti_entropy_interval=-0.5),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NodeConfig(**kwargs)

    def test_replace_produces_modified_copy(self):
        base = NodeConfig(r=64)
        changed = base.replace(k=5)
        assert changed.k == 5 and changed.r == 64
        assert base.k == 3  # original untouched

    def test_retransmit_policy_reflects_config(self):
        config = NodeConfig(ack_timeout=0.1, max_retries=4, send_buffer=7)
        policy = config.retransmit_policy()
        assert policy.initial_timeout == 0.1
        assert policy.max_retries == 4
        assert policy.send_buffer == 7


class TestCreateClock:
    def test_probabilistic_clock(self):
        clock = create_clock("alice", NodeConfig(r=64, k=3))
        assert isinstance(clock, ProbabilisticCausalClock)
        assert clock.r == 64 and clock.k == 3

    def test_hash_assignment_is_stable_and_salted(self):
        config = NodeConfig(r=64, k=3)
        again = create_clock("alice", config)
        assert create_clock("alice", config).own_keys == again.own_keys
        salted = create_clock("alice", config.replace(keyspace_seed=1))
        # Different salt, different draw (overwhelmingly likely for C(64,3)).
        assert salted.own_keys != again.own_keys

    def test_plausible_clock(self):
        clock = create_clock("bob", NodeConfig(r=32, scheme="plausible"))
        assert isinstance(clock, PlausibleCausalClock)
        assert clock.k == 1

    def test_lamport_clock(self):
        clock = create_clock("bob", NodeConfig(scheme="lamport"))
        assert isinstance(clock, LamportCausalClock)
        assert clock.r == 1 and clock.k == 1

    def test_vector_clock_needs_index(self):
        config = NodeConfig(scheme="vector", n=5)
        clock = create_clock("p2", config, index=2)
        assert isinstance(clock, VectorCausalClock)
        assert clock.r == 5 and clock.own_keys == (2,)
        with pytest.raises(ConfigurationError):
            create_clock("p2", config)

    def test_explicit_keys_override_hash(self):
        clock = create_clock("alice", NodeConfig(r=16, k=2, keys=(1, 9)))
        assert clock.own_keys == (1, 9)

    def test_coordinated_assigner_honoured(self):
        assigner = RandomKeyAssigner(16, 2, rng=RandomSource(seed=3))
        clock = create_clock("alice", NodeConfig(r=16, k=2), assigner=assigner)
        assert clock.own_keys == assigner.lookup("alice").keys

    def test_plausible_rejects_multi_key_override(self):
        with pytest.raises(ConfigurationError):
            create_clock("x", NodeConfig(r=16, scheme="plausible", keys=(1, 2)))


class TestCreateDetector:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("none", NullDetector),
            ("basic", BasicAlertDetector),
            ("refined", RefinedAlertDetector),
        ],
    )
    def test_each_detector_kind(self, name, kind):
        assert isinstance(create_detector(NodeConfig(detector=name)), kind)

    def test_detector_list_is_exhaustive(self):
        assert set(DETECTORS) == {"none", "basic", "refined"}


class TestCreateEndpoint:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_yields_working_endpoint(self, scheme):
        config = NodeConfig(r=16, k=2, scheme=scheme,
                            n=4 if scheme == "vector" else None)
        endpoints = [
            create_endpoint(f"p{i}", config,
                            index=i if scheme == "vector" else None)
            for i in range(2)
        ]
        message = endpoints[0].broadcast("hi")
        records = endpoints[1].on_receive(message)
        assert [r.message.payload for r in records] == ["hi"]

    def test_default_config_used_when_omitted(self):
        endpoint = create_endpoint("solo")
        assert isinstance(endpoint, CausalBroadcastEndpoint)

    def test_delivery_callback_wired(self):
        seen = []
        endpoint = create_endpoint("solo", on_delivery=seen.append)
        endpoint.broadcast("x")
        assert len(seen) == 1 and seen[0].local

    def test_max_pending_threaded_through(self):
        sender = create_endpoint("s", NodeConfig(r=8, k=2))
        receiver = create_endpoint("r", NodeConfig(r=8, k=2, max_pending=1))
        first = sender.broadcast(1)
        second = sender.broadcast(2)
        third = sender.broadcast(3)
        receiver.on_receive(third)  # pending (missing 1, 2)
        with pytest.raises(ConfigurationError):
            receiver.on_receive(second)  # exceeds max_pending=1
        del first


class TestCreateNode:
    def test_node_over_bus_transport(self):
        async def scenario():
            bus = LocalAsyncBus()
            config = NodeConfig(r=32, k=2, anti_entropy_interval=0.0)
            a = await create_node("a", config, transport=bus.attach("a"))
            b = await create_node("b", config, transport=bus.attach("b"))
            assert isinstance(a, ReliableCausalNode)
            a.add_peer("b")
            b.add_peer("a")
            await a.broadcast("over the bus")
            await bus.drain()
            # Let the ack round-trip settle before tearing down.
            await asyncio.sleep(0.05)
            assert b.delivered_payloads() == ["over the bus"]
            await a.close()
            await b.close()

        asyncio.run(scenario())

    def test_start_false_defers_background_tasks(self):
        async def scenario():
            bus = LocalAsyncBus()
            node = await create_node(
                "late", NodeConfig(r=16, k=2), transport=bus.attach("late"),
                start=False,
            )
            assert node.session._tick_task is None
            await node.start()
            assert node.session._tick_task is not None
            await node.close()

        asyncio.run(scenario())

    def test_raw_payload_codec_selected(self):
        async def scenario():
            bus = LocalAsyncBus()
            config = NodeConfig(r=16, k=2, payload_codec="raw",
                                anti_entropy_interval=0.0)
            a = await create_node("a", config, transport=bus.attach("a"))
            b = await create_node("b", config, transport=bus.attach("b"))
            a.add_peer("b")
            await a.broadcast(b"\x00\x01binary")
            await bus.drain()
            await asyncio.sleep(0.05)
            assert b.delivered_payloads(include_local=False) == [b"\x00\x01binary"]
            await a.close()
            await b.close()

        asyncio.run(scenario())


class TestBackwardCompatibility:
    def test_old_constructors_still_work(self):
        """The facade must not break the hand-wired path."""
        from repro.core import (
            BasicAlertDetector,
            CausalBroadcastEndpoint,
            ProbabilisticCausalClock,
            RandomKeyAssigner,
        )

        assigner = RandomKeyAssigner(32, 3, rng=RandomSource(seed=1))
        endpoint = CausalBroadcastEndpoint(
            process_id="old-school",
            clock=ProbabilisticCausalClock(32, assigner.assign("old-school").keys),
            detector=BasicAlertDetector(),
        )
        endpoint.broadcast("still works")
        assert endpoint.stats.sent == 1

    def test_package_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"
