"""Differential test: buffered drain engines == reference naive drain.

The entry-indexed :class:`~repro.core.pending.PendingBuffer` and the
per-sender :class:`~repro.core.pending.HybridBuffer` are pure
performance reworks of Algorithm 2's delivery loop — each must be
*observationally identical* to the naive full-rescan drain kept in the
endpoint as the reference path.  These tests run the engines over the
same randomized traces (multiple causally-entangled senders, drops,
reorders, duplicates) and assert byte-identical delivery order, alerts,
stats, pending sets, and clock state.
"""

import random

import pytest

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.detector import BasicAlertDetector, RefinedAlertDetector
from repro.core.errors import ConfigurationError
from repro.core.keyspace import HashKeyAssigner
from repro.core.protocol import ENGINE_MODES, CausalBroadcastEndpoint


def make_trace(rng, senders=4, rounds=12, r=16, k=2, gossip=0.7):
    """A causally-entangled broadcast history.

    Senders broadcast in a random interleaving; after each broadcast the
    message is (reliably, in causal order) applied at a random subset of
    the other senders, so later timestamps chain across processes.
    Returns the global broadcast sequence plus the key assignment.
    """
    assigner = HashKeyAssigner(r=r, k=k)
    names = [f"s{i}" for i in range(senders)]
    eps = {
        name: CausalBroadcastEndpoint(
            name, ProbabilisticCausalClock(r, assigner.assign(name).keys)
        )
        for name in names
    }
    trace = []
    for _ in range(rounds):
        for name in rng.sample(names, len(names)):
            message = eps[name].broadcast(f"{name}:{eps[name].clock.send_count + 1}")
            trace.append(message)
            for other in names:
                if other != name and rng.random() < gossip:
                    eps[other].on_receive(message)
    return trace, assigner


def arrival_schedule(rng, trace, loss=0.15, dup=0.1, window=6):
    """Receiver-side arrival sequence: drops, duplicates, local reorder."""
    arrivals = []
    for index, message in enumerate(trace):
        if rng.random() < loss:
            continue
        arrivals.append((index + rng.uniform(0, window), rng.random(), message))
        if rng.random() < dup:
            arrivals.append((index + rng.uniform(0, window), rng.random(), message))
    arrivals.sort(key=lambda t: (t[0], t[1]))
    return [message for _, _, message in arrivals]


def _rx_keys(assigner):
    if "rx" in assigner.assignments:
        return assigner.lookup("rx").keys
    return assigner.assign("rx").keys


def make_receiver(engine, assigner, r=16, detector_cls=BasicAlertDetector):
    detector = detector_cls() if detector_cls is not None else None
    return CausalBroadcastEndpoint(
        "rx",
        ProbabilisticCausalClock(r, _rx_keys(assigner)),
        detector=detector,
        engine=engine,
    )


def observe(endpoint, arrivals):
    delivered = []
    for now, message in enumerate(arrivals):
        for record in endpoint.on_receive(message, now=float(now)):
            delivered.append(
                (record.message.message_id, record.message.payload, record.alert)
            )
    return delivered


def observe_with_sends(endpoint, arrivals, send_before):
    """Like :func:`observe`, but the receiver broadcasts before the
    arrivals whose indices appear in ``send_before`` — interleaving the
    Algorithm 1 local increments that historically escaped the indexed
    buffer's wakeup index."""
    delivered = []
    for now, message in enumerate(arrivals):
        if now in send_before:
            endpoint.broadcast(f"local:{now}", now=float(now))
        for record in endpoint.on_receive(message, now=float(now)):
            delivered.append(
                (record.message.message_id, record.message.payload, record.alert)
            )
    return delivered


def assert_equivalent_with_sends(candidate, naive, arrivals, send_before):
    deliveries_candidate = observe_with_sends(candidate, arrivals, send_before)
    deliveries_naive = observe_with_sends(naive, arrivals, send_before)
    assert deliveries_candidate == deliveries_naive
    assert candidate.clock.snapshot() == naive.clock.snapshot()
    assert candidate.stats == naive.stats
    assert [m.message_id for m in candidate.pending_messages()] == [
        m.message_id for m in naive.pending_messages()
    ]
    return deliveries_candidate


def assert_equivalent(indexed, naive, arrivals):
    deliveries_indexed = observe(indexed, arrivals)
    deliveries_naive = observe(naive, arrivals)
    assert deliveries_indexed == deliveries_naive
    assert indexed.clock.snapshot() == naive.clock.snapshot()
    assert indexed.stats == naive.stats
    assert [m.message_id for m in indexed.pending_messages()] == [
        m.message_id for m in naive.pending_messages()
    ]
    assert indexed.seen_frontiers() == naive.seen_frontiers()
    return deliveries_indexed


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_traces_match(self, seed):
        rng = random.Random(1000 + seed)
        trace, assigner = make_trace(rng)
        arrivals = arrival_schedule(rng, trace)
        indexed = make_receiver("indexed", assigner)
        naive = make_receiver("naive", assigner)
        deliveries = assert_equivalent(indexed, naive, arrivals)
        assert deliveries  # the trace actually exercised delivery

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_reorder_and_loss(self, seed):
        rng = random.Random(2000 + seed)
        trace, assigner = make_trace(rng, senders=6, rounds=10, gossip=0.9)
        arrivals = arrival_schedule(rng, trace, loss=0.3, dup=0.2, window=25)
        indexed = make_receiver("indexed", assigner)
        naive = make_receiver("naive", assigner)
        assert_equivalent(indexed, naive, arrivals)

    @pytest.mark.parametrize("seed", range(6))
    def test_refined_detector_alerts_match(self, seed):
        rng = random.Random(3000 + seed)
        trace, assigner = make_trace(rng, senders=5, rounds=8, k=1, gossip=0.5)
        arrivals = arrival_schedule(rng, trace, loss=0.25, window=15)
        indexed = make_receiver("indexed", assigner, detector_cls=RefinedAlertDetector)
        naive = make_receiver("naive", assigner, detector_cls=RefinedAlertDetector)
        assert_equivalent(indexed, naive, arrivals)

    def test_in_order_trace_matches(self):
        rng = random.Random(42)
        trace, assigner = make_trace(rng, senders=3, rounds=5)
        indexed = make_receiver("indexed", assigner)
        naive = make_receiver("naive", assigner)
        deliveries = assert_equivalent(indexed, naive, list(trace))
        assert len(deliveries) == len(trace)
        assert indexed.pending_count == 0

    @pytest.mark.parametrize("engine", ["indexed", "hybrid", "auto"])
    def test_local_send_unblocks_pending(self, engine):
        """Regression for the 340-vs-342 ``check_competitors`` hair: a
        *local* broadcast (Algorithm 1) increments the receiver's own
        keys, which can satisfy a pending message's last unsatisfied
        entries without any delivery touching them.  The next drain must
        deliver that message exactly where the naive pass-1 rescan would.
        """
        r = 8
        s0 = CausalBroadcastEndpoint("s0", ProbabilisticCausalClock(r, (0, 1)))
        s1 = CausalBroadcastEndpoint("s1", ProbabilisticCausalClock(r, (2, 3)))
        s0.broadcast("m1")  # lost: m2 stays pending at the receiver
        m2 = s0.broadcast("m2")
        d1 = s1.broadcast("d1")
        rx = CausalBroadcastEndpoint(
            "rx", ProbabilisticCausalClock(r, (0, 1)), engine=engine
        )
        assert rx.on_receive(m2, now=0.0) == []  # deficit on entries {0, 1}
        # The receiver's own keys coincide with the deficit entries: its
        # send completes m2's delivery condition out of band.
        rx.broadcast("local", now=0.5)
        ids = [rec.message.message_id for rec in rx.on_receive(d1, now=1.0)]
        assert ids == [d1.message_id, m2.message_id]
        assert rx.pending_count == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_local_sends_match(self, seed):
        rng = random.Random(4000 + seed)
        trace, assigner = make_trace(rng, senders=5, rounds=10, gossip=0.8)
        arrivals = arrival_schedule(rng, trace, loss=0.25, dup=0.1, window=20)
        send_before = {i for i in range(len(arrivals)) if rng.random() < 0.2}
        indexed = make_receiver("indexed", assigner)
        naive = make_receiver("naive", assigner)
        assert_equivalent_with_sends(indexed, naive, arrivals, send_before)

    def test_wave_unblock_chain_matches(self):
        """A deep dependency chain delivered in reverse arrival order."""
        assigner = HashKeyAssigner(r=12, k=2)
        sender = CausalBroadcastEndpoint(
            "s0", ProbabilisticCausalClock(12, assigner.assign("s0").keys)
        )
        chain = [sender.broadcast(i) for i in range(20)]
        arrivals = [chain[0]] + list(reversed(chain[1:]))
        indexed = make_receiver("indexed", assigner, r=12)
        naive = make_receiver("naive", assigner, r=12)
        deliveries = assert_equivalent(indexed, naive, arrivals)
        assert [payload for _, payload, _ in deliveries] == list(range(20))
        assert indexed.pending_count == 0


class TestHybridDifferential:
    """The per-sender hybrid engine against the naive reference drain."""

    # Same seeds as TestDifferential: the traces are engine-independent,
    # and those seeds are known to exercise delivery.
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_traces_match(self, seed):
        rng = random.Random(1000 + seed)
        trace, assigner = make_trace(rng)
        arrivals = arrival_schedule(rng, trace)
        hybrid = make_receiver("hybrid", assigner)
        naive = make_receiver("naive", assigner)
        deliveries = assert_equivalent(hybrid, naive, arrivals)
        assert deliveries

    @pytest.mark.parametrize("seed", range(6))
    def test_heavy_reorder_and_loss(self, seed):
        rng = random.Random(2000 + seed)
        trace, assigner = make_trace(rng, senders=6, rounds=10, gossip=0.9)
        arrivals = arrival_schedule(rng, trace, loss=0.3, dup=0.2, window=25)
        hybrid = make_receiver("hybrid", assigner)
        naive = make_receiver("naive", assigner)
        assert_equivalent(hybrid, naive, arrivals)

    @pytest.mark.parametrize("seed", range(6))
    def test_refined_detector_alerts_match(self, seed):
        rng = random.Random(3000 + seed)
        trace, assigner = make_trace(rng, senders=5, rounds=8, k=1, gossip=0.5)
        arrivals = arrival_schedule(rng, trace, loss=0.25, window=15)
        hybrid = make_receiver("hybrid", assigner, detector_cls=RefinedAlertDetector)
        naive = make_receiver("naive", assigner, detector_cls=RefinedAlertDetector)
        assert_equivalent(hybrid, naive, arrivals)

    @pytest.mark.parametrize("seed", range(6))
    def test_hybrid_matches_indexed(self, seed):
        """Transitivity check: the two buffered engines also agree."""
        rng = random.Random(8000 + seed)
        trace, assigner = make_trace(rng, senders=5, rounds=10, gossip=0.8)
        arrivals = arrival_schedule(rng, trace, loss=0.2, dup=0.15, window=12)
        hybrid = make_receiver("hybrid", assigner)
        indexed = make_receiver("indexed", assigner)
        assert_equivalent(hybrid, indexed, arrivals)

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_local_sends_match(self, seed):
        rng = random.Random(4000 + seed)
        trace, assigner = make_trace(rng, senders=5, rounds=10, gossip=0.8)
        arrivals = arrival_schedule(rng, trace, loss=0.25, dup=0.1, window=20)
        send_before = {i for i in range(len(arrivals)) if rng.random() < 0.2}
        hybrid = make_receiver("hybrid", assigner)
        naive = make_receiver("naive", assigner)
        assert_equivalent_with_sends(hybrid, naive, arrivals, send_before)

    def test_reverse_chain_probes_fronts_only(self):
        """One sender's chain arriving in reverse: the prefix property
        means every blocked message sits behind its queue front, so the
        hybrid drain probes O(chain) fronts instead of O(chain²) items.
        """
        assigner = HashKeyAssigner(r=12, k=2)
        sender = CausalBroadcastEndpoint(
            "s0", ProbabilisticCausalClock(12, assigner.assign("s0").keys)
        )
        chain = [sender.broadcast(i) for i in range(30)]
        arrivals = [chain[0]] + list(reversed(chain[1:]))
        hybrid = make_receiver("hybrid", assigner, r=12)
        naive = make_receiver("naive", assigner, r=12)
        deliveries = assert_equivalent(hybrid, naive, arrivals)
        assert [payload for _, payload, _ in deliveries] == list(range(30))
        assert hybrid.pending_count == 0
        # The 29 blocked messages all queued behind one front; deliver
        # wakeups stay linear in the chain length.
        buffer = hybrid._buffer
        assert buffer.wakeups <= 4 * len(chain)


class TestEngineOption:
    def test_engine_modes_exposed(self):
        assert ENGINE_MODES == ("indexed", "naive", "auto", "hybrid")

    def test_default_engine_is_indexed(self):
        ep = CausalBroadcastEndpoint("a", ProbabilisticCausalClock(6, (0, 1)))
        assert ep.engine == "indexed"

    def test_hybrid_engine_selectable(self):
        ep = CausalBroadcastEndpoint(
            "a", ProbabilisticCausalClock(6, (0, 1)), engine="hybrid"
        )
        assert ep.engine == "hybrid"
        assert ep.active_engine == "hybrid"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            CausalBroadcastEndpoint(
                "a", ProbabilisticCausalClock(6, (0, 1)), engine="turbo"
            )
