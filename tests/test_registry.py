"""The pluggable clock/engine/detector registry (DESIGN.md §9).

Covers the registry contract end to end: unknown names fail loudly with
the registered alternatives, the four legacy scheme strings still build
the exact classes they always did, a toy clock and a toy engine
registered in-test round-trip through every assembly layer
(``create_clock``/``create_endpoint``/``NodeConfig``/
``SimulationConfig``), wire scheme ids stay unique, and the codec's
scheme byte keeps timestamp families wire-distinguishable.
"""

from types import SimpleNamespace

import pytest

from repro.api import (
    DETECTORS,
    SCHEMES,
    NodeConfig,
    create_clock,
    create_detector,
    create_endpoint,
)
from repro.core.clocks import (
    BloomCausalClock,
    LamportCausalClock,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    VectorCausalClock,
)
from repro.core.codec import CodecError, MessageCodec
from repro.core.errors import ConfigurationError
from repro.core.pending import PendingBuffer
from repro.core.protocol import CausalBroadcastEndpoint
from repro.core.registry import (
    ClockBuildContext,
    clock_schemes,
    detector_names,
    engine_names,
    get_clock_spec,
    get_detector_spec,
    get_engine_spec,
    register_clock,
    register_engine,
    scheme_id_of,
    scheme_name_of,
    unregister_clock,
    unregister_engine,
)
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig, run_simulation


@pytest.fixture
def toy_clock():
    """A throwaway clock scheme registered for one test."""
    name = "toy-clock"
    register_clock(
        name,
        lambda ctx: ProbabilisticCausalClock(ctx.r, ctx.keys),
        description="test-only alias of the probabilistic clock",
        needs_key_assignment=True,
    )
    yield name
    unregister_clock(name)


@pytest.fixture
def toy_engine():
    """A throwaway drain engine registered for one test."""
    name = "toy-engine"
    register_engine(
        name,
        PendingBuffer,
        description="test-only alias of the indexed engine",
    )
    yield name
    unregister_engine(name)


class TestLookupFailures:
    def test_unknown_clock_lists_registered(self):
        with pytest.raises(ConfigurationError, match="probabilistic"):
            get_clock_spec("quantum")

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(ConfigurationError, match="indexed"):
            get_engine_spec("turbo")

    def test_unknown_detector_lists_registered(self):
        with pytest.raises(ConfigurationError, match="refined"):
            get_detector_spec("basci")

    def test_detector_typo_rejected_by_factory(self):
        """The historical bug: ``create_detector`` silently returned the
        refined detector for any unrecognized string."""
        # a config object carrying the typo (NodeConfig itself refuses it)
        stub = SimpleNamespace(detector="basci", detector_window=None)
        with pytest.raises(ConfigurationError, match="basci"):
            create_detector(stub)
        # the supported path: NodeConfig rejects the typo at construction
        with pytest.raises(ConfigurationError, match="'basci'"):
            NodeConfig(r=16, k=2, detector="basci")

    def test_node_config_rejects_unknown_scheme_and_engine(self):
        with pytest.raises(ConfigurationError, match="unknown clock"):
            NodeConfig(r=16, k=2, scheme="quantum")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            NodeConfig(r=16, k=2, engine="turbo")

    def test_simulation_config_rejects_unknown_names(self):
        base = dict(
            n_nodes=4, r=16, k=2, duration_ms=100.0,
            workload=PoissonWorkload(50.0),
            delay_model=GaussianDelayModel(5.0, 1.0, 0.0),
        )
        with pytest.raises(ConfigurationError, match="unknown clock"):
            SimulationConfig(clock="quantum", **base).validate()
        with pytest.raises(ConfigurationError, match="unknown detector"):
            SimulationConfig(detector="basci", **base).validate()
        with pytest.raises(ConfigurationError, match="unknown engine"):
            SimulationConfig(engine="turbo", **base).validate()


class TestLegacySchemes:
    """The four pre-registry scheme strings build the same classes."""

    EXPECTED = {
        "probabilistic": ProbabilisticCausalClock,
        "plausible": PlausibleCausalClock,
        "lamport": LamportCausalClock,
        "vector": VectorCausalClock,
        "bloom": BloomCausalClock,
    }

    @pytest.mark.parametrize("scheme,cls", sorted(EXPECTED.items()))
    def test_create_clock_builds_exact_class(self, scheme, cls):
        dense = get_clock_spec(scheme).needs_dense_index
        config = NodeConfig(
            r=16, k=2, scheme=scheme, n=8 if dense else None
        )
        clock = create_clock("n0", config, index=0 if dense else None)
        assert type(clock) is cls

    def test_registration_order_preserves_legacy_prefix(self):
        assert clock_schemes()[:4] == (
            "probabilistic", "plausible", "lamport", "vector"
        )
        assert engine_names()[:3] == ("indexed", "naive", "auto")
        assert detector_names() == ("none", "basic", "refined")

    def test_api_snapshots_match_registry(self):
        assert SCHEMES == clock_schemes()
        assert DETECTORS == detector_names()

    def test_pinned_wire_scheme_ids(self):
        assert [scheme_id_of(s) for s in
                ("probabilistic", "plausible", "lamport", "vector", "bloom")
                ] == [1, 2, 3, 4, 5]
        assert scheme_name_of(3) == "lamport"


class TestToyPlugin:
    def test_round_trips_create_clock(self, toy_clock):
        clock = create_clock("n0", NodeConfig(r=16, k=2, scheme=toy_clock))
        assert isinstance(clock, ProbabilisticCausalClock)
        assert clock.r == 16

    def test_round_trips_create_endpoint(self, toy_clock, toy_engine):
        config = NodeConfig(r=16, k=2, scheme=toy_clock, engine=toy_engine)
        endpoint = create_endpoint("n0", config)
        assert endpoint.engine == toy_engine
        assert endpoint.active_engine == toy_engine
        message = endpoint.broadcast("hello")
        other = create_endpoint("n1", config)
        records = other.on_receive(message)
        assert [r.message.payload for r in records] == ["hello"]

    def test_round_trips_simulation(self, toy_clock, toy_engine):
        config = SimulationConfig(
            n_nodes=6, r=24, k=2, clock=toy_clock, engine=toy_engine,
            duration_ms=1500.0, workload=PoissonWorkload(120.0),
            delay_model=GaussianDelayModel(10.0, 2.0, 0.0), seed=3,
        )
        result = run_simulation(config)
        assert result.sent > 0
        assert result.delivered_remote > 0
        assert result.stuck_pending == 0

    def test_auto_allocated_scheme_id_is_fresh(self, toy_clock):
        allocated = scheme_id_of(toy_clock)
        assert allocated >= 6  # ids 1..5 are pinned to the built-ins
        assert scheme_name_of(allocated) == toy_clock

    def test_duplicate_name_requires_replace(self, toy_clock):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_clock(
                toy_clock,
                lambda ctx: ProbabilisticCausalClock(ctx.r, ctx.keys),
                description="dup",
            )
        register_clock(
            toy_clock,
            lambda ctx: PlausibleCausalClock(ctx.r, ctx.keys[0]),
            description="replaced",
            needs_key_assignment=True,
            fixed_k=1,
            replace=True,
        )
        clock = create_clock("n0", NodeConfig(r=16, k=2, scheme=toy_clock))
        assert isinstance(clock, PlausibleCausalClock)

    def test_duplicate_wire_id_rejected(self):
        with pytest.raises(ConfigurationError, match="already allocated"):
            register_clock(
                "toy-collider",
                lambda ctx: ProbabilisticCausalClock(ctx.r, ctx.keys),
                description="collides with probabilistic",
                needs_key_assignment=True,
                wire_scheme_id=1,
            )

    def test_unknown_engine_error_includes_toy_name(self, toy_engine):
        with pytest.raises(ConfigurationError, match=toy_engine):
            CausalBroadcastEndpoint(
                "a", ProbabilisticCausalClock(8, (0, 1)), engine="nope"
            )


class TestClockBuildContext:
    def test_factory_receives_context_fields(self, toy_clock):
        seen = {}

        def probe(ctx):
            seen["ctx"] = ctx
            return ProbabilisticCausalClock(ctx.r, ctx.keys)

        register_clock(
            toy_clock, probe, description="probe",
            needs_key_assignment=True, replace=True,
        )
        create_clock("n7", NodeConfig(r=32, k=3, scheme=toy_clock))
        ctx = seen["ctx"]
        assert isinstance(ctx, ClockBuildContext)
        assert ctx.node_id == "n7"
        assert ctx.r == 32
        assert len(ctx.keys) == 3


class TestCodecSchemeByte:
    def _endpoint(self, scheme, node="a"):
        spec = get_clock_spec(scheme)
        config = NodeConfig(
            r=16, k=2, scheme=scheme,
            n=8 if spec.needs_dense_index else None,
        )
        return create_endpoint(
            node, config, index=0 if spec.needs_dense_index else None
        )

    @pytest.mark.parametrize("scheme", sorted(TestLegacySchemes.EXPECTED))
    def test_roundtrip_preserves_scheme(self, scheme):
        codec = MessageCodec(scheme=scheme)
        message = self._endpoint(scheme).broadcast("x")
        data = codec.encode(message)
        assert MessageCodec.peek_scheme(data) == scheme
        decoded = codec.decode(data)
        assert decoded.timestamp.sender_keys == message.timestamp.sender_keys

    def test_cross_scheme_decode_rejected(self):
        bloom_wire = MessageCodec(scheme="bloom").encode(
            self._endpoint("bloom").broadcast("x")
        )
        with pytest.raises(CodecError, match="bloom"):
            MessageCodec(scheme="probabilistic").decode(bloom_wire)

    def test_peek_rejects_garbage(self):
        with pytest.raises(CodecError):
            MessageCodec.peek_scheme(b"nope")
