"""Whole-system property tests: randomized configurations, invariant checks.

Hypothesis drives the *configuration* space (population, clock geometry,
rates, delays, seeds); each draw runs a complete simulation and checks
the invariants that must hold for every member of the space:

* liveness — with reliable dissemination, everything sent is delivered
  everywhere, exactly once;
* conservation — oracle tallies partition deliveries; endpoint counters
  agree with the oracle's;
* FIFO — per-sender sequence numbers are delivered in order at every
  node (the mechanism never reorders one sender's stream, any (R, K));
* exactness — the vector-clock configuration never violates;
* determinism — same configuration, same counters.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    GaussianDelayModel,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)
from repro.sim.runner import NodeApplication


def random_config(draw):
    n_nodes = draw(st.integers(5, 25))
    r = draw(st.integers(4, 40))
    k = draw(st.integers(1, min(4, r)))
    clock = draw(st.sampled_from(["probabilistic", "plausible", "lamport", "vector"]))
    lam = draw(st.floats(200.0, 2_000.0))
    delay_mean = draw(st.floats(20.0, 150.0))
    seed = draw(st.integers(0, 2**20))
    return SimulationConfig(
        n_nodes=n_nodes,
        r=r,
        k=k,
        clock=clock,
        key_assigner="random-colliding",
        workload=PoissonWorkload(lam),
        delay_model=GaussianDelayModel(delay_mean, delay_mean / 5, delay_mean / 5),
        detector=draw(st.sampled_from(["none", "basic"])),
        duration_ms=draw(st.floats(3_000.0, 8_000.0)),
        seed=seed,
    )


class FifoProbe(NodeApplication):
    """Asserts per-sender FIFO order on every delivery."""

    def __init__(self):
        self.highest_seen = {}
        self.fifo_violations = 0
        self.deliveries = 0

    def make_payload(self, node_id, now):
        return None

    def on_deliver(self, node_id, record, verdict, now):
        self.deliveries += 1
        key = record.message.sender
        previous = self.highest_seen.get(key, 0)
        if record.message.seq != previous + 1:
            self.fifo_violations += 1
        self.highest_seen[key] = max(previous, record.message.seq)


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_liveness_and_conservation_over_random_configs(data):
    config = random_config(data.draw)
    result = run_simulation(config)
    # Liveness: everything sent reached everyone, exactly once.
    assert result.undelivered_messages == 0
    assert result.stuck_pending == 0
    assert result.delivered_remote == result.sent * (config.n_nodes - 1)
    # Conservation: the oracle's partition adds up.
    counters = result.counters
    assert counters.deliveries == counters.correct + counters.violations + counters.ambiguous
    assert 0.0 <= counters.eps_min <= counters.eps_max <= 1.0
    # Violations and their bypassed twins come in equal numbers once the
    # system drains (every bypass has a late partner that also arrives).
    assert counters.ambiguous <= counters.violations * (config.n_nodes)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_fifo_per_sender_everywhere(data):
    config = random_config(data.draw)
    probes = {}

    def factory(node_id):
        probe = FifoProbe()
        probes[node_id] = probe
        return probe

    config = dataclasses.replace(config, application_factory=factory)
    result = run_simulation(config)
    assert result.delivered_remote == sum(p.deliveries for p in probes.values())
    # The (R, K) condition enforces per-sender FIFO for every K and R:
    # a sender's own entries grow by K per send, so message i+1 can never
    # pass message i of the same sender... unless concurrent messages
    # covered the sender's whole key set.  FIFO violations are therefore
    # a subset of oracle violations.
    total_fifo_violations = sum(p.fifo_violations for p in probes.values())
    assert total_fifo_violations <= result.counters.violations + result.counters.ambiguous


@settings(max_examples=8, deadline=None)
@given(
    n_nodes=st.integers(5, 20),
    lam=st.floats(150.0, 1_000.0),
    seed=st.integers(0, 2**20),
)
def test_vector_clock_is_exact_for_any_configuration(n_nodes, lam, seed):
    result = run_simulation(
        SimulationConfig(
            n_nodes=n_nodes,
            clock="vector",
            workload=PoissonWorkload(lam),
            duration_ms=5_000.0,
            seed=seed,
        )
    )
    assert result.counters.violations == 0
    assert result.counters.ambiguous == 0
    assert result.stuck_pending == 0


@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_replay_determinism(data):
    config = random_config(data.draw)
    first = run_simulation(config)
    second = run_simulation(config)
    assert first.sent == second.sent
    assert first.counters.deliveries == second.counters.deliveries
    assert first.counters.violations == second.counters.violations
    assert first.counters.ambiguous == second.counters.ambiguous
    assert first.alerts.alerts == second.alerts.alerts
    assert first.latency == second.latency
