"""Live-runtime observability tests.

The centrepiece is the regression test for the dead alert pipeline: the
node used to call ``endpoint.broadcast`` / ``endpoint.on_receive``
without the ``now`` argument, so the refined detector's recent list was
timestamped at 0.0 forever — no window eviction, and any window-based
deployment silently degraded to the unbounded list.  The tests drive a
real two-node UDP pair with the node's clock hook replaced by a fake
clock and assert the detector actually ages entries out.

The rest covers the node-level metrics surface: ``NodeStats``, the
registry snapshot, the JSONL exporter lifecycle, the Prometheus HTTP
endpoint, and detector-count persistence across a journal restart.
"""

import asyncio

from repro.api import NodeConfig, create_node
from repro.obs import read_snapshots


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class FakeClock:
    """Deterministic monotonic clock injected via ``node._now``."""

    def __init__(self, start=1000.0):
        self.time = start

    def advance(self, dt):
        self.time += dt

    def __call__(self):
        return self.time


async def make_pair(config_a, config_b=None, clock=None):
    alice = await create_node("alice", config_a)
    bob = await create_node("bob", config_b or config_a)
    if clock is not None:
        alice._now = clock
        bob._now = clock
    alice.add_peer(bob.local_address)
    bob.add_peer(alice.local_address)
    return alice, bob


class TestRefinedDetectorEviction:
    def test_recent_window_evicts_under_live_clock(self):
        """The regression test: event-loop time must reach the detector,
        so entries older than the window leave the recent list."""

        async def scenario():
            config = NodeConfig(
                r=16, k=2, detector="refined", detector_window=5.0,
                keys=(0, 1), ack_timeout=0.02,
            )
            clock = FakeClock()
            alice, bob = await make_pair(
                config, config.replace(keys=(2, 3)), clock=clock
            )
            try:
                for i in range(4):
                    await alice.broadcast(("alice", i))
                    assert await wait_for(
                        lambda i=i: ("alice", i) in bob.delivered_payloads()
                    )
                    clock.advance(1.0)
                detector = bob.endpoint.detector
                assert detector.stats.checks >= 4, "detector never ran"
                assert detector.recent_size == 4, (
                    "recent list lost entries inside the window"
                )
                assert detector.evictions == 0

                # Jump far past the window: the next delivery must age
                # out everything the earlier broadcasts left behind.
                clock.advance(100.0)
                await alice.broadcast(("alice", "late"))
                assert await wait_for(
                    lambda: ("alice", "late") in bob.delivered_payloads()
                )
                assert detector.evictions >= 4, (
                    "window eviction never happened: the endpoint is "
                    "still being fed now=0.0"
                )
                assert detector.recent_size == 1
            finally:
                await alice.close()
                await bob.close()

        asyncio.run(scenario())

    def test_alert_counters_advance_and_surface_everywhere(self):
        """Concurrent broadcasts on a shared key set force a covered
        delivery; the alert must show in DetectorStats, NodeStats, the
        registry snapshot, and the trace ring."""

        async def scenario():
            # Both nodes own the full key space, so each concurrent
            # broadcast covers the other's sender entries exactly.
            config = NodeConfig(r=2, k=2, keys=(0, 1), detector="basic",
                                ack_timeout=0.02)
            alice, bob = await make_pair(config)
            try:
                # Broadcast on both sides before either datagram lands:
                # each side then delivers a message whose entries its own
                # send already covered — a guaranteed Algorithm 4 alert.
                await asyncio.gather(
                    alice.broadcast("from-alice"), bob.broadcast("from-bob")
                )
                assert await wait_for(
                    lambda: "from-alice" in bob.delivered_payloads()
                    and "from-bob" in alice.delivered_payloads()
                )
                alerted = [
                    node for node in (alice, bob)
                    if node.endpoint.detector.stats.alerts > 0
                ]
                assert alerted, "no alert fired on either node"
                node = alerted[0]
                stats = node.stats()
                assert stats.detector.alerts >= 1
                assert stats.detector.checks >= 1
                assert stats.detector.alert_rate > 0.0
                counters = stats.snapshot["counters"]
                assert counters["repro_detector_alerts_total"] == (
                    node.endpoint.detector.stats.alerts
                )
                assert counters["repro_endpoint_alerts_total"] >= 1
                alerts = node.trace.events(kind="alert")
                assert alerts, "alert never reached the trace ring"
                assert alerts[0]["sender"] in ("alice", "bob")
            finally:
                await alice.close()
                await bob.close()

        asyncio.run(scenario())


class TestNodeStatsSurface:
    def test_snapshot_covers_every_subsystem(self, tmp_path):
        async def scenario():
            config = NodeConfig(
                r=16, k=2, keys=(0, 1), ack_timeout=0.02,
                data_dir=str(tmp_path / "alice"),
            )
            alice, bob = await make_pair(config, config.replace(
                keys=(2, 3), data_dir=str(tmp_path / "bob")))
            try:
                for i in range(3):
                    await alice.broadcast(i)
                assert await wait_for(
                    lambda: len(bob.delivered_payloads()) == 3
                )
                stats = bob.stats()
                assert stats.node_id == "bob"
                assert stats.endpoint.delivered == 3
                assert stats.wire.data_received >= 3
                assert stats.pending == 0
                counters = stats.snapshot["counters"]
                assert counters["repro_endpoint_delivered_total"] == 3
                assert counters["repro_wire_datagrams_received_total"] > 0
                assert counters["repro_journal_appends_total"] > 0
                assert "repro_pending_depth" in stats.snapshot["gauges"]
                hist = stats.snapshot["histograms"]["repro_delivery_wait_seconds"]
                assert hist["count"] == 3
                rtt = stats.snapshot["histograms"]["repro_wire_rtt_seconds"]
                assert rtt["count"] == stats.wire.rtt_samples
            finally:
                await alice.close()
                await bob.close()

        asyncio.run(scenario())

    def test_jsonl_exporter_lifecycle(self, tmp_path):
        async def scenario():
            path = tmp_path / "metrics.jsonl"
            config = NodeConfig(r=16, k=2, keys=(0, 1), ack_timeout=0.02,
                                metrics_path=str(path), metrics_interval=0.05)
            alice, bob = await make_pair(
                config, config.replace(keys=(2, 3), metrics_path=None))
            try:
                await alice.broadcast("x")
                assert await wait_for(lambda: "x" in bob.delivered_payloads())
                await asyncio.sleep(0.15)
            finally:
                await alice.close()
                await bob.close()
            snapshots = read_snapshots(path)
            # Periodic lines plus the final on-close flush.
            assert len(snapshots) >= 2
            final = snapshots[-1]
            assert final["labels"] == {"node": "alice"}
            assert final["counters"]["repro_endpoint_sent_total"] == 1
            assert final["ts"] >= snapshots[0]["ts"]

        asyncio.run(scenario())

    def test_prometheus_endpoint_serves_live_counters(self):
        async def scenario():
            config = NodeConfig(r=16, k=2, keys=(0, 1), ack_timeout=0.02,
                                metrics_port=0)
            alice, bob = await make_pair(
                config, config.replace(keys=(2, 3), metrics_port=None))
            try:
                assert alice.metrics_server is not None
                assert alice.metrics_server.port != 0
                await alice.broadcast("x")
                assert await wait_for(lambda: "x" in bob.delivered_payloads())
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", alice.metrics_server.port
                )
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                await writer.drain()
                body = (await reader.read()).decode()
                writer.close()
                assert 'repro_endpoint_sent_total{node="alice"} 1' in body
                assert "repro_wire_datagrams_sent_total" in body
            finally:
                await alice.close()
                await bob.close()
            assert alice.metrics_server is None or True

        asyncio.run(scenario())


class TestDetectorPersistence:
    def test_checks_and_alerts_survive_restart(self, tmp_path):
        """Satellite bug: detector counts must be journal-visible so
        restart accounting does not silently zero the alert history."""

        async def scenario():
            data = tmp_path / "bob"
            config = NodeConfig(r=16, k=2, keys=(0, 1), ack_timeout=0.02)
            bob_config = config.replace(keys=(2, 3), data_dir=str(data))
            alice, bob = await make_pair(config, bob_config)
            await alice.broadcast("one")
            await alice.broadcast("two")
            assert await wait_for(lambda: len(bob.delivered_payloads()) == 2)
            checks_before = bob.endpoint.detector.stats.checks
            assert checks_before >= 2
            await bob.close()
            await alice.close()

            reborn = await create_node("bob", bob_config)
            try:
                assert reborn.recovered is not None
                assert reborn.recovered.detector_checks == checks_before
                assert reborn.endpoint.detector.stats.checks == checks_before
                counters = reborn.stats().snapshot["counters"]
                assert counters["repro_detector_checks_total"] == checks_before
            finally:
                await reborn.close()

        asyncio.run(scenario())
