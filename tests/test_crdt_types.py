"""Unit and property tests for the CRDT substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.crdt import LWWRegister, ORSet, PNCounter, RGA, ROOT
from repro.util.rng import RandomSource


class TestPNCounter:
    def test_local_increment_decrement(self):
        counter = PNCounter("a")
        counter.increment(5)
        counter.decrement(2)
        assert counter.value() == 3

    def test_remote_merge(self):
        a, b = PNCounter("a"), PNCounter("b")
        op = a.increment(4)
        b.apply_remote(op)
        assert b.value() == 4
        decrement_op = b.decrement(1)
        a.apply_remote(decrement_op)
        assert a.value() == b.value() == 3

    def test_convergence_any_order(self):
        a, b = PNCounter("a"), PNCounter("b")
        ops = [a.increment(1), a.decrement(2), a.increment(7)]
        for op in reversed(ops):
            b.apply_remote(op)
        assert b.value() == a.value() == 6
        assert b.state_signature() == a.state_signature()

    def test_validation(self):
        counter = PNCounter("a")
        with pytest.raises(ConfigurationError):
            counter.increment(0)
        with pytest.raises(ConfigurationError):
            counter.decrement(-3)
        with pytest.raises(ConfigurationError):
            counter.apply_remote(("reset", "a", 1))

    def test_no_anomalies_ever(self):
        a, b = PNCounter("a"), PNCounter("b")
        for op in [a.increment(1), a.decrement(1), a.increment(2)]:
            b.apply_remote(op)
        assert b.anomalies == 0


class TestORSet:
    def test_add_then_remove(self):
        s = ORSet("a")
        s.add("x")
        assert "x" in s
        s.remove("x")
        assert s.value() == set()

    def test_add_wins_over_concurrent_remove(self):
        a, b = ORSet("a"), ORSet("b")
        add_1 = a.add("x")
        b.apply_remote(add_1)
        # Concurrently: a removes (observing add_1), b re-adds.
        remove_op = a.remove("x")
        add_2 = b.add("x")
        a.apply_remote(add_2)
        b.apply_remote(remove_op)
        # Both converge on {x}: the unobserved add survives.
        assert a.value() == b.value() == {"x"}
        assert a.state_signature() == b.state_signature()

    def test_remove_of_absent_element_is_noop(self):
        s = ORSet("a")
        op = s.remove("ghost")
        other = ORSet("b")
        other.apply_remote(op)
        assert other.value() == set()
        assert other.anomalies == 0

    def test_causal_violation_detected_and_repaired(self):
        a = ORSet("a")
        add_op = a.add("x")
        remove_op = a.remove("x")
        late = ORSet("b")
        late.apply_remote(remove_op)  # remove before its observed add
        assert late.anomalies == 1
        assert late.value() == set()
        late.apply_remote(add_op)  # the late add must NOT resurrect x
        assert late.value() == set()
        # Converged with a replica that saw the causal order.
        good = ORSet("c")
        good.apply_remote(add_op)
        good.apply_remote(remove_op)
        assert late.state_signature() == good.state_signature()

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            ORSet("a").apply_remote(("clear",))

    def test_multiple_adds_same_element(self):
        a = ORSet("a")
        a.add("x")
        a.add("x")
        a.remove("x")  # removes both observed tags
        assert a.value() == set()


class TestRGA:
    def test_sequential_editing(self):
        doc = RGA("a")
        op_h = doc.insert_after(ROOT, "H")
        doc.insert_after(op_h[2], "i")
        assert doc.as_text() == "Hi"

    def test_front_insertion_order(self):
        doc = RGA("a")
        doc.insert_after(ROOT, "b")
        doc.insert_after(ROOT, "a")
        # Later insert at the same position comes first (RGA tie-break).
        assert doc.as_text() == "ab"

    def test_delete(self):
        doc = RGA("a")
        op = doc.insert_after(ROOT, "x")
        doc.insert_after(op[2], "y")
        doc.delete(op[2])
        assert doc.as_text() == "y"

    def test_delete_invisible_rejected_locally(self):
        doc = RGA("a")
        op = doc.insert_after(ROOT, "x")
        doc.delete(op[2])
        with pytest.raises(ConfigurationError):
            doc.delete(op[2])
        with pytest.raises(ConfigurationError):
            doc.insert_after((99, "ghost"), "y")

    def test_remote_convergence_in_causal_order(self):
        a, b = RGA("a"), RGA("b")
        ops = []
        op = a.insert_after(ROOT, "H")
        ops.append(op)
        op2 = a.insert_after(op[2], "e")
        ops.append(op2)
        ops.append(a.insert_after(op2[2], "y"))
        for op in ops:
            b.apply_remote(op)
        assert b.as_text() == a.as_text() == "Hey"

    def test_orphan_buffering_on_violation(self):
        a = RGA("a")
        op1 = a.insert_after(ROOT, "x")
        op2 = a.insert_after(op1[2], "y")
        late = RGA("b")
        late.apply_remote(op2)  # parent missing
        assert late.anomalies == 1
        assert late.orphan_count == 1
        assert late.as_text() == ""
        late.apply_remote(op1)  # parent arrives, orphan integrates
        assert late.orphan_count == 0
        assert late.as_text() == "xy"

    def test_chained_orphans(self):
        a = RGA("a")
        op1 = a.insert_after(ROOT, "1")
        op2 = a.insert_after(op1[2], "2")
        op3 = a.insert_after(op2[2], "3")
        late = RGA("b")
        late.apply_remote(op3)
        late.apply_remote(op2)
        assert late.orphan_count == 2
        late.apply_remote(op1)
        assert late.as_text() == "123"
        assert late.orphan_count == 0

    def test_early_delete_pre_tombstone(self):
        a = RGA("a")
        op = a.insert_after(ROOT, "x")
        delete_op = a.delete(op[2])
        late = RGA("b")
        late.apply_remote(delete_op)
        assert late.anomalies == 1
        late.apply_remote(op)
        assert late.as_text() == ""  # never becomes visible

    def test_concurrent_inserts_converge(self):
        a, b = RGA("a"), RGA("b")
        op_a = a.insert_after(ROOT, "A")
        op_b = b.insert_after(ROOT, "B")
        a.apply_remote(op_b)
        b.apply_remote(op_a)
        assert a.as_text() == b.as_text()
        assert a.state_signature() == b.state_signature()

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            RGA("a").apply_remote(("swap", None, None, None))


class TestLWWRegister:
    def test_last_write_wins(self):
        a, b = LWWRegister("a"), LWWRegister("b")
        op1 = a.write("first")
        b.apply_remote(op1)
        op2 = b.write("second")
        a.apply_remote(op2)
        assert a.value() == b.value() == "second"

    def test_stale_write_counted(self):
        a, b = LWWRegister("a"), LWWRegister("b")
        op1 = a.write("old")
        b.apply_remote(op1)
        op2 = b.write("new")
        late = LWWRegister("c")
        late.apply_remote(op2)
        late.apply_remote(op1)  # arrives after its overwriter
        assert late.value() == "new"
        assert late.stale_applications == 1

    def test_concurrent_ties_break_by_replica(self):
        a, b = LWWRegister("a"), LWWRegister("b")
        op_a = a.write("A")
        op_b = b.write("B")
        a.apply_remote(op_b)
        b.apply_remote(op_a)
        assert a.value() == b.value()
        assert a.state_signature() == b.state_signature()

    def test_initial_value(self):
        register = LWWRegister("a", initial="empty")
        assert register.value() == "empty"
        assert register.stamp is None


# ---------------------------------------------------------------------------
# property tests: convergence under arbitrary permutations
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_ops=st.integers(1, 20))
def test_pncounter_converges_under_any_permutation(seed, n_ops):
    rng = RandomSource(seed=seed)
    source = PNCounter("src")
    ops = []
    for _ in range(n_ops):
        if rng.random() < 0.5:
            ops.append(source.increment(rng.integer(1, 10)))
        else:
            ops.append(source.decrement(rng.integer(1, 10)))
    replica = PNCounter("dst")
    shuffled = list(ops)
    rng.shuffle(shuffled)
    for op in shuffled:
        replica.apply_remote(op)
    assert replica.value() == source.value()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_ops=st.integers(1, 15))
def test_orset_converges_under_any_permutation(seed, n_ops):
    """Adds/removes applied in any order converge to the same signature
    (the pre-removed tombstones absorb causal inversions)."""
    rng = RandomSource(seed=seed)
    source = ORSet("src")
    elements = ["x", "y", "z"]
    ops = []
    for _ in range(n_ops):
        element = rng.choice(elements)
        if rng.random() < 0.6 or element not in source:
            ops.append(source.add(element))
        else:
            ops.append(source.remove(element))
    in_order = ORSet("ordered")
    for op in ops:
        in_order.apply_remote(op)
    scrambled = ORSet("scrambled")
    shuffled = list(ops)
    rng.shuffle(shuffled)
    for op in shuffled:
        scrambled.apply_remote(op)
    assert scrambled.state_signature() == in_order.state_signature()
    assert scrambled.value() == source.value()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_ops=st.integers(1, 15))
def test_rga_converges_under_any_permutation(seed, n_ops):
    rng = RandomSource(seed=seed)
    source = RGA("src")
    ops = []
    for i in range(n_ops):
        visible = source.visible_ids()
        if visible and rng.random() < 0.25:
            ops.append(source.delete(rng.choice(visible)))
        else:
            parent = ROOT if not visible or rng.random() < 0.3 else rng.choice(visible)
            ops.append(source.insert_after(parent, f"c{i}"))
    scrambled = RGA("scrambled")
    shuffled = list(ops)
    rng.shuffle(shuffled)
    for op in shuffled:
        scrambled.apply_remote(op)
    assert scrambled.orphan_count == 0
    assert scrambled.value() == source.value()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_writers=st.integers(1, 4), n_ops=st.integers(1, 12))
def test_lww_converges_under_any_permutation(seed, n_writers, n_ops):
    rng = RandomSource(seed=seed)
    writers = [LWWRegister(f"w{i}") for i in range(n_writers)]
    ops = []
    for step in range(n_ops):
        writer = rng.choice(writers)
        op = writer.write(f"v{step}")
        ops.append(op)
        for other in writers:
            if other is not writer:
                other.apply_remote(op)
    replica_a, replica_b = LWWRegister("ra"), LWWRegister("rb")
    order_a, order_b = list(ops), list(ops)
    rng.shuffle(order_a)
    rng.shuffle(order_b)
    for op in order_a:
        replica_a.apply_remote(op)
    for op in order_b:
        replica_b.apply_remote(op)
    assert replica_a.state_signature() == replica_b.state_signature()


class TestORSetConcurrentRemoves:
    def test_concurrent_removes_of_same_tag_are_not_anomalies(self):
        """Two replicas concurrently remove the same observed add: the
        second remove finds the tag gone, which is legitimate (not a
        causal violation)."""
        a, b, c = ORSet("a"), ORSet("b"), ORSet("c")
        add_op = a.add("x")
        b.apply_remote(add_op)
        c.apply_remote(add_op)
        remove_b = b.remove("x")
        remove_c = c.remove("x")
        a.apply_remote(remove_b)
        a.apply_remote(remove_c)
        assert a.anomalies == 0
        assert a.value() == set()

    def test_remove_after_cancelled_add_is_not_an_anomaly(self):
        """A pre-removed (cancelled) add still counts as 'seen': a second
        remove observing it is fine."""
        a = ORSet("a")
        add_op = a.add("x")
        remove_1 = a.remove("x")
        late = ORSet("late")
        late.apply_remote(remove_1)  # anomaly: remove before add
        assert late.anomalies == 1
        late.apply_remote(add_op)  # cancelled by pre-tombstone
        late.apply_remote(("remove", "x", remove_1[2]))  # replayed tags
        assert late.anomalies == 1  # no new anomaly


class TestMVRegister:
    def test_single_writer_single_value(self):
        from repro.crdt import MVRegister

        register = MVRegister("a")
        register.write("v1")
        register.write("v2")
        assert register.values() == ["v2"]
        assert register.sibling_count == 1

    def test_concurrent_writes_both_visible(self):
        from repro.crdt import MVRegister

        a, b = MVRegister("a"), MVRegister("b")
        op_a = a.write("from-a")
        op_b = b.write("from-b")
        a.apply_remote(op_b)
        b.apply_remote(op_a)
        assert sorted(a.values()) == sorted(b.values()) == ["from-a", "from-b"]
        assert a.state_signature() == b.state_signature()

    def test_causal_overwrite_prunes(self):
        from repro.crdt import MVRegister

        a, b = MVRegister("a"), MVRegister("b")
        op_1 = a.write("old")
        b.apply_remote(op_1)
        op_2 = b.write("new")  # causally after op_1
        a.apply_remote(op_2)
        assert a.values() == ["new"]
        assert b.values() == ["new"]

    def test_out_of_order_arrival_converges(self):
        from repro.crdt import MVRegister

        a, b = MVRegister("a"), MVRegister("b")
        op_1 = a.write("old")
        b.apply_remote(op_1)
        op_2 = b.write("new")
        late = MVRegister("c")
        late.apply_remote(op_2)  # dominating write first
        assert late.values() == ["new"]
        late.apply_remote(op_1)  # dominated write arrives late
        assert late.values() == ["new"]  # correctly pruned on arrival

    def test_merge_after_observation_collapses_siblings(self):
        from repro.crdt import MVRegister

        a, b = MVRegister("a"), MVRegister("b")
        op_a = a.write("A")
        op_b = b.write("B")
        a.apply_remote(op_b)
        assert a.sibling_count == 2
        resolve = a.write("merged")  # observes both -> dominates both
        assert a.values() == ["merged"]
        b.apply_remote(op_a)
        b.apply_remote(resolve)
        assert b.values() == ["merged"]

    def test_unknown_operation_rejected(self):
        from repro.crdt import MVRegister
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MVRegister("a").apply_remote(("reset", 1, (), "a"))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n_ops=st.integers(1, 12))
def test_mvregister_converges_under_any_permutation(seed, n_ops):
    from repro.crdt import MVRegister

    rng = RandomSource(seed=seed)
    writers = [MVRegister(f"w{i}") for i in range(3)]
    ops = []
    for step in range(n_ops):
        writer = rng.choice(writers)
        op = writer.write(f"v{step}")
        ops.append(op)
        # Sometimes propagate immediately (causal chains), sometimes not
        # (concurrency).
        for other in writers:
            if other is not writer and rng.random() < 0.5:
                other.apply_remote(op)
    replica_a, replica_b = MVRegister("ra"), MVRegister("rb")
    order_a, order_b = list(ops), list(ops)
    rng.shuffle(order_a)
    rng.shuffle(order_b)
    for op in order_a:
        replica_a.apply_remote(op)
    for op in order_b:
        replica_b.apply_remote(op)
    assert replica_a.state_signature() == replica_b.state_signature()
