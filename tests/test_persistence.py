"""Tests for result serialisation, storage, and comparison."""

import json

import pytest

from repro.analysis.persistence import (
    SCHEMA_VERSION,
    ResultStore,
    compare_results,
    result_to_dict,
)
from repro.core.errors import ConfigurationError
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation


def small_result(seed=3, **overrides):
    base = dict(
        n_nodes=10,
        r=20,
        k=2,
        duration_ms=6_000.0,
        seed=seed,
        workload=PoissonWorkload(700.0),
    )
    base.update(overrides)
    return run_simulation(SimulationConfig(**base))


class TestResultToDict:
    def test_roundtrips_through_json(self):
        result = small_result()
        record = result_to_dict(result, label="run-1")
        text = json.dumps(record)
        loaded = json.loads(text)
        assert loaded["schema"] == SCHEMA_VERSION
        assert loaded["label"] == "run-1"
        assert loaded["config"]["n_nodes"] == 10
        assert loaded["counters"]["deliveries"] == result.counters.deliveries
        assert loaded["traffic"]["sent"] == result.sent
        assert loaded["latency"]["mean"] == result.latency["mean"]

    def test_records_component_class_names(self):
        record = result_to_dict(small_result())
        assert record["config"]["workload"] == "PoissonWorkload"
        assert record["config"]["delay_model"] is None  # default built inside runner
        assert record["config"]["dissemination"] is None


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        result = small_result()
        store.append(result, label="a")
        store.append(result, label="b")
        assert len(store) == 2
        assert len(store.load(label="a")) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert ResultStore(str(tmp_path / "none.jsonl")).load() == []

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ConfigurationError):
            ResultStore(str(path)).load()

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(json.dumps({"schema": 999}) + "\n")
        with pytest.raises(ConfigurationError):
            ResultStore(str(path)).load()


class TestCompareResults:
    def test_identical_runs_match(self):
        result = small_result()
        record = result_to_dict(result)
        assert compare_results(record, result_to_dict(result)) == []

    def test_config_mismatch_reported_first(self):
        base = result_to_dict(small_result())
        other = result_to_dict(small_result(k=3))
        issues = compare_results(base, other)
        assert any("config.k" in issue for issue in issues)

    def test_small_samples_not_flagged_for_drift(self):
        # Deliveries below the floor: rate drift is not meaningful.
        base = result_to_dict(small_result(seed=3))
        other = result_to_dict(small_result(seed=4))
        issues = [i for i in compare_results(base, other) if "eps" in i]
        if base["counters"]["deliveries"] < 1000:
            assert issues == []

    def test_stuck_pending_flagged(self):
        base = result_to_dict(small_result())
        other = result_to_dict(small_result())
        other["traffic"]["stuck_pending"] = 7
        issues = compare_results(base, other)
        assert any("stuck_pending" in issue for issue in issues)
