"""Tests for the asyncio deployment layer (bus + UDP + peer)."""

import asyncio

import pytest

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.detector import BasicAlertDetector
from repro.core.errors import ConfigurationError
from repro.core.keyspace import RandomKeyAssigner
from repro.net import AsyncCausalPeer, LocalAsyncBus, UdpTransport
from repro.sim.network import ConstantDelayModel, GaussianDelayModel
from repro.util.rng import RandomSource

R, K = 32, 3


def make_bus_cluster(bus, names, seed=9):
    assigner = RandomKeyAssigner(R, K, rng=RandomSource(seed=seed))
    peers = {}
    for name in names:
        transport = bus.attach(name)
        peers[name] = AsyncCausalPeer(
            peer_id=name,
            clock=ProbabilisticCausalClock(R, assigner.assign(name).keys),
            transport=transport,
            detector=BasicAlertDetector(),
        )
    for name, peer in peers.items():
        for other in names:
            if other != name:
                peer.add_peer(other)
    return peers


class TestLocalBus:
    def test_broadcast_reaches_all_peers(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(10.0))
            peers = make_bus_cluster(bus, ["a", "b", "c"])
            await peers["a"].broadcast("hello")
            await bus.drain()
            for name in ("b", "c"):
                assert peers[name].delivered_payloads() == ["hello"]
            # The sender self-delivered.
            assert peers["a"].delivered_payloads() == ["hello"]

        asyncio.run(scenario())

    def test_causal_order_preserved_under_jittery_delays(self):
        async def scenario():
            bus = LocalAsyncBus(
                delay_model=GaussianDelayModel(mean=20, std=8, skew_std=8),
                rng=RandomSource(seed=3).spawn("net"),
            )
            peers = make_bus_cluster(bus, ["a", "b", "c"])
            # A chain: a sends, b replies after seeing it, several times.
            for round_number in range(5):
                await peers["a"].broadcast(("a", round_number))
                await bus.drain()
                await peers["b"].broadcast(("b", round_number))
                await bus.drain()
            order = peers["c"].delivered_payloads()
            assert len(order) == 10
            # Within the chain, every (a, i) precedes (b, i).
            for i in range(5):
                assert order.index(("a", i)) < order.index(("b", i))

        asyncio.run(scenario())

    def test_concurrent_broadcasts_all_delivered_exactly_once(self):
        async def scenario():
            bus = LocalAsyncBus(
                delay_model=GaussianDelayModel(mean=15, std=5, skew_std=5),
                rng=RandomSource(seed=5).spawn("net"),
                duplicate_rate=0.3,
            )
            names = [f"p{i}" for i in range(5)]
            peers = make_bus_cluster(bus, names)
            await asyncio.gather(
                *(peers[name].broadcast(f"from-{name}") for name in names)
            )
            await bus.drain()
            for name in names:
                payloads = peers[name].delivered_payloads()
                assert sorted(payloads) == sorted(f"from-{n}" for n in names)
                assert peers[name].endpoint.stats.duplicates >= 0

        asyncio.run(scenario())

    def test_loss_injection_counts_drops(self):
        async def scenario():
            bus = LocalAsyncBus(
                delay_model=ConstantDelayModel(5.0),
                rng=RandomSource(seed=6).spawn("net"),
                loss_rate=0.5,
            )
            peers = make_bus_cluster(bus, ["a", "b"])
            for i in range(40):
                await peers["a"].broadcast(i)
            await bus.drain()
            assert bus.dropped > 0
            assert len(peers["b"].delivered_payloads()) < 40

        asyncio.run(scenario())

    def test_double_attach_rejected(self):
        async def scenario():
            bus = LocalAsyncBus()
            bus.attach("a")
            with pytest.raises(ConfigurationError):
                bus.attach("a")

        asyncio.run(scenario())

    def test_malformed_datagram_does_not_kill_peer(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            peers = make_bus_cluster(bus, ["a", "b"])
            transport = bus.attach("evil")
            await transport.send("b", b"not a message")
            await bus.drain()
            assert peers["b"].decode_errors == 1
            await peers["a"].broadcast("still alive")
            await bus.drain()
            assert peers["b"].delivered_payloads() == ["still alive"]

        asyncio.run(scenario())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalAsyncBus(time_scale=0)
        with pytest.raises(ConfigurationError):
            LocalAsyncBus(loss_rate=1.0)


class TestUdpTransport:
    def test_roundtrip_over_loopback(self):
        async def scenario():
            assigner = RandomKeyAssigner(R, K, rng=RandomSource(seed=11))
            transports = [await UdpTransport.create() for _ in range(3)]
            peers = []
            for index, transport in enumerate(transports):
                peers.append(
                    AsyncCausalPeer(
                        peer_id=f"udp-{index}",
                        clock=ProbabilisticCausalClock(
                            R, assigner.assign(index).keys
                        ),
                        transport=transport,
                    )
                )
            for index, peer in enumerate(peers):
                for jndex, transport in enumerate(transports):
                    if jndex != index:
                        peer.add_peer(transport.local_address)

            await peers[0].broadcast({"op": "add", "item": "milk"})
            # Loopback UDP is fast; poll briefly for arrival.
            for _ in range(100):
                if all(len(p.delivered_payloads()) == 1 for p in peers):
                    break
                await asyncio.sleep(0.01)
            for peer in peers:
                assert peer.delivered_payloads() == [{"op": "add", "item": "milk"}]
            for transport in transports:
                await transport.close()

        asyncio.run(scenario())

    def test_oversized_datagram_rejected(self):
        async def scenario():
            transport = await UdpTransport.create()
            with pytest.raises(ConfigurationError):
                await transport.send(("127.0.0.1", 9), b"x" * 70_000)
            await transport.close()

        asyncio.run(scenario())

    def test_datagram_bound_is_exact(self):
        """Exactly _MAX_DATAGRAM bytes passes; one more raises clearly."""

        async def scenario():
            from repro.net.udp import _MAX_DATAGRAM

            sender = await UdpTransport.create()
            receiver = await UdpTransport.create()
            received = []
            receiver.set_receiver(lambda data, addr: received.append(len(data)))
            await sender.send(receiver.local_address, b"x" * _MAX_DATAGRAM)
            with pytest.raises(ConfigurationError, match="exceeds"):
                await sender.send(receiver.local_address, b"x" * (_MAX_DATAGRAM + 1))
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            assert received == [_MAX_DATAGRAM]
            await sender.close()
            await receiver.close()

        asyncio.run(scenario())

    def test_receiver_gets_sender_address(self):
        """The satellite fix: datagrams arrive attributed to their source."""

        async def scenario():
            sender = await UdpTransport.create()
            receiver = await UdpTransport.create()
            arrivals = []
            receiver.set_receiver(lambda data, addr: arrivals.append((data, addr)))
            await sender.send(receiver.local_address, b"who sent this?")
            for _ in range(100):
                if arrivals:
                    break
                await asyncio.sleep(0.01)
            assert arrivals == [(b"who sent this?", sender.local_address)]
            await sender.close()
            await receiver.close()

        asyncio.run(scenario())


class TestBusAddressing:
    def test_bus_receiver_gets_sender_address(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            alpha = bus.attach("alpha")
            beta = bus.attach("beta")
            arrivals = []
            beta.set_receiver(lambda data, addr: arrivals.append((data, addr)))
            alpha.set_receiver(lambda data, addr: None)
            await alpha.send("beta", b"hi")
            await bus.drain()
            assert arrivals == [(b"hi", "alpha")]

        asyncio.run(scenario())

    def test_causal_chain_over_udp(self):
        async def scenario():
            assigner = RandomKeyAssigner(R, K, rng=RandomSource(seed=12))
            t_a = await UdpTransport.create()
            t_b = await UdpTransport.create()
            t_c = await UdpTransport.create()
            a = AsyncCausalPeer("a", ProbabilisticCausalClock(R, assigner.assign("a").keys), t_a)
            b = AsyncCausalPeer("b", ProbabilisticCausalClock(R, assigner.assign("b").keys), t_b)
            c = AsyncCausalPeer("c", ProbabilisticCausalClock(R, assigner.assign("c").keys), t_c)
            # a -> {b, c};  b -> {c} only: c must still order b's reply
            # after a's original despite receiving both over UDP.
            a.add_peer(t_b.local_address)
            a.add_peer(t_c.local_address)
            b.add_peer(t_c.local_address)

            await a.broadcast("question")
            for _ in range(100):
                if b.delivered_payloads(include_local=False):
                    break
                await asyncio.sleep(0.01)
            await b.broadcast("answer")
            for _ in range(100):
                if len(c.delivered_payloads()) == 2:
                    break
                await asyncio.sleep(0.01)
            assert c.delivered_payloads() == ["question", "answer"]
            for transport in (t_a, t_b, t_c):
                await transport.close()

        asyncio.run(scenario())
