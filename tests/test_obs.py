"""Unit tests for the observability layer (``repro.obs``).

Covers the registry primitives (counter / gauge / histogram semantics,
series identity, collector sync), snapshot merging, the Prometheus text
rendering, the JSONL exporter round-trip (including torn trailing
lines), the trace ring, and the HTTP scrape endpoint.
"""

import asyncio
import json

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlExporter,
    MetricsHttpServer,
    MetricsRegistry,
    TraceRing,
    last_snapshot,
    merge_snapshots,
    read_snapshots,
    render_prometheus,
)


class TestCounterAndGauge:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_bucketing_is_value_le_bound(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        # <=1.0 gets 0.5 and 1.0; <=10.0 gets 5.0 and 10.0; +Inf gets 11.0.
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(27.5)
        assert histogram.mean == pytest.approx(5.5)

    def test_bounds_must_be_strictly_increasing_and_finite(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(float("inf"),))
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())

    def test_quantiles_interpolate_within_bucket(self):
        histogram = Histogram(bounds=(10.0, 20.0))
        for _ in range(100):
            histogram.observe(5.0)
        assert 0.0 < histogram.quantile(0.5) <= 10.0
        assert histogram.quantile(0.0) == pytest.approx(0.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.5)

    def test_overflow_quantile_reports_top_finite_bound(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 1.0

    def test_merge_requires_identical_bounds(self):
        left = Histogram(bounds=(1.0, 2.0))
        right = Histogram(bounds=(1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.counts == [1, 1, 1]
        assert left.count == 3
        with pytest.raises(ConfigurationError):
            left.merge(Histogram(bounds=(1.0, 3.0)))

    def test_dict_round_trip(self):
        histogram = Histogram(bounds=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        clone = Histogram.from_dict(
            json.loads(json.dumps(histogram.as_dict()))
        )
        assert clone.bounds == histogram.bounds
        assert clone.counts == histogram.counts
        assert clone.count == histogram.count
        assert clone.sum == pytest.approx(histogram.sum)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") is registry.counter("repro_x_total")
        assert registry.gauge("repro_depth") is registry.gauge("repro_depth")
        assert registry.histogram("repro_t_seconds") is registry.histogram(
            "repro_t_seconds"
        )

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", peer="a")
        b = registry.counter("repro_x_total", peer="b")
        assert a is not b
        a.inc(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['repro_x_total{peer="a"}'] == 3
        assert snapshot["counters"]['repro_x_total{peer="b"}'] == 0

    def test_cross_kind_name_reuse_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_thing")
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_thing")

    def test_histogram_bounds_are_series_identity(self):
        registry = MetricsRegistry()
        registry.histogram("repro_t_seconds", bounds=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_t_seconds", bounds=(1.0, 3.0))

    def test_collectors_sync_external_tallies_at_snapshot(self):
        registry = MetricsRegistry(labels={"node": "a"})
        external = {"sent": 0}
        mirror = registry.counter("repro_sent_total")
        registry.register_collector(lambda: mirror.set(external["sent"]))
        external["sent"] = 7
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro_sent_total"] == 7
        assert snapshot["labels"] == {"node": "a"}


class TestMergeSnapshots:
    def _snapshot(self, node, sent, depth, hist_value):
        registry = MetricsRegistry(labels={"node": node, "cluster": "test"})
        registry.counter("repro_sent_total").inc(sent)
        registry.gauge("repro_depth").set(depth)
        registry.histogram("repro_t_seconds", bounds=(1.0, 2.0)).observe(hist_value)
        return registry.snapshot()

    def test_counters_sum_histograms_fold_labels_intersect(self):
        merged = merge_snapshots(
            [self._snapshot("a", 3, 2.0, 0.5), self._snapshot("b", 4, 1.0, 1.5)]
        )
        assert merged["counters"]["repro_sent_total"] == 7
        assert merged["gauges"]["repro_depth"] == pytest.approx(3.0)
        histogram = Histogram.from_dict(merged["histograms"]["repro_t_seconds"])
        assert histogram.count == 2
        assert histogram.counts == [1, 1, 0]
        # Disagreeing labels (node identity) are erased; agreeing survive.
        assert merged["labels"] == {"cluster": "test"}


class TestPrometheusRendering:
    def test_counters_gauges_and_histograms_render(self):
        registry = MetricsRegistry(labels={"node": "a"})
        registry.counter("repro_sent_total").inc(5)
        registry.gauge("repro_depth").set(2.0)
        histogram = registry.histogram("repro_t_seconds", bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(9.0)
        text = registry.render_prometheus()
        assert 'repro_sent_total{node="a"} 5' in text
        assert 'repro_depth{node="a"} 2.0' in text
        assert 'repro_t_seconds_bucket{node="a",le="1.0"} 1' in text
        assert 'repro_t_seconds_bucket{node="a",le="+Inf"} 2' in text
        assert 'repro_t_seconds_count{node="a"} 2' in text
        assert text.endswith("\n")

    def test_render_from_plain_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_x_total 1" in text


class TestJsonlExporter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry(labels={"node": "a"})
        registry.counter("repro_sent_total").inc(2)
        with JsonlExporter(path) as exporter:
            exporter.export(registry.snapshot(), ts=1.0)
            registry.counter("repro_sent_total").inc(3)
            exporter.export(registry.snapshot(), ts=2.0)
            assert exporter.lines_written == 2
        snapshots = read_snapshots(path)
        assert [s["ts"] for s in snapshots] == [1.0, 2.0]
        assert snapshots[-1]["counters"]["repro_sent_total"] == 5
        assert last_snapshot(path) == snapshots[-1]
        assert all("wall" in s for s in snapshots)

    def test_append_mode_survives_reopen(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        for ts in (1.0, 2.0):
            with JsonlExporter(path) as exporter:
                exporter.export({"counters": {}}, ts=ts)
        assert [s["ts"] for s in read_snapshots(path)] == [1.0, 2.0]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.export({"counters": {"repro_x_total": 1}}, ts=1.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 2.0, "counters": {"repro_x_')  # crash mid-write
        snapshots = read_snapshots(path)
        assert len(snapshots) == 1
        assert last_snapshot(path)["ts"] == 1.0

    def test_missing_file_returns_none(self, tmp_path):
        with pytest.raises(OSError):
            read_snapshots(tmp_path / "absent.jsonl")


class TestTraceRing:
    def test_ring_keeps_newest_and_counts_lifetime(self):
        ring = TraceRing(capacity=3)
        for i in range(5):
            ring.emit("alert", ts=float(i), seq=i)
        assert len(ring) == 3
        assert ring.emitted == 5
        assert [e["seq"] for e in ring.events()] == [2, 3, 4]

    def test_kind_filter(self):
        ring = TraceRing()
        ring.emit("alert", ts=1.0)
        ring.emit("quarantine", ts=2.0, peer="b")
        alerts = ring.events(kind="alert")
        assert len(alerts) == 1 and alerts[0]["kind"] == "alert"
        ring.clear()
        assert len(ring) == 0


class TestHttpEndpoint:
    def test_scrape_and_404(self):
        async def scenario():
            registry = MetricsRegistry(labels={"node": "a"})
            registry.counter("repro_sent_total").inc(9)
            server = MetricsHttpServer(registry, port=0)
            await server.start()
            assert server.port != 0

            async def fetch(path):
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return raw.decode()

            ok = await fetch("/metrics")
            assert ok.startswith("HTTP/1.1 200 OK")
            assert 'repro_sent_total{node="a"} 9' in ok
            missing = await fetch("/other")
            assert missing.startswith("HTTP/1.1 404")
            await server.close()

        asyncio.run(scenario())
