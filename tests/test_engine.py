"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.core.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30.0, order.append, "c")
        sim.schedule(10.0, order.append, "a")
        sim.schedule(20.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(5.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_handlers_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda _: None)
        sim.schedule(10.0, lambda _: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda _: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        hits = []
        sim.schedule(0.0, hits.append, 1)
        sim.run()
        assert hits == [1]


class TestRunControl:
    def test_until_stops_the_clock(self):
        sim = Simulator()
        hits = []
        sim.schedule(10.0, hits.append, "early")
        sim.schedule(50.0, hits.append, "late")
        executed = sim.run(until=20.0)
        assert executed == 1
        assert hits == ["early"]
        assert sim.now == 20.0
        assert sim.pending_events == 1
        sim.run()
        assert hits == ["early", "late"]

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        hits = []
        sim.schedule(20.0, hits.append, "边")
        sim.run(until=20.0)
        assert hits == ["边"]

    def test_until_beyond_agenda_advances_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda _: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(i), hits.append, i)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert hits == [0, 1, 2]
        sim.run()
        assert len(hits) == 10

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda _: None)
        sim.run()
        assert sim.processed_events == 4

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse(_):
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_clear_drops_agenda(self):
        sim = Simulator()
        sim.schedule(1.0, lambda _: None)
        sim.schedule(2.0, lambda _: None)
        sim.clear()
        assert sim.pending_events == 0
        assert sim.run() == 0
