"""Tests for the tracing module."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation
from repro.sim.trace import TraceKind, TraceRecorder, TracingApplication


class TestTraceRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(1.0, TraceKind.SEND, "a", ("a", 1))
        recorder.record(2.0, TraceKind.DELIVER, "b", ("a", 1))
        recorder.record(3.0, TraceKind.DELIVER, "c", ("a", 1))
        recorder.record(4.0, TraceKind.SEND, "b", ("b", 1))
        assert len(recorder) == 4
        assert len(recorder.select(kind=TraceKind.DELIVER)) == 2
        assert len(recorder.select(node="b")) == 2
        assert len(recorder.message_timeline(("a", 1))) == 3

    def test_none_is_a_legal_node_id(self):
        recorder = TraceRecorder()
        recorder.record(1.0, TraceKind.SEND, None)
        recorder.record(2.0, TraceKind.SEND, "x")
        assert len(recorder.select(node=None)) == 1
        assert len(recorder.select()) == 2

    def test_since_and_predicate_filters(self):
        recorder = TraceRecorder()
        for t in range(10):
            recorder.record(float(t), TraceKind.SEND, t % 2)
        assert len(recorder.select(since=5.0)) == 5
        assert len(recorder.select(predicate=lambda e: e.node == 0)) == 5

    def test_ring_buffer_drops_oldest(self):
        recorder = TraceRecorder(capacity=3)
        for t in range(5):
            recorder.record(float(t), TraceKind.SEND, "a")
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert recorder.events()[0].time == 2.0
        assert "earlier events dropped" in recorder.format()

    def test_counts_by_kind(self):
        recorder = TraceRecorder()
        recorder.record(1.0, TraceKind.SEND, "a")
        recorder.record(2.0, TraceKind.ALERT, "a")
        recorder.record(3.0, TraceKind.ALERT, "b")
        counts = recorder.counts_by_kind()
        assert counts[TraceKind.SEND] == 1
        assert counts[TraceKind.ALERT] == 2

    def test_format_limit(self):
        recorder = TraceRecorder()
        for t in range(10):
            recorder.record(float(t), TraceKind.SEND, "a")
        assert len(recorder.format(limit=3).splitlines()) == 3

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(capacity=0)

    def test_event_format_includes_detail(self):
        recorder = TraceRecorder()
        recorder.record(1.5, TraceKind.CUSTOM, "n", detail="hello")
        assert "hello" in recorder.format()


class TestTracingApplication:
    def test_traces_a_whole_run(self):
        recorder = TraceRecorder()
        result = run_simulation(
            SimulationConfig(
                n_nodes=10,
                r=20,
                k=2,
                duration_ms=8_000.0,
                seed=2,
                workload=PoissonWorkload(800.0),
                application_factory=TracingApplication(recorder),
            )
        )
        counts = recorder.counts_by_kind()
        assert counts[TraceKind.SEND] == result.sent
        assert counts[TraceKind.DELIVER] == result.delivered_remote
        assert counts.get(TraceKind.VIOLATION, 0) == result.counters.violations
        assert counts.get(TraceKind.AMBIGUOUS, 0) == result.counters.ambiguous

    def test_message_timeline_is_send_then_deliveries(self):
        recorder = TraceRecorder()
        run_simulation(
            SimulationConfig(
                n_nodes=6,
                r=12,
                k=2,
                duration_ms=5_000.0,
                seed=3,
                workload=PoissonWorkload(1_000.0),
                application_factory=TracingApplication(recorder),
            )
        )
        sends = recorder.select(kind=TraceKind.SEND)
        assert sends, "the run should have sent something"
        # Note: the tracing app numbers messages per node, matching the
        # protocol's (sender, seq) ids.
        timeline = recorder.message_timeline(sends[0].message_id)
        assert timeline[0].kind is TraceKind.SEND
        deliveries = [e for e in timeline if e.kind is TraceKind.DELIVER]
        assert len(deliveries) == 5  # everyone else delivered it
        assert all(e.time >= timeline[0].time for e in timeline)
