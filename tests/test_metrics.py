"""Tests for metric collectors."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.sim.metrics import AlertConfusion, MetricSet, StreamingSummary
from repro.sim.oracle import DeliveryVerdict
from repro.util.rng import RandomSource


class TestStreamingSummary:
    def test_moments_match_numpy(self):
        rng = RandomSource(seed=9)
        values = [rng.gauss(50, 7) for _ in range(3000)]
        summary = StreamingSummary()
        for v in values:
            summary.observe(v)
        assert summary.count == 3000
        assert summary.mean == pytest.approx(float(np.mean(values)))
        assert summary.std == pytest.approx(float(np.std(values, ddof=1)), rel=1e-9)
        assert summary.minimum == min(values)
        assert summary.maximum == max(values)

    def test_empty_summary(self):
        summary = StreamingSummary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.variance == 0.0
        assert summary.quantile(0.5) == 0.0

    def test_single_value(self):
        summary = StreamingSummary()
        summary.observe(42.0)
        assert summary.mean == 42.0
        assert summary.variance == 0.0

    def test_quantiles_exact_below_reservoir_capacity(self):
        summary = StreamingSummary(reservoir_size=1000)
        for v in range(101):
            summary.observe(float(v))
        assert summary.quantile(0.0) == 0.0
        assert summary.quantile(0.5) == 50.0
        assert summary.quantile(1.0) == 100.0

    def test_quantiles_approximate_beyond_capacity(self):
        summary = StreamingSummary(reservoir_size=512)
        for v in range(20_000):
            summary.observe(float(v))
        median = summary.quantile(0.5)
        assert 8000 < median < 12_000

    def test_quantile_validation(self):
        summary = StreamingSummary()
        with pytest.raises(ConfigurationError):
            summary.quantile(1.5)

    def test_reservoir_size_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingSummary(reservoir_size=0)

    def test_as_dict_keys(self):
        summary = StreamingSummary()
        summary.observe(1.0)
        assert set(summary.as_dict()) == {
            "count", "mean", "std", "min", "p50", "p95", "p99", "max",
        }


class TestAlertConfusion:
    def test_verdict_routing(self):
        confusion = AlertConfusion()
        confusion.observe(True, DeliveryVerdict.AMBIGUOUS)
        confusion.observe(False, DeliveryVerdict.AMBIGUOUS)
        confusion.observe(True, DeliveryVerdict.VIOLATION)
        confusion.observe(False, DeliveryVerdict.VIOLATION)
        confusion.observe(True, DeliveryVerdict.CORRECT)
        confusion.observe(False, DeliveryVerdict.CORRECT)
        assert confusion.late_caught == 1
        assert confusion.late_missed == 1
        assert confusion.early_alerted == 1
        assert confusion.early_silent == 1
        assert confusion.false_positives == 1
        assert confusion.true_negatives == 1
        assert confusion.total == 6
        assert confusion.alerts == 3

    def test_precision(self):
        confusion = AlertConfusion(late_caught=2, false_positives=6, early_alerted=2)
        assert confusion.precision == pytest.approx(0.4)  # (2+2)/(2+2+6)

    def test_recall_late(self):
        confusion = AlertConfusion(late_caught=3, late_missed=1)
        assert confusion.recall_late == pytest.approx(0.75)

    def test_recall_defaults_to_one_without_late_deliveries(self):
        assert AlertConfusion().recall_late == 1.0

    def test_alert_rate(self):
        confusion = AlertConfusion(late_caught=1, true_negatives=9)
        assert confusion.alert_rate == pytest.approx(0.1)

    def test_empty_rates(self):
        confusion = AlertConfusion()
        assert confusion.precision == 0.0
        assert confusion.alert_rate == 0.0


class TestMetricSet:
    def test_default_components(self):
        metrics = MetricSet()
        metrics.latency.observe(10.0)
        metrics.pending.observe(2.0)
        metrics.alerts.observe(False, DeliveryVerdict.CORRECT)
        assert metrics.latency.count == 1
        assert metrics.pending.count == 1
        assert metrics.alerts.total == 1
