"""Integration: the wire codec inside a full simulated system.

Every message crossing the simulated network is encoded to bytes and
decoded again before reaching the receiver, exactly as a deployment
would do.  The run must behave byte-for-byte like the object-passing
run: same deliveries, same orderings, same payload fidelity — proving
the codec is lossless with respect to everything the protocol reads.
"""

import dataclasses

from repro.core.codec import MessageCodec
from repro.core.protocol import Message
from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)
from repro.sim.dissemination import Dissemination, DisseminationContext


class CodecInTheLoop(Dissemination):
    """Wraps a strategy so every scheduled copy round-trips the codec."""

    def __init__(self, inner: Dissemination, codec: MessageCodec) -> None:
        super().__init__(inner.delay_model)
        self._inner = inner
        self._codec = codec
        self.bytes_on_wire = 0
        self.copies = 0

    def _reencode(self, message: Message) -> Message:
        data = self._codec.encode(message)
        self.bytes_on_wire += len(data)
        self.copies += 1
        decoded = self._codec.decode(data)
        # Node ids are ints in the runner; the wire carries them as text.
        return dataclasses.replace(decoded, sender=type(message.sender)(decoded.sender))

    def disseminate(self, context, message, sender_id):
        return self._inner.disseminate(
            _ReencodingContext(context, self._reencode), message, sender_id
        )

    def on_first_reception(self, context, message, node_id):
        self._inner.on_first_reception(
            _ReencodingContext(context, self._reencode), message, node_id
        )


class _ReencodingContext(DisseminationContext):
    def __init__(self, inner, reencode):
        self._inner = inner
        self._reencode = reencode

    def members(self):
        return self._inner.members()

    @property
    def rng(self):
        return self._inner.rng

    def schedule_receive(self, node_id, message, delay_ms):
        self._inner.schedule_receive(node_id, self._reencode(message), delay_ms)


def build_config(dissemination):
    return SimulationConfig(
        n_nodes=15,
        r=24,
        k=3,
        key_assigner="random-colliding",
        duration_ms=10_000.0,
        seed=13,
        workload=PoissonWorkload(600.0),
        delay_model=GaussianDelayModel(),
        dissemination=dissemination,
    )


class TestCodecInTheLoop:
    def test_run_through_bytes_matches_object_run(self):
        delay = GaussianDelayModel()
        plain = run_simulation(build_config(DirectBroadcast(delay)))
        wrapped = CodecInTheLoop(DirectBroadcast(delay), MessageCodec())
        encoded = run_simulation(build_config(wrapped))

        assert wrapped.copies > 0
        assert encoded.sent == plain.sent
        assert encoded.delivered_remote == plain.delivered_remote
        assert encoded.counters.violations == plain.counters.violations
        assert encoded.counters.ambiguous == plain.counters.ambiguous
        assert encoded.stuck_pending == 0
        assert encoded.latency["mean"] == plain.latency["mean"]

    def test_wire_volume_accounts_for_every_copy(self):
        delay = GaussianDelayModel()
        wrapped = CodecInTheLoop(DirectBroadcast(delay), MessageCodec())
        result = run_simulation(build_config(wrapped))
        expected_copies = result.sent * (result.config.n_nodes - 1)
        assert wrapped.copies == expected_copies
        # Mean bytes/message is within the codec's plausible range for
        # R=24 (header + 24 varint entries + 3 keys).
        mean_bytes = wrapped.bytes_on_wire / wrapped.copies
        assert 30 <= mean_bytes <= 120
