"""Tests for the closed-form error analysis (Section 5.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.theory import (
    expected_concurrency,
    optimal_k,
    optimal_k_int,
    p_entry_covered,
    p_error,
    p_reorder_same_sender,
    p_violation_bound,
    predicted_error_series,
    timestamp_overhead_bits,
)


class TestPError:
    def test_formula_matches_direct_evaluation(self):
        r, k, x = 100, 4, 20
        expected = (1 - (1 - 1 / r) ** (k * x)) ** k
        assert p_error(r, k, x) == pytest.approx(expected)

    def test_zero_concurrency_means_zero_error(self):
        assert p_error(100, 4, 0) == 0.0

    def test_monotone_in_concurrency(self):
        values = [p_error(100, 4, x) for x in (1, 5, 10, 20, 50)]
        assert values == sorted(values)

    def test_bigger_vector_is_better(self):
        assert p_error(200, 4, 20) < p_error(100, 4, 20) < p_error(50, 4, 20)

    def test_probability_bounds(self):
        for k in range(1, 20):
            value = p_error(100, k, 20)
            assert 0.0 <= value <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_error(0, 1, 5)
        with pytest.raises(ConfigurationError):
            p_error(10, 0, 5)
        with pytest.raises(ConfigurationError):
            p_error(10, 11, 5)
        with pytest.raises(ConfigurationError):
            p_error(10, 2, -1)

    def test_entry_covered_is_bloom_filter_term(self):
        assert p_entry_covered(100, 4, 20) == pytest.approx(
            1 - (1 - 0.01) ** 80
        )


class TestOptimalK:
    def test_paper_headline_value(self):
        # R=100, X=20: the paper reports ln(2)*100/20 ≈ 3.5.
        assert optimal_k(100, 20) == pytest.approx(3.4657, abs=1e-3)

    def test_integer_optimum_matches_paper_experiment(self):
        # The paper measures the empirical optimum at K=4 for this point;
        # the integer minimiser of the closed form lands there too.
        assert optimal_k_int(100, 20) in (3, 4)

    def test_integer_optimum_is_global_minimum(self):
        r, x = 60, 9
        best = optimal_k_int(r, x)
        best_value = p_error(r, best, x)
        for k in range(1, r + 1):
            assert best_value <= p_error(r, k, x) + 1e-15

    def test_huge_concurrency_pushes_k_to_one(self):
        assert optimal_k_int(10, 1000) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_k(0, 5)
        with pytest.raises(ConfigurationError):
            optimal_k(10, 0)

    def test_series_helper(self):
        series = predicted_error_series(100, 20, [1, 2, 3])
        assert [k for k, _ in series] == [1, 2, 3]
        assert all(0 <= v <= 1 for _, v in series)

    def test_series_evaluates_fractional_k_as_given(self):
        # The continuous optimum ≈ 3.47 is the whole point of fractional
        # k in p_error; the series must not truncate it to 3.
        k_star = optimal_k(100, 20)
        series = predicted_error_series(100, 20, [3, k_star, 4])
        assert [k for k, _ in series] == [3.0, pytest.approx(k_star), 4.0]
        assert series[1][1] == pytest.approx(p_error(100, k_star, 20))
        assert series[1][1] <= series[0][1]
        assert series[1][1] <= series[2][1]
        assert series[1][1] != p_error(100, 3, 20)

    def test_early_break_matches_full_scan(self):
        # The unimodal early-break must return exactly what the full
        # O(R) scan returned, across the whole (r, x, k_max) grid.
        def full_scan(r, x, k_max=None):
            upper = r if k_max is None else min(k_max, r)
            best_k, best_value = 1, p_error(r, 1, x)
            for k in range(2, upper + 1):
                value = p_error(r, k, x)
                if value < best_value:
                    best_k, best_value = k, value
            return best_k

        for r in (1, 2, 7, 40, 100, 256):
            for x in (0.01, 0.5, 1, 3, 9, 20, 77, 1000):
                for k_max in (None, 1, 4, 16, r):
                    assert optimal_k_int(r, x, k_max=k_max) == full_scan(
                        r, x, k_max
                    ), (r, x, k_max)

    def test_zero_concurrency_degenerate(self):
        # x=0 makes P_err identically 0; both scans keep K=1.
        assert optimal_k_int(50, 0.0) == 1


class TestExpectedConcurrency:
    def test_paper_headline_value(self):
        # 200 msg/s received, 100 ms propagation -> X = 20.
        assert expected_concurrency(200, 100) == pytest.approx(20.0)

    def test_zero_rate(self):
        assert expected_concurrency(0, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_concurrency(-1, 100)
        with pytest.raises(ConfigurationError):
            expected_concurrency(1, -1)


class TestPReorderSameSender:
    def test_zero_jitter_means_no_reordering(self):
        assert p_reorder_same_sender(1000, 0) == 0.0

    def test_monotone_in_jitter(self):
        values = [p_reorder_same_sender(1000, s) for s in (5, 20, 80)]
        assert values == sorted(values)

    def test_monotone_in_interval(self):
        fast = p_reorder_same_sender(100, 20)
        slow = p_reorder_same_sender(5000, 20)
        assert fast > slow

    def test_bounded_by_half(self):
        # Even with an (almost) zero gap the overtake probability of a
        # symmetric delay difference cannot exceed 1/2.
        assert 0 < p_reorder_same_sender(0.01, 20) <= 0.5

    def test_matches_monte_carlo(self):
        from repro.util.rng import RandomSource

        rng = RandomSource(seed=42)
        mean_gap, sigma = 200.0, 30.0
        hits = 0
        trials = 40_000
        for _ in range(trials):
            gap = rng.exponential(mean_gap)
            d1 = rng.gauss(100, sigma)
            d2 = rng.gauss(100, sigma)
            if gap + d2 < d1:
                hits += 1
        estimate = hits / trials
        analytic = p_reorder_same_sender(mean_gap, sigma)
        assert analytic == pytest.approx(estimate, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_reorder_same_sender(0, 20)
        with pytest.raises(ConfigurationError):
            p_reorder_same_sender(100, -1)


class TestViolationBound:
    def test_product_form(self):
        assert p_violation_bound(0.1, 100, 4, 20) == pytest.approx(
            0.1 * p_error(100, 4, 20)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_violation_bound(1.5, 100, 4, 20)


class TestOverheadBits:
    def test_vector_clock_scaling(self):
        # (n, n, 1): overhead linear in n.
        assert timestamp_overhead_bits(1000, 1) > timestamp_overhead_bits(100, 1)

    def test_paper_configuration(self):
        bits = timestamp_overhead_bits(100, 4)
        assert bits == 100 * 32 + 4 * 7

    def test_lamport_clock(self):
        assert timestamp_overhead_bits(1, 1) == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            timestamp_overhead_bits(0, 1)
        with pytest.raises(ConfigurationError):
            timestamp_overhead_bits(10, 0)


@settings(max_examples=100, deadline=None)
@given(r=st.integers(2, 500), x=st.floats(0.5, 200))
def test_continuous_optimum_sits_in_unimodal_valley(r, x):
    """The paper derives K_opt = ln2*R/X for the Bloom-filter
    approximation (1 - e^{-KX/R})^K of p_error; around that point the
    approximated functional is a valley (clamped to [1, R])."""

    def approx_p_error(k):
        return (1.0 - math.exp(-k * x / r)) ** k

    k_star = min(max(optimal_k(r, x), 1.0), float(r))
    below = max(1.0, k_star / 2)
    above = min(float(r), k_star * 2)
    at_star = approx_p_error(k_star)
    assert at_star <= approx_p_error(below) + 1e-12
    assert at_star <= approx_p_error(above) + 1e-12


@settings(max_examples=100, deadline=None)
@given(r=st.integers(8, 500), x=st.floats(0.5, 50))
def test_exact_integer_optimum_close_to_continuous(r, x):
    """The exact integer minimiser stays within one step of the paper's
    continuous formula (clamped), for realistically large R."""
    continuous = min(max(optimal_k(r, x), 1.0), float(r))
    integer_best = optimal_k_int(r, x)
    assert abs(integer_best - continuous) <= max(1.5, 0.5 * continuous)
