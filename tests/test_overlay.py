"""Overlay dissemination tests: RELAY wire format, the partial view,
and the overlay-vs-mesh observational-identity differential.

Three layers, mirroring how the mesh wire earned its trust:

* the RELAY envelope round-trips through the frame codec (property
  test) and rejects truncation and corruption (a malformed relay must
  never take a node down — it is gossip, dropped on the floor);
* :class:`~repro.net.overlay.PartialView` honours its bounds, throttles
  gossip merges, excludes the local node, and reports collapse through
  the diversity gauge;
* above the codec, a swarm disseminating over the bounded-fanout
  overlay is observationally identical to the full mesh: same delivered
  message sets, per-sender FIFO, zero oracle violations — under the
  same injected drops/dups/reorders the wire differential suite uses.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import CodecError, FrameCodec, MemberRecord, RelayFrame
from repro.core.errors import ConfigurationError
from repro.net.overlay import PartialView
from tests.test_wire_differential import Exchange, wait_for

codec = FrameCodec()

MESH = {}  # the defaults
OVERLAY = dict(dissemination="overlay", fanout=3, view_size=8)

origins = st.text(min_size=1, max_size=20)
seqs = st.integers(min_value=0, max_value=2**40)
hops = st.integers(min_value=0, max_value=255)
addresses = st.tuples(
    st.text(min_size=1, max_size=16), st.integers(min_value=0, max_value=65535)
)
samples = st.lists(
    st.tuples(st.text(min_size=1, max_size=12), addresses),
    max_size=6,
    unique_by=lambda m: m[0],
).map(lambda ms: tuple(MemberRecord(n, a) for n, a in ms))
stamps = st.floats(min_value=0.0, max_value=2**40, allow_nan=False)


# ----------------------------------------------------------------------
# RELAY wire format
# ----------------------------------------------------------------------


class TestRelayRoundTrip:
    @given(origin=origins, seq=seqs, hop=hops, sample=samples,
           payload=st.binary(max_size=512), sent_at=stamps)
    @settings(max_examples=200, deadline=None)
    def test_relay_frame(self, origin, seq, hop, sample, payload, sent_at):
        frame = RelayFrame(
            origin=origin, seq=seq, hops=hop, sample=sample,
            payload=payload, sent_at=sent_at,
        )
        assert codec.decode(codec.encode(frame)) == frame

    def test_memoryview_input_round_trips(self):
        frame = RelayFrame(origin="n1", seq=7, hops=2, payload=b"body")
        decoded = codec.decode(memoryview(codec.encode(frame)))
        assert bytes(decoded.payload) == b"body"
        assert (decoded.origin, decoded.seq, decoded.hops) == ("n1", 7, 2)


class TestRelayMalformed:
    def _frame(self):
        return RelayFrame(
            origin="origin-node", seq=41, hops=3,
            sample=(MemberRecord("m1", ("h", 9000)),),
            payload=b"payload-bytes", sent_at=12.5,
        )

    @given(cut=st.integers(min_value=1, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_rejected(self, cut):
        data = codec.encode(self._frame())
        with pytest.raises(CodecError):
            codec.decode(data[:-cut])

    def test_negative_seq_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(RelayFrame(origin="a", seq=-1, hops=0))

    def test_hop_count_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(RelayFrame(origin="a", seq=1, hops=256))
        with pytest.raises(CodecError):
            codec.encode(RelayFrame(origin="a", seq=1, hops=-1))

    def test_oversized_sample_rejected(self):
        sample = tuple(
            MemberRecord(f"m{i}", ("h", i)) for i in range(256)
        )
        with pytest.raises(CodecError):
            codec.encode(RelayFrame(origin="a", seq=1, hops=0, sample=sample))

    def test_corrupt_origin_utf8_rejected(self):
        data = bytearray(codec.encode(self._frame()))
        # Byte 5 is the first origin byte (magic+version+type+len prefix).
        data[6] = 0xFF
        with pytest.raises(CodecError):
            codec.decode(bytes(data))

    def test_payload_length_overrun_rejected(self):
        frame = RelayFrame(origin="a", seq=1, hops=0, payload=b"xyz")
        data = bytearray(codec.encode(frame))
        # Inflate the payload length field past the buffer's end.
        data[-4 - len(b"xyz")] = 0xEE
        with pytest.raises(CodecError):
            codec.decode(bytes(data))


# ----------------------------------------------------------------------
# the partial view
# ----------------------------------------------------------------------


class TestPartialView:
    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            PartialView("n", fanout=0)
        with pytest.raises(ConfigurationError):
            PartialView("n", fanout=4, view_size=3)
        with pytest.raises(ConfigurationError):
            PartialView("n", piggyback_size=-1)
        with pytest.raises(ConfigurationError):
            PartialView("n", merge_probability=1.5)
        with pytest.raises(ConfigurationError):
            PartialView("n", max_hops=0)

    def test_view_is_bounded(self):
        view = PartialView("n", fanout=2, view_size=4, seed=7)
        for i in range(20):
            view.add(("h", i), f"m{i}")
        assert len(view) == 4

    def test_self_exclusion(self):
        view = PartialView("n", seed=7)
        view.set_local_address(("me", 1))
        assert not view.add(("me", 1), "n")
        assert not view.add(("elsewhere", 2), "n")  # own id, NAT'd address
        view.add(("peer", 3), "p")
        assert ("me", 1) not in view
        assert len(view) == 1
        # Learning the local address late evicts an already-admitted self.
        late = PartialView("n2", seed=7)
        late.add(("me2", 1), "")
        late.set_local_address(("me2", 1))
        assert ("me2", 1) not in late

    def test_merge_probability_throttles(self):
        sample = (MemberRecord("m1", ("h", 1)),)
        never = PartialView("n", merge_probability=0.0, seed=3)
        assert not never.merge_sample(sample)
        assert len(never) == 0
        assert never.stats.merges_skipped == 1
        always = PartialView("n", merge_probability=1.0, seed=3)
        assert always.merge_sample(sample)
        assert ("h", 1) in always
        assert always.stats.merges_applied == 1

    def test_push_targets_fanout_and_exclusion(self):
        view = PartialView("n", fanout=3, view_size=12, seed=5)
        for i in range(10):
            view.add(("h", i))
        targets = view.push_targets()
        assert len(targets) == 3
        assert len(set(targets)) == 3
        excluded = ("h", 0)
        for _ in range(50):
            assert excluded not in view.push_targets(exclude=(excluded,))

    def test_live_filter_applies(self):
        view = PartialView("n", fanout=4, view_size=8, seed=5)
        for i in range(6):
            view.add(("h", i))
        live = lambda address: address[1] % 2 == 0  # noqa: E731
        assert all(a[1] % 2 == 0 for a in view.push_targets(live_filter=live))
        assert all(a[1] % 2 == 0 for a in view.digest_targets(live_filter=live))

    def test_gossip_sample_carries_self(self):
        view = PartialView("n", piggyback_size=2, seed=9)
        view.set_local_address(("me", 7))
        for i in range(5):
            view.add(("h", i), f"m{i}")
        sample = view.gossip_sample()
        assert MemberRecord("n", ("me", 7)) in sample
        assert len(sample) <= 3  # piggyback_size + self

    def test_sample_diversity_detects_collapse(self):
        view = PartialView("n", merge_probability=0.0, seed=11)
        assert view.sample_diversity() == 1.0
        # A healthy stream of distinct ids keeps the ratio high ...
        for i in range(64):
            view.merge_sample((MemberRecord(f"m{i}", ("h", i)),))
        healthy = view.sample_diversity()
        # ... a rich-get-richer stream of one id sinks it.
        for _ in range(256):
            view.merge_sample((MemberRecord("hub", ("hub", 1)),))
        assert view.sample_diversity() < 0.05 < healthy


# ----------------------------------------------------------------------
# overlay vs mesh: the observational-identity differential
# ----------------------------------------------------------------------
#
# Same scripted scenario, same injected faults, two dissemination
# substrates.  The overlay run must be indistinguishable above the
# codec: identical delivered message sets, per-sender FIFO, zero
# causal violations against the ground-truth oracle (disjoint key sets
# make the zero sound).  The wire stats double-check that the overlay
# run actually relayed and the mesh run never did.


async def run_differential(wire_kwargs, *, seed, names, rounds=6):
    exchange = Exchange(names, wire_kwargs, seed)
    for name in names:
        await exchange.boot(name)
    for _ in range(rounds):
        for name in names:
            await exchange.broadcast(name)
        await asyncio.sleep(0.03)
    assert await wait_for(exchange.converged), (
        f"no convergence ({wire_kwargs or 'mesh'}): "
        f"sent={len(exchange.sent)}, "
        f"delivered={ {n: len(o) for n, o in exchange.order.items()} }"
    )
    exchange.assert_observations()
    stats = exchange.merged_stats()
    await exchange.close()
    return exchange, stats


class TestOverlayObservationalIdentity:
    def test_lossy_multiparty_exchange(self):
        """Drops + dups + reorders over loopback UDP: overlay and mesh
        deliver the same message sets with zero oracle violations."""

        async def scenario():
            names = ("a", "b", "c", "d", "e")
            mesh, mesh_stats = await run_differential(MESH, seed=83, names=names)
            over, over_stats = await run_differential(OVERLAY, seed=83, names=names)
            # The runs really exercised different disseminators.
            assert mesh_stats.relay_sent == 0
            assert over_stats.relay_sent > 0, "overlay run never relayed"
            assert over_stats.relay_received > 0
            for name in mesh.order:
                assert set(mesh.order[name]) == set(over.order[name])

        asyncio.run(scenario())

    def test_single_sender_total_order_is_identical(self):
        """One sender: delivery order is fully determined (seq order),
        so every receiver must observe the identical sequence whichever
        substrate carried it."""

        async def scenario():
            orders = {}
            for label, wire in (("mesh", MESH), ("overlay", OVERLAY)):
                names = ("tx", "rx1", "rx2", "rx3")
                exchange = Exchange(names, wire, seed=97)
                for name in names:
                    await exchange.boot(name)
                for _ in range(15):
                    await exchange.broadcast("tx")
                assert await wait_for(exchange.converged), f"{label} stalled"
                exchange.assert_observations()
                orders[label] = {
                    name: list(exchange.order[name])
                    for name in ("rx1", "rx2", "rx3")
                }
                await exchange.close()
            assert orders["mesh"] == orders["overlay"]
            for order in orders["overlay"].values():
                assert order == [("tx", i) for i in range(1, 16)]

        asyncio.run(scenario())

    def test_relay_metrics_exported(self):
        """The relay counters, hop histogram, and diversity gauge reach
        the registry (the observability half of the tentpole)."""

        async def scenario():
            names = ("a", "b", "c", "d")
            exchange = Exchange(names, OVERLAY, seed=101)
            for name in names:
                await exchange.boot(name)
            for _ in range(4):
                for name in names:
                    await exchange.broadcast(name)
                await asyncio.sleep(0.03)
            assert await wait_for(exchange.converged)
            pushes = intakes = 0
            for node in exchange.nodes.values():
                snapshot = node.metrics.snapshot()
                counters = snapshot["counters"]
                gauges = snapshot["gauges"]
                pushes += counters["repro_relay_pushes_total"]
                intakes += counters["repro_relay_first_intake_total"]
                assert counters["repro_relay_pushes_total"] == (
                    node.overlay.stats.relay_pushes
                )
                assert 0.0 <= gauges["repro_overlay_sample_diversity"] <= 1.0
                assert gauges["repro_overlay_view_size"] == len(node.overlay)
                assert "repro_relay_hops" in snapshot["histograms"]
            assert pushes > 0 and intakes > 0
            await exchange.close()

        asyncio.run(scenario())
