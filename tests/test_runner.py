"""Integration tests: full simulated runs across configurations.

These are the end-to-end checks that the evaluation environment of §5.4
behaves: liveness (everything sent is delivered everywhere), determinism,
the zero-error baselines, and the existence of violations exactly where
the paper predicts them.
"""

import dataclasses

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import (
    ChurnAction,
    ChurnEvent,
    ConstantDelayModel,
    GaussianDelayModel,
    PoissonChurn,
    PoissonWorkload,
    PushGossip,
    ScriptedChurn,
    SimulationConfig,
    run_simulation,
)
from repro.sim.runner import NodeApplication


def quick_config(**overrides):
    base = dict(
        n_nodes=15,
        r=30,
        k=3,
        duration_ms=15_000.0,
        seed=42,
        workload=PoissonWorkload(1000.0),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestLiveness:
    def test_everything_sent_is_delivered_everywhere(self):
        result = run_simulation(quick_config())
        assert result.sent > 0
        assert result.undelivered_messages == 0
        assert result.stuck_pending == 0
        assert result.delivered_remote == result.sent * (result.config.n_nodes - 1)

    def test_liveness_for_every_clock_mode(self):
        for clock in ("probabilistic", "plausible", "lamport", "vector"):
            result = run_simulation(quick_config(clock=clock, duration_ms=8000.0))
            assert result.undelivered_messages == 0, clock
            assert result.stuck_pending == 0, clock

    def test_counters_are_consistent(self):
        result = run_simulation(quick_config())
        counters = result.counters
        assert counters.deliveries == (
            counters.correct + counters.violations + counters.ambiguous
        )
        assert 0.0 <= counters.eps_min <= counters.eps_max <= 1.0


class TestDeterminism:
    def test_same_seed_same_results(self):
        first = run_simulation(quick_config())
        second = run_simulation(quick_config())
        assert first.sent == second.sent
        assert first.counters.deliveries == second.counters.deliveries
        assert first.counters.violations == second.counters.violations
        assert first.latency["mean"] == second.latency["mean"]

    def test_different_seed_different_run(self):
        first = run_simulation(quick_config(seed=1))
        second = run_simulation(quick_config(seed=2))
        assert first.sent != second.sent or first.latency["mean"] != second.latency["mean"]


class TestZeroErrorBaselines:
    def test_vector_clock_never_violates(self):
        result = run_simulation(
            quick_config(clock="vector", workload=PoissonWorkload(200.0))
        )
        assert result.counters.violations == 0
        assert result.counters.ambiguous == 0

    def test_constant_delay_never_violates(self):
        # No network reordering -> P_nc = 0 -> no errors even with tiny R.
        result = run_simulation(
            quick_config(
                r=8,
                k=2,
                delay_model=ConstantDelayModel(100.0),
                workload=PoissonWorkload(200.0),
            )
        )
        assert result.counters.violations == 0
        assert result.counters.ambiguous == 0

    def test_low_load_rarely_violates(self):
        # The paper's observation: when inter-send time >> transit time,
        # causal order comes (nearly) free.
        result = run_simulation(quick_config(workload=PoissonWorkload(10_000.0)))
        assert result.counters.eps_max <= 0.01


class TestViolationsUnderPressure:
    def test_small_r_high_load_produces_violations(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=30,
                r=12,
                k=2,
                duration_ms=60_000.0,
                seed=7,
                workload=PoissonWorkload(250.0),
            )
        )
        assert result.counters.violations > 0
        assert result.counters.eps_min > 0

    def test_algorithm4_catches_every_bypassed_delivery(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=30,
                r=12,
                k=2,
                duration_ms=60_000.0,
                seed=7,
                detector="basic",
                workload=PoissonWorkload(250.0),
            )
        )
        assert result.alerts.late_caught > 0
        assert result.alerts.late_missed == 0
        assert result.alerts.recall_late == 1.0

    def test_vector_clock_beats_probabilistic_on_errors(self):
        shared = dict(
            n_nodes=25, duration_ms=40_000.0, seed=11, workload=PoissonWorkload(250.0)
        )
        probabilistic = run_simulation(SimulationConfig(r=12, k=2, **shared))
        exact = run_simulation(SimulationConfig(clock="vector", **shared))
        assert exact.counters.violations == 0
        assert probabilistic.counters.violations > exact.counters.violations


class TestDissemination:
    def test_gossip_run_completes_and_dedups(self):
        config = quick_config(
            dissemination=PushGossip(GaussianDelayModel(), fanout=6),
            duration_ms=8000.0,
        )
        result = run_simulation(config)
        assert result.duplicates > 0  # gossip redundancy absorbed
        assert result.counters.deliveries > 0

    def test_latency_reflects_delay_model(self):
        result = run_simulation(
            quick_config(delay_model=ConstantDelayModel(250.0), duration_ms=8000.0)
        )
        assert result.latency["mean"] == pytest.approx(250.0, abs=5.0)


class TestChurn:
    def test_scripted_joins_and_leaves(self):
        script = ScriptedChurn(
            [
                ChurnEvent(time=2000.0, action=ChurnAction.JOIN),
                ChurnEvent(time=4000.0, action=ChurnAction.JOIN),
                ChurnEvent(time=6000.0, action=ChurnAction.LEAVE),
            ]
        )
        result = run_simulation(quick_config(churn=script, duration_ms=12_000.0))
        assert result.joins == 2
        assert result.leaves == 1
        assert result.stuck_pending == 0

    def test_poisson_churn_stays_live(self):
        churn = PoissonChurn(
            join_interval_ms=3000.0, leave_interval_ms=3000.0, min_population=5
        )
        result = run_simulation(quick_config(churn=churn, duration_ms=20_000.0))
        assert result.stuck_pending == 0
        assert result.joins >= 0 and result.leaves >= 0

    def test_joined_node_participates(self):
        script = ScriptedChurn([ChurnEvent(time=1000.0, action=ChurnAction.JOIN)])
        result = run_simulation(
            quick_config(churn=script, workload=PoissonWorkload(500.0))
        )
        # The newcomer both sends and receives: mean membership above N.
        assert result.mean_membership > result.config.n_nodes


class TestApplications:
    def test_application_sees_every_remote_delivery(self):
        deliveries = []

        class Probe(NodeApplication):
            def make_payload(self, node_id, now):
                return ("op", node_id)

            def on_deliver(self, node_id, record, verdict, now):
                deliveries.append((node_id, record.message.payload))

        result = run_simulation(
            quick_config(application_factory=lambda node_id: Probe())
        )
        assert len(deliveries) == result.delivered_remote
        assert all(payload[0] == "op" for _, payload in deliveries)


class TestValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=0))
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=5, clock="quantum"))
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=5, k=200, r=100))
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=5, duration_ms=0))
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=5, detector="psychic"))
        with pytest.raises(ConfigurationError):
            run_simulation(SimulationConfig(n_nodes=5, key_assigner="florp"))

    def test_max_messages_caps_sending(self):
        result = run_simulation(quick_config(max_messages=10))
        assert result.sent <= 10

    def test_key_assigner_variants_run(self):
        for assigner in ("random", "random-colliding", "perfect", "sequential", "hash"):
            result = run_simulation(
                quick_config(key_assigner=assigner, duration_ms=5000.0)
            )
            assert result.undelivered_messages == 0, assigner

    def test_detector_variants_run(self):
        for detector in ("none", "basic", "refined"):
            result = run_simulation(quick_config(detector=detector, duration_ms=5000.0))
            assert result.counters.deliveries > 0, detector


class TestAdaptiveK:
    def test_adaptive_converges_toward_optimum(self):
        from collections import Counter

        from repro.core.theory import optimal_k_int

        result = run_simulation(
            SimulationConfig(
                n_nodes=30,
                r=50,
                k=10,  # mis-dimensioned: actual X will be ~10 -> optimum ~3
                key_assigner="random-colliding",
                workload=PoissonWorkload(300.0),
                duration_ms=20_000.0,
                seed=6,
                adaptive_k_interval_ms=2_000.0,
                detector="none",
            )
        )
        assert result.adaptive_rekeys >= 25
        optimum = optimal_k_int(50, result.measured_concurrency)
        common_k = Counter(result.final_k_values).most_common(1)[0][0]
        assert abs(common_k - optimum) <= 2
        assert result.stuck_pending == 0

    def test_static_runs_report_zero_rekeys(self):
        result = run_simulation(quick_config())
        assert result.adaptive_rekeys == 0
        assert set(result.final_k_values) == {result.config.k}

    def test_adaptive_requires_probabilistic_clock(self):
        with pytest.raises(ConfigurationError):
            run_simulation(
                quick_config(clock="vector", adaptive_k_interval_ms=1000.0)
            )
        with pytest.raises(ConfigurationError):
            run_simulation(quick_config(adaptive_k_interval_ms=0.0))


class TestParallelRuns:
    """The multiprocessing fan-out behind sweeps (run_simulations)."""

    def test_parallel_results_match_sequential(self):
        from repro.sim.runner import run_simulations

        configs = [quick_config(seed=seed) for seed in (1, 2, 3)]
        sequential = [run_simulation(config) for config in configs]
        parallel = run_simulations(configs, workers=2)
        assert len(parallel) == len(sequential)
        for seq, par in zip(sequential, parallel):
            assert par.config.seed == seq.config.seed
            assert par.sent == seq.sent
            assert par.delivered_remote == seq.delivered_remote
            assert par.counters.violations == seq.counters.violations

    def test_resolve_workers(self, monkeypatch):
        from repro.sim.runner import resolve_workers

        monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
        assert resolve_workers(workers=4) == 4
        assert resolve_workers(workers=4, jobs=2) == 2
        assert resolve_workers(jobs=0) == 1
        monkeypatch.setenv("REPRO_SIM_WORKERS", "3")
        assert resolve_workers() == 3
        monkeypatch.setenv("REPRO_SIM_WORKERS", "florp")
        with pytest.raises(ConfigurationError):
            resolve_workers()
        with pytest.raises(ConfigurationError):
            resolve_workers(workers=0)

    def test_engine_config_round_trip(self):
        indexed = run_simulation(quick_config(engine="indexed"))
        naive = run_simulation(quick_config(engine="naive"))
        assert indexed.sent == naive.sent
        assert indexed.delivered_remote == naive.delivered_remote
        assert indexed.counters.violations == naive.counters.violations
        with pytest.raises(ConfigurationError):
            run_simulation(quick_config(engine="florp"))
