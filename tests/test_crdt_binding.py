"""Integration: CRDTs running over the causal broadcast protocol.

These tests connect the two halves of the library — the protocol machine
(core) and the data types (crdt) — without the simulator: endpoints
exchange messages directly, with controlled (re)ordering.
"""

import pytest

from repro.core.clocks import ProbabilisticCausalClock, VectorCausalClock
from repro.core.protocol import CausalBroadcastEndpoint
from repro.crdt import CrdtBinding, ORSet, PNCounter, RGA, ROOT
from repro.sim.recovery import AntiEntropySession


def make_binding(name, crdt_factory, keys, r=8):
    crdt = crdt_factory(name)

    def factory(callback):
        return CausalBroadcastEndpoint(
            process_id=name,
            clock=ProbabilisticCausalClock(r, keys),
            deliver_callback=callback,
        )

    return CrdtBinding.attach(factory, crdt)


class TestBindingBasics:
    def test_local_update_broadcast_and_apply(self):
        alice = make_binding("alice", ORSet, (0, 1))
        bob = make_binding("bob", ORSet, (2, 3))
        op = alice.crdt.add("milk")
        message = alice.broadcast_update(op)
        bob.endpoint.on_receive(message)
        assert bob.crdt.value() == {"milk"}
        assert alice.crdt.value() == {"milk"}

    def test_log_records_both_local_and_remote(self):
        alice = make_binding("alice", PNCounter, (0, 1))
        bob = make_binding("bob", PNCounter, (2, 3))
        message = alice.broadcast_update(alice.crdt.increment(3))
        bob.endpoint.on_receive(message)
        assert len(alice.log) == 1  # local self-delivery
        assert len(bob.log) == 1

    def test_detached_binding_rejects_broadcast(self):
        binding = CrdtBinding(PNCounter("x"))
        with pytest.raises(RuntimeError):
            binding.broadcast_update(("incr", "x", 1))


class TestCausalProtection:
    def test_causal_delivery_prevents_rga_anomaly(self):
        """With the protocol in between, a causally dependent insert is
        queued (not applied) until its parent arrives: zero anomalies
        even under network reordering."""
        alice = make_binding("alice", RGA, (0, 1))
        bob = make_binding("bob", RGA, (2, 3))
        carol = make_binding("carol", RGA, (4, 5))

        op1 = alice.crdt.insert_after(ROOT, "H")
        m1 = alice.broadcast_update(op1)
        bob.endpoint.on_receive(m1)
        op2 = bob.crdt.insert_after(op1[2], "i")
        m2 = bob.broadcast_update(op2)

        # Carol receives m2 first: the protocol holds it back.
        carol.endpoint.on_receive(m2)
        assert carol.crdt.as_text() == ""
        assert carol.crdt.anomalies == 0
        carol.endpoint.on_receive(m1)
        assert carol.crdt.as_text() == "Hi"
        assert carol.crdt.anomalies == 0

    def test_raw_reordering_would_have_caused_an_anomaly(self):
        """Control: the same scenario without the protocol produces the
        anomaly the binding prevented."""
        alice = RGA("alice")
        op1 = alice.insert_after(ROOT, "H")
        op2 = alice.insert_after(op1[2], "i")
        raw = RGA("raw")
        raw.apply_remote(op2)
        assert raw.anomalies == 1


class TestAnomalyUnderCoveredEntries:
    def build_figure2_bindings(self):
        """The Figure-2 key layout, with an OR-Set on top: the covering
        messages let a causally dependent remove bypass its add."""
        keys = {
            "p_i": (0, 1),
            "p_j": (1, 2),
            "p_k": (2, 3),
            "p_1": (0, 3),
            "p_2": (1, 3),
        }
        return {
            name: make_binding(name, ORSet, key_set, r=4)
            for name, key_set in keys.items()
        }

    def test_violation_surfaces_as_crdt_anomaly(self):
        bindings = self.build_figure2_bindings()
        p_i, p_j, p_k = bindings["p_i"], bindings["p_j"], bindings["p_k"]
        p_1, p_2 = bindings["p_1"], bindings["p_2"]

        m = p_i.broadcast_update(p_i.crdt.add("item"))
        p_j.endpoint.on_receive(m)
        m_prime = p_j.broadcast_update(p_j.crdt.remove("item"))
        m_1 = p_1.broadcast_update(p_1.crdt.add("noise1"))
        m_2 = p_2.broadcast_update(p_2.crdt.add("noise2"))

        # p_k receives the two concurrent messages, then the remove —
        # which the weakened clock wrongly lets through.
        p_k.endpoint.on_receive(m_2)
        p_k.endpoint.on_receive(m_1)
        p_k.endpoint.on_receive(m_prime)
        assert p_k.crdt.anomalies == 1

        # The late add is cancelled by the pre-removed tombstone: state
        # still converges with a replica that saw the causal order.
        p_k.endpoint.on_receive(m)
        p_j.endpoint.on_receive(m_1)
        p_j.endpoint.on_receive(m_2)
        assert p_k.crdt.value() == p_j.crdt.value() == {"noise1", "noise2"}


class TestRecoveryIntegration:
    def test_anti_entropy_repairs_partitioned_replica(self):
        alice = make_binding("alice", ORSet, (0, 1))
        bob = make_binding("bob", ORSet, (2, 3))
        # Alice makes updates that never reach Bob (partition).
        for item in ("a", "b", "c"):
            alice.broadcast_update(alice.crdt.add(item))
        assert bob.crdt.value() == set()

        session = AntiEntropySession(
            apply_first=bob.repair_from, apply_second=alice.repair_from
        )
        repaired = session.reconcile(bob.log, alice.log)
        assert repaired == 3
        assert bob.crdt.value() == {"a", "b", "c"}
        assert bob.crdt.value() == alice.crdt.value()
