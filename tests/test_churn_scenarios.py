"""Targeted churn scenarios: mass leave and flash crowd, oracle-checked.

These drive :class:`~repro.sim.membership.ScriptedChurn` end-to-end
through the simulation runner: a coordinated mass departure and a flash
crowd of joiners, with the runner's causality oracle verifying delivery
order throughout.  Also pins the scripted-victim semantics — a
``ChurnEvent.node_id`` names *which* member leaves, it is not a hint.
"""

from repro.sim import (
    ChurnAction,
    ChurnEvent,
    PoissonWorkload,
    ScriptedChurn,
    SimulationConfig,
    run_simulation,
)
from repro.sim.runner import NodeApplication


class LeaveRecorder(NodeApplication):
    """Shared across nodes: records which ids actually left, and when."""

    def __init__(self, log):
        self._log = log

    def on_leave(self, node_id, now):
        self._log.append((node_id, now))


def churn_config(script, **overrides):
    base = dict(
        n_nodes=10,
        r=40,
        k=3,
        duration_ms=20_000.0,
        seed=11,
        workload=PoissonWorkload(800.0),
        churn=ScriptedChurn(script),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestTargetedLeave:
    def test_scripted_victim_is_honoured(self):
        departures = []
        script = [
            ChurnEvent(time=5000.0, action=ChurnAction.LEAVE, node_id=3),
            ChurnEvent(time=7000.0, action=ChurnAction.LEAVE, node_id=7),
        ]
        result = run_simulation(
            churn_config(
                script,
                application_factory=lambda node_id: LeaveRecorder(departures),
            )
        )
        assert result.leaves == 2
        assert [node_id for node_id, _ in departures] == [3, 7]

    def test_departed_victim_not_retargeted(self):
        departures = []
        # The second event names a node that already left: it must be a
        # no-op, not a random re-sample.
        script = [
            ChurnEvent(time=4000.0, action=ChurnAction.LEAVE, node_id=2),
            ChurnEvent(time=6000.0, action=ChurnAction.LEAVE, node_id=2),
        ]
        result = run_simulation(
            churn_config(
                script,
                application_factory=lambda node_id: LeaveRecorder(departures),
            )
        )
        assert result.leaves == 1
        assert [node_id for node_id, _ in departures] == [2]

    def test_untargeted_leave_still_samples(self):
        departures = []
        script = [ChurnEvent(time=5000.0, action=ChurnAction.LEAVE)]
        result = run_simulation(
            churn_config(
                script,
                application_factory=lambda node_id: LeaveRecorder(departures),
            )
        )
        assert result.leaves == 1
        assert len(departures) == 1


class TestMassLeave:
    def test_half_the_group_leaves_at_once(self):
        """Five of ten nodes leave in the same millisecond; the survivors
        keep delivering everything in causal order and nothing wedges."""
        script = [
            ChurnEvent(time=8000.0, action=ChurnAction.LEAVE, node_id=i)
            for i in range(5)
        ]
        result = run_simulation(churn_config(script, duration_ms=25_000.0))
        assert result.leaves == 5
        assert result.stuck_pending == 0
        # Oracle-checked causal order with an exact clock: a mass leave
        # must not produce a single violation.
        exact = run_simulation(
            churn_config(
                script, clock="vector", n_nodes=10, duration_ms=25_000.0
            )
        )
        assert exact.counters.violations == 0
        assert exact.leaves == 5

    def test_population_floor_respected(self):
        # Scripting more leaves than the floor allows must saturate at
        # the minimum population, not empty the group.
        script = [
            ChurnEvent(time=3000.0 + 500.0 * i, action=ChurnAction.LEAVE)
            for i in range(20)
        ]
        result = run_simulation(churn_config(script))
        # 10 nodes, floor of 2: exactly 8 of the 20 scripted leaves land.
        assert result.leaves == 8


class TestFlashCrowd:
    def test_crowd_joins_mid_run(self):
        """Eight joiners in two seconds against a four-node base: all of
        them participate and the oracle stays clean on the exact clock."""
        script = [
            ChurnEvent(time=5000.0 + 250.0 * i, action=ChurnAction.JOIN)
            for i in range(8)
        ]
        result = run_simulation(
            churn_config(script, n_nodes=4, duration_ms=25_000.0)
        )
        assert result.joins == 8
        assert result.stuck_pending == 0
        assert result.mean_membership > 4

        exact = run_simulation(
            churn_config(
                script, clock="vector", n_nodes=4, duration_ms=25_000.0
            )
        )
        assert exact.counters.violations == 0
        assert exact.joins == 8

    def test_flash_crowd_after_mass_leave(self):
        """The churn one-two punch: half the group leaves, then a crowd
        rejoins.  Sends from every era deliver without wedging."""
        script = (
            [
                ChurnEvent(time=6000.0, action=ChurnAction.LEAVE, node_id=i)
                for i in range(3)
            ]
            + [
                ChurnEvent(time=10_000.0 + 200.0 * i, action=ChurnAction.JOIN)
                for i in range(5)
            ]
        )
        result = run_simulation(
            churn_config(script, n_nodes=8, duration_ms=28_000.0)
        )
        assert result.leaves == 3
        assert result.joins == 5
        assert result.stuck_pending == 0
