"""Tests for key-set assignment strategies (Section 4.1.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import num_key_sets, unrank_lex
from repro.core.errors import ConfigurationError, MembershipError
from repro.core.keyspace import (
    ExplicitKeyAssigner,
    HashKeyAssigner,
    KeyAssignment,
    PerfectKeyAssigner,
    RandomKeyAssigner,
    SequentialKeyAssigner,
    entry_loads,
    pairwise_overlap_counts,
)
from repro.util.rng import RandomSource


class TestKeyAssignment:
    def test_k_property(self):
        assignment = KeyAssignment(process_id=1, set_id=0, keys=(0, 3, 5))
        assert assignment.k == 3

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            KeyAssignment(process_id=1, set_id=0, keys=())

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ConfigurationError):
            KeyAssignment(process_id=1, set_id=0, keys=(2, 2))


class TestAssignerBase:
    def test_double_assign_rejected(self):
        assigner = SequentialKeyAssigner(10, 2)
        assigner.assign("a")
        with pytest.raises(MembershipError):
            assigner.assign("a")

    def test_release_unknown_rejected(self):
        assigner = SequentialKeyAssigner(10, 2)
        with pytest.raises(MembershipError):
            assigner.release("ghost")

    def test_release_then_reassign(self):
        assigner = SequentialKeyAssigner(10, 2)
        assigner.assign("a")
        assigner.release("a")
        assignment = assigner.assign("a")
        assert assignment.k == 2

    def test_lookup(self):
        assigner = SequentialKeyAssigner(10, 2)
        granted = assigner.assign("a")
        assert assigner.lookup("a") == granted
        with pytest.raises(MembershipError):
            assigner.lookup("b")

    def test_len_and_contains(self):
        assigner = SequentialKeyAssigner(10, 2)
        assert len(assigner) == 0
        assigner.assign("a")
        assert "a" in assigner and "b" not in assigner
        assert len(assigner) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SequentialKeyAssigner(0, 1)
        with pytest.raises(ConfigurationError):
            SequentialKeyAssigner(5, 6)
        with pytest.raises(ConfigurationError):
            SequentialKeyAssigner(5, 0)


class TestRandomKeyAssigner:
    def test_deterministic_given_seed(self):
        first = RandomKeyAssigner(20, 3, rng=RandomSource(seed=7))
        second = RandomKeyAssigner(20, 3, rng=RandomSource(seed=7))
        for process in range(10):
            assert first.assign(process).keys == second.assign(process).keys

    def test_distinct_sets_when_avoiding_collisions(self):
        assigner = RandomKeyAssigner(8, 2, rng=RandomSource(seed=1))
        seen = set()
        for process in range(num_key_sets(8, 2)):
            keys = assigner.assign(process).keys
            assert keys not in seen
            seen.add(keys)

    def test_exhaustion_raises(self):
        assigner = RandomKeyAssigner(4, 2, rng=RandomSource(seed=1))
        for process in range(num_key_sets(4, 2)):
            assigner.assign(process)
        with pytest.raises(MembershipError):
            assigner.assign("overflow")

    def test_release_recycles_ids(self):
        assigner = RandomKeyAssigner(4, 2, rng=RandomSource(seed=1))
        for process in range(num_key_sets(4, 2)):
            assigner.assign(process)
        assigner.release(0)
        # The freed set id becomes available again.
        assignment = assigner.assign("late")
        assert assignment.k == 2

    def test_colliding_mode_allows_duplicates(self):
        # With only 3 possible sets and many draws, collisions must occur.
        assigner = RandomKeyAssigner(3, 2, rng=RandomSource(seed=2), avoid_collisions=False)
        keys = [assigner.assign(process).keys for process in range(30)]
        assert len(set(keys)) <= 3
        assert len(keys) == 30

    def test_pairwise_overlap_never_full(self):
        assigner = RandomKeyAssigner(12, 3, rng=RandomSource(seed=3))
        for process in range(40):
            assigner.assign(process)
        histogram = pairwise_overlap_counts(assigner)
        assert 3 not in histogram  # intersection of K means same set

    def test_set_id_matches_keys(self):
        assigner = RandomKeyAssigner(15, 3, rng=RandomSource(seed=4))
        assignment = assigner.assign("x")
        assert unrank_lex(assignment.set_id, 15, 3) == assignment.keys


class TestSequentialKeyAssigner:
    def test_enumerates_lexicographically(self):
        assigner = SequentialKeyAssigner(5, 2)
        keys = [assigner.assign(i).keys for i in range(4)]
        assert keys == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_wraps_modulo_total(self):
        assigner = SequentialKeyAssigner(4, 2)
        total = num_key_sets(4, 2)
        first_cycle = [assigner.assign(i).keys for i in range(total)]
        wrapped = assigner.assign("again").keys
        assert wrapped == first_cycle[0]


class TestPerfectKeyAssigner:
    def test_loads_stay_roughly_balanced(self):
        # The tiling's objective is subset spread, not exact per-entry
        # balance; loads must still stay within a small band.
        assigner = PerfectKeyAssigner(10, 2)
        for process in range(25):
            assigner.assign(process)
        loads = entry_loads(assigner)
        assert max(loads) - min(loads) <= 3

    def test_overlap_spread_beats_balanced_greedy(self):
        # The property that actually matters: no pair of processes shares
        # a full key set, and most pairs are disjoint.
        assigner = PerfectKeyAssigner(100, 4)
        for process in range(120):
            assigner.assign(process)
        histogram = pairwise_overlap_counts(assigner)
        assert histogram.get(4, 0) == 0
        assert histogram.get(3, 0) <= 5
        assert histogram.get(0, 0) > histogram.get(1, 0)

    def test_sets_distinct_while_space_allows(self):
        assigner = PerfectKeyAssigner(6, 2)
        seen = set()
        for process in range(10):
            keys = assigner.assign(process).keys
            assert keys not in seen
            seen.add(keys)

    def test_release_recycles_slots(self):
        assigner = PerfectKeyAssigner(6, 2)
        for process in range(6):
            assigner.assign(process)
        loads_before = entry_loads(assigner)
        released = assigner.release(0)
        loads_after = entry_loads(assigner)
        assert sum(loads_after) == sum(loads_before) - 2
        # A newcomer may reuse the freed slot.
        rejoined = assigner.assign("newcomer")
        assert len(rejoined.keys) == 2


class TestHashKeyAssigner:
    def test_stable_across_instances(self):
        first = HashKeyAssigner(30, 3)
        second = HashKeyAssigner(30, 3)
        assert first.assign("peer-42").keys == second.assign("peer-42").keys

    def test_rejoin_gets_same_keys(self):
        assigner = HashKeyAssigner(30, 3)
        original = assigner.assign("peer").keys
        assigner.release("peer")
        assert assigner.assign("peer").keys == original

    def test_different_ids_usually_differ(self):
        assigner = HashKeyAssigner(100, 4)
        keys = {assigner.assign(f"peer-{i}").keys for i in range(50)}
        assert len(keys) > 45  # collisions possible but rare


class TestExplicitKeyAssigner:
    def test_returns_declared_sets(self):
        mapping = {"p1": (0, 3), "p2": (1, 3)}
        assigner = ExplicitKeyAssigner(4, 2, mapping)
        assert assigner.assign("p1").keys == (0, 3)
        assert assigner.assign("p2").keys == (1, 3)

    def test_unknown_process_rejected(self):
        assigner = ExplicitKeyAssigner(4, 2, {"p1": (0, 1)})
        with pytest.raises(MembershipError):
            assigner.assign("p2")

    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            ExplicitKeyAssigner(4, 2, {"p1": (0, 1, 2)})
        with pytest.raises(ConfigurationError):
            ExplicitKeyAssigner(4, 2, {"p1": (0, 9)})


class TestEntryLoads:
    def test_counts_live_assignments(self):
        assigner = ExplicitKeyAssigner(4, 2, {"a": (0, 1), "b": (1, 2)})
        assigner.assign("a")
        assigner.assign("b")
        assert entry_loads(assigner) == [1, 2, 1, 0]

    def test_overlap_histogram(self):
        assigner = ExplicitKeyAssigner(4, 2, {"a": (0, 1), "b": (1, 2), "c": (2, 3)})
        for process in ("a", "b", "c"):
            assigner.assign(process)
        histogram = pairwise_overlap_counts(assigner)
        assert histogram == {1: 2, 0: 1}


@settings(max_examples=60, deadline=None)
@given(
    r=st.integers(4, 24),
    k=st.integers(1, 4),
    count=st.integers(1, 20),
    seed=st.integers(0, 2**16),
)
def test_random_assigner_invariants(r, k, count, seed):
    """Random assignment: K distinct in-range keys, distinct sets."""
    if k > r:
        k = r
    count = min(count, num_key_sets(r, k))
    assigner = RandomKeyAssigner(r, k, rng=RandomSource(seed=seed))
    seen = set()
    for process in range(count):
        keys = assigner.assign(process).keys
        assert len(keys) == k
        assert all(0 <= key < r for key in keys)
        assert keys not in seen
        seen.add(keys)


class TestAdopt:
    """Mirroring externally granted assignments (the membership layer)."""

    def test_adopt_registers_and_looks_up(self):
        assigner = RandomKeyAssigner(16, 3)
        assignment = assigner.adopt("remote", (5, 2, 9))
        assert assignment.keys == (2, 5, 9)  # canonical ascending order
        assert assigner.lookup("remote").keys == (2, 5, 9)
        assert "remote" in assigner

    def test_adopt_idempotent_same_keys(self):
        assigner = RandomKeyAssigner(16, 3)
        first = assigner.adopt("p", (1, 2, 3))
        second = assigner.adopt("p", (3, 2, 1))
        assert first == second
        assert len(assigner) == 1

    def test_adopt_conflicting_keys_rejected(self):
        assigner = RandomKeyAssigner(16, 3)
        assigner.adopt("p", (1, 2, 3))
        with pytest.raises(MembershipError):
            assigner.adopt("p", (4, 5, 6))

    def test_adopt_out_of_range_rejected(self):
        assigner = RandomKeyAssigner(16, 3)
        with pytest.raises(ConfigurationError):
            assigner.adopt("p", (1, 2, 16))

    def test_random_adopt_blocks_the_set_id(self):
        # After adoption the same set must not be drawn for someone else.
        assigner = RandomKeyAssigner(4, 2)  # C(4,2) = 6 sets
        adopted = assigner.adopt("a", (0, 1))
        others = [assigner.assign(f"p{i}").keys for i in range(5)]
        assert adopted.keys not in others

    def test_perfect_adopt_blocks_the_set(self):
        assigner = PerfectKeyAssigner(12, 3)
        assigner.adopt("boot", (0, 1, 2))  # the slot-0 tile
        granted = [assigner.assign(f"p{i}").keys for i in range(3)]
        assert (0, 1, 2) not in granted

    def test_perfect_adopt_release_tolerates_missing_slot(self):
        assigner = PerfectKeyAssigner(12, 3)
        assigner.adopt("ghost", (3, 4, 5))
        released = assigner.release("ghost")  # no slot was ever claimed
        assert released.keys == (3, 4, 5)
        assert "ghost" not in assigner

    def test_adopt_then_release_recycles(self):
        assigner = PerfectKeyAssigner(12, 3)
        first = assigner.assign("a")
        assigner.release("a")
        # LIFO slot recycling: the next grant reuses the freed slot.
        assert assigner.assign("b").keys == first.keys
