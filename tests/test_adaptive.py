"""Self-tuning (R, K): estimator, planner, controller, epoch bumps.

Unit tests drive the pure decision core (Little's-law estimator +
band/hysteresis planner) on synthetic telemetry; the integration tests
run real UDP nodes through a coordinator-proposed epoch bump and check
the re-tiled geometry lands everywhere (clock, view, codec stamp,
journal).  The crash/restart side of epochs lives in
``test_churn_soak.py``.
"""

import asyncio

import pytest

from repro.api import NodeConfig, create_node
from repro.core.errors import ConfigurationError, MembershipError
from repro.core.theory import optimal_k_int, p_error
from repro.net.adaptive import (
    AdaptiveClockController,
    AdaptivePolicy,
    ConcurrencyEstimator,
    EpochPlanner,
    TelemetrySample,
    TelemetryWindow,
)


def sample(now, delivered, wait_sum=0.0, wait_count=0, pending=0.0,
           alerts=0.0, checks=0.0):
    return TelemetrySample(
        now=now, delivered_total=delivered, wait_sum=wait_sum,
        wait_count=wait_count, pending_depth=pending,
        alerts_total=alerts, checks_total=checks,
    )


def window(x_estimate, alert_rate, deliveries=1000.0):
    return TelemetryWindow(
        elapsed=10.0, deliveries=deliveries, delivery_rate=deliveries / 10.0,
        mean_wait=0.01, x_estimate=x_estimate, alert_rate=alert_rate,
    )


class TestAdaptivePolicy:
    def test_defaults_valid(self):
        policy = AdaptivePolicy()
        assert policy.band[0] <= policy.band[1]

    @pytest.mark.parametrize(
        "field, value",
        [
            ("interval", 0.0),
            ("band", (0.5, 0.1)),
            ("band", (-0.1, 0.5)),
            ("band", (0.0, 1.5)),
            ("k_max", 0),
            ("hysteresis", 0.0),
            ("hysteresis", 1.5),
            ("cooldown", -1.0),
            ("min_window", 0),
        ],
    )
    def test_bad_knobs_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            AdaptivePolicy(**{field: value})

    def test_node_config_adaptive_requires_membership(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(adaptive=True)

    def test_node_config_validates_adaptive_knobs(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(membership=True, adaptive=True, adaptive_interval=0.0)


class TestTelemetrySample:
    def test_from_snapshot_uses_live_series_names(self):
        snapshot = {
            "counters": {
                "repro_endpoint_delivered_total": 120.0,
                "repro_detector_alerts_total": 3.0,
                "repro_detector_checks_total": 120.0,
            },
            "gauges": {"repro_pending_depth": 4.0},
            "histograms": {
                "repro_delivery_wait_seconds": {
                    "bounds": [0.1], "counts": [100, 0], "sum": 5.5,
                    "count": 100,
                }
            },
        }
        reading = TelemetrySample.from_snapshot(snapshot, now=42.0)
        assert reading.now == 42.0
        assert reading.delivered_total == 120.0
        assert reading.wait_sum == 5.5
        assert reading.wait_count == 100
        assert reading.pending_depth == 4.0
        assert reading.alerts_total == 3.0
        assert reading.checks_total == 120.0

    def test_from_snapshot_tolerates_missing_series(self):
        reading = TelemetrySample.from_snapshot({}, now=1.0)
        assert reading.delivered_total == 0.0
        assert reading.wait_count == 0


class TestConcurrencyEstimator:
    def test_first_sample_only_warms_up(self):
        estimator = ConcurrencyEstimator(min_window=1)
        assert estimator.update(sample(0.0, 10)) is None

    def test_littles_law_window(self):
        estimator = ConcurrencyEstimator(min_window=1)
        estimator.update(sample(0.0, 0))
        w = estimator.update(
            sample(10.0, 100, wait_sum=50.0, wait_count=100, pending=2.0,
                   alerts=4.0, checks=100.0)
        )
        assert w.deliveries == 100
        assert w.delivery_rate == pytest.approx(10.0)
        assert w.mean_wait == pytest.approx(0.5)
        # X̂ = rate x mean wait = 10/s x 0.5 s
        assert w.x_estimate == pytest.approx(5.0)
        assert w.alert_rate == pytest.approx(0.04)

    def test_pending_depth_floors_the_estimate(self):
        estimator = ConcurrencyEstimator(min_window=1)
        estimator.update(sample(0.0, 0))
        w = estimator.update(sample(1.0, 5, pending=7.0))
        assert w.x_estimate == pytest.approx(7.0)

    def test_thin_window_not_trusted(self):
        estimator = ConcurrencyEstimator(min_window=50)
        estimator.update(sample(0.0, 0))
        assert estimator.update(sample(1.0, 10)) is None

    def test_counter_reset_discards_window(self):
        estimator = ConcurrencyEstimator(min_window=1)
        estimator.update(sample(0.0, 1000))
        assert estimator.update(sample(1.0, 50)) is None  # restarted node
        # ...but the stream recovers on the next reading.
        assert estimator.update(sample(2.0, 60)) is not None


class TestEpochPlanner:
    def make(self, **overrides):
        base = dict(band=(0.01, 0.05), cooldown=30.0, hysteresis=0.8,
                    k_max=16)
        base.update(overrides)
        return EpochPlanner(128, AdaptivePolicy(**base))

    def test_holds_inside_the_band(self):
        planner = self.make()
        assert planner.decide(12, window(25.0, 0.03), now=0.0) is None

    def test_holds_without_a_window(self):
        assert self.make().decide(12, None, now=0.0) is None

    def test_holds_below_the_concurrency_floor(self):
        planner = self.make(x_floor=1.0)
        assert planner.decide(12, window(0.5, 0.9), now=0.0) is None

    def test_bumps_to_theory_optimum_outside_the_band(self):
        planner = self.make()
        target = planner.decide(12, window(25.0, 0.2), now=0.0)
        assert target == optimal_k_int(128, 25.0, k_max=16)
        # The move had to clear the hysteresis bar.
        assert p_error(128, target, 25.0) < 0.8 * p_error(128, 12, 25.0)

    def test_k_max_caps_the_target(self):
        planner = self.make(k_max=2)
        target = planner.decide(12, window(25.0, 0.2), now=0.0)
        assert target is None or target <= 2

    def test_holds_when_already_optimal(self):
        planner = self.make()
        best = optimal_k_int(128, 25.0, k_max=16)
        assert planner.decide(best, window(25.0, 0.2), now=0.0) is None

    def test_hysteresis_vetoes_flat_moves(self):
        best = optimal_k_int(128, 25.0, k_max=16)
        neighbour = best + 1
        ratio = p_error(128, best, 25.0) / p_error(128, neighbour, 25.0)
        assert ratio > 0.5  # P_err is nearly flat around the optimum
        planner = self.make(hysteresis=0.5)
        assert planner.decide(neighbour, window(25.0, 0.2), now=0.0) is None
        # With the guard off, the same move is taken.
        permissive = self.make(hysteresis=1.0)
        assert permissive.decide(neighbour, window(25.0, 0.2), now=0.0) == best

    def test_cooldown_spaces_bumps(self):
        planner = self.make(cooldown=30.0)
        assert planner.decide(12, window(25.0, 0.2), now=0.0) is not None
        planner.record_bump(0.0)
        assert planner.decide(12, window(25.0, 0.2), now=10.0) is None
        assert planner.decide(12, window(25.0, 0.2), now=31.0) is not None


def quick_config(**overrides):
    base = dict(
        r=64, k=8,
        ack_timeout=0.02,
        anti_entropy_interval=0.1,
        heartbeat_interval=0.05,
        quarantine_after=0.5,
        membership=True,
        join_timeout=0.5,
        join_retries=4,
        view_announce_interval=0.1,
    )
    base.update(overrides)
    return NodeConfig(**base)


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class TestEpochBump:
    def test_coordinator_bump_retiles_the_group(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            assert a.membership.is_coordinator()
            assert a.membership.epoch == 0

            view = a.membership.propose_epoch(3)
            assert view.epoch == 1
            assert a.endpoint.clock.k == 3
            assert a.epoch == 1  # codec stamps the new epoch
            # The announcement re-tiles the joiner too.
            assert await wait_for(lambda: b.membership.epoch == 1)
            assert b.endpoint.clock.k == 3
            assert b.epoch == 1
            for member in a.membership.view.members:
                assert len(member.keys) == 3

            # Post-bump traffic flows on the new geometry, both ways
            # (the callback also sees each node's own local delivery).
            got_a, got_b = [], []
            a._on_delivery = lambda r: got_a.append(r.message.payload)
            b._on_delivery = lambda r: got_b.append(r.message.payload)
            await a.broadcast("from-a")
            await b.broadcast("from-b")
            assert await wait_for(lambda: "from-a" in got_b)
            assert await wait_for(lambda: "from-b" in got_a)

            await b.close()
            await a.close()

        asyncio.run(scenario())

    def test_same_k_proposal_is_a_noop(self):
        async def scenario():
            node = await create_node("solo", quick_config())
            assert node.membership.propose_epoch(8) is None
            assert node.membership.epoch == 0
            assert node.membership.epoch_bumps == 0
            await node.close()

        asyncio.run(scenario())

    def test_non_coordinator_proposal_rejected(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b", quick_config(seed_peers=(a.local_address,))
            )
            follower = b if a.membership.is_coordinator() else a
            with pytest.raises(MembershipError):
                follower.membership.propose_epoch(3)
            await b.close()
            await a.close()

        asyncio.run(scenario())

    def test_epoch_persists_across_restart(self, tmp_path):
        async def scenario():
            config = quick_config(data_dir=str(tmp_path / "solo"))
            node = await create_node("solo", config)
            node.membership.propose_epoch(3)
            keys_after_bump = tuple(node.endpoint.clock.own_keys)
            assert node.membership.epoch == 1
            await node.close()

            revived = await create_node("solo", config)
            assert revived.membership.epoch == 1
            assert revived.membership.view.k() == 3
            assert tuple(revived.endpoint.clock.own_keys) == keys_after_bump
            assert revived.epoch == 1
            await revived.close()

        asyncio.run(scenario())


class TestController:
    def test_create_node_wires_and_starts_the_controller(self):
        async def scenario():
            node = await create_node(
                "solo",
                quick_config(adaptive=True, adaptive_interval=30.0),
            )
            assert isinstance(node.adaptive, AdaptiveClockController)
            assert node.adaptive._task is not None
            await node.close()
            assert node.adaptive._task is None

        asyncio.run(scenario())

    def test_step_bumps_epoch_through_membership(self):
        async def scenario():
            node = await create_node(
                "solo",
                quick_config(
                    adaptive=True,
                    adaptive_interval=30.0,
                    adaptive_band=(0.0, 0.05),
                ),
            )
            controller = node.adaptive
            # Synthesize an out-of-band window instead of generating
            # minutes of traffic: the actuator path (planner ->
            # membership -> epoch install -> codec stamp) is the thing
            # under test here.
            target = controller.planner.decide(
                node.endpoint.clock.k, window(25.0, 0.2), now=10.0
            )
            assert target is not None
            controller.estimator.update = lambda reading: window(25.0, 0.2)
            proposed = controller.step(now=20.0)
            assert proposed == target
            assert node.membership.epoch == 1
            assert node.endpoint.clock.k == target
            assert node.epoch == 1
            snapshot = node.metrics.snapshot()
            assert snapshot["counters"]["repro_adaptive_bumps_total"] == 1
            assert snapshot["gauges"]["repro_adaptive_k_target"] == target
            await node.close()

        asyncio.run(scenario())

    def test_step_holds_without_telemetry(self):
        async def scenario():
            node = await create_node(
                "solo", quick_config(adaptive=True, adaptive_interval=30.0)
            )
            # Two idle snapshots: no deliveries, no window, no bump.
            assert node.adaptive.step(now=1.0) is None
            assert node.adaptive.step(now=2.0) is None
            assert node.membership.epoch == 0
            await node.close()

        asyncio.run(scenario())

    def test_follower_never_proposes(self):
        async def scenario():
            a = await create_node("a", quick_config())
            b = await create_node(
                "b",
                quick_config(
                    seed_peers=(a.local_address,),
                    adaptive=True,
                    adaptive_interval=30.0,
                ),
            )
            follower = b if a.membership.is_coordinator() else a
            controller = (
                follower.adaptive
                if follower.adaptive is not None
                else AdaptiveClockController(follower)
            )
            controller.estimator.update = lambda reading: window(25.0, 0.2)
            assert controller.step(now=10.0) is None
            assert follower.membership.epoch == 0
            await b.close()
            await a.close()

        asyncio.run(scenario())
