"""Tests for the anti-entropy recovery substrate."""

import pytest

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint
from repro.sim.recovery import AntiEntropySession, DeliveryLog, diff_logs


def make_messages(count, sender="s"):
    endpoint = CausalBroadcastEndpoint(
        process_id=sender, clock=ProbabilisticCausalClock(4, (0,))
    )
    return [endpoint.broadcast(f"{sender}-{i}") for i in range(count)]


class TestDeliveryLog:
    def test_records_in_order(self):
        log = DeliveryLog()
        messages = make_messages(3)
        for message in messages:
            log.record(message)
        assert log.messages() == messages
        assert len(log) == 3

    def test_duplicates_ignored(self):
        log = DeliveryLog()
        (message,) = make_messages(1)
        log.record(message)
        log.record(message)
        assert len(log) == 1

    def test_bounded_window_evicts_oldest(self):
        log = DeliveryLog(max_entries=2)
        messages = make_messages(4)
        for message in messages:
            log.record(message)
        assert log.messages() == messages[2:]
        assert log.evicted == 2

    def test_membership_and_get(self):
        log = DeliveryLog()
        (message,) = make_messages(1)
        log.record(message)
        assert message.message_id in log
        assert log.get(message.message_id) is message
        assert log.get(("ghost", 1)) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeliveryLog(max_entries=0)


class TestDiffLogs:
    def test_symmetric_difference(self):
        messages = make_messages(4)
        first, second = DeliveryLog(), DeliveryLog()
        for message in messages[:3]:
            first.record(message)
        for message in messages[1:]:
            second.record(message)
        missing_in_first, missing_in_second = diff_logs(first, second)
        assert [m.payload for m in missing_in_first] == ["s-3"]
        assert [m.payload for m in missing_in_second] == ["s-0"]

    def test_identical_logs(self):
        messages = make_messages(2)
        first, second = DeliveryLog(), DeliveryLog()
        for message in messages:
            first.record(message)
            second.record(message)
        assert diff_logs(first, second) == ([], [])


class TestAntiEntropySession:
    def test_reconcile_repairs_both_sides(self):
        messages = make_messages(4)
        first, second = DeliveryLog(), DeliveryLog()
        for message in messages[:2]:
            first.record(message)
        for message in messages[2:]:
            second.record(message)

        applied_first, applied_second = [], []
        session = AntiEntropySession(applied_first.append, applied_second.append)
        repaired = session.reconcile(first, second)
        assert repaired == 4
        assert [m.payload for m in applied_first] == ["s-2", "s-3"]
        assert [m.payload for m in applied_second] == ["s-0", "s-1"]
        assert first.ids() == second.ids()
        assert session.stats.sessions == 1
        assert session.stats.messages_repaired == 4

    def test_replay_in_sender_sequence_order(self):
        messages = make_messages(5)
        first, second = DeliveryLog(), DeliveryLog()
        # second holds them in scrambled delivery order.
        for message in (messages[3], messages[0], messages[4]):
            second.record(message)
        applied = []
        session = AntiEntropySession(applied.append, lambda m: None)
        session.reconcile(first, second)
        assert [m.seq for m in applied] == sorted(m.seq for m in applied)

    def test_noop_when_converged(self):
        first, second = DeliveryLog(), DeliveryLog()
        session = AntiEntropySession(lambda m: None, lambda m: None)
        assert session.reconcile(first, second) == 0
