"""Tests for membership tracking and churn models."""

import pytest

from repro.core.errors import ConfigurationError, MembershipError
from repro.sim.membership import (
    ChurnAction,
    ChurnEvent,
    MembershipView,
    NoChurn,
    PoissonChurn,
    ScriptedChurn,
)
from repro.util.rng import RandomSource


class TestMembershipView:
    def test_add_remove_contains(self):
        view = MembershipView(["a", "b"])
        assert "a" in view and len(view) == 2
        view.add("c")
        view.remove("b")
        assert set(view.members()) == {"a", "c"}
        assert view.joined_total == 3
        assert view.left_total == 1

    def test_duplicate_add_rejected(self):
        view = MembershipView(["a"])
        with pytest.raises(MembershipError):
            view.add("a")

    def test_remove_non_member_rejected(self):
        view = MembershipView()
        with pytest.raises(MembershipError):
            view.remove("ghost")

    def test_swap_remove_keeps_sampling_valid(self):
        view = MembershipView(list(range(10)))
        view.remove(0)  # head removal exercises the swap path
        view.remove(5)
        rng = RandomSource(seed=1)
        for _ in range(100):
            assert view.sample(rng) in view.members()

    def test_sample_empty_rejected(self):
        with pytest.raises(MembershipError):
            MembershipView().sample(RandomSource(seed=0))

    def test_sample_uniformity(self):
        view = MembershipView(["a", "b", "c", "d"])
        rng = RandomSource(seed=2)
        counts = {}
        for _ in range(4000):
            counts[view.sample(rng)] = counts.get(view.sample(rng), 0) + 1
        assert min(counts.values()) > 500  # roughly uniform

    def test_iteration_snapshot(self):
        view = MembershipView(["a", "b"])
        iterated = list(view)
        assert set(iterated) == {"a", "b"}


class TestNoChurn:
    def test_no_events(self):
        assert NoChurn().events(RandomSource(seed=0), 1e6) == []


class TestPoissonChurn:
    def test_event_counts_scale_with_rate(self):
        churn = PoissonChurn(join_interval_ms=100, leave_interval_ms=200)
        events = churn.events(RandomSource(seed=1), 10_000)
        joins = [e for e in events if e.action is ChurnAction.JOIN]
        leaves = [e for e in events if e.action is ChurnAction.LEAVE]
        assert 60 <= len(joins) <= 140  # ~100 expected
        assert 25 <= len(leaves) <= 80  # ~50 expected

    def test_events_sorted_and_in_horizon(self):
        churn = PoissonChurn(join_interval_ms=50, leave_interval_ms=50)
        events = churn.events(RandomSource(seed=2), 5000)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 <= t < 5000 for t in times)

    def test_disabled_processes(self):
        churn = PoissonChurn(join_interval_ms=None, leave_interval_ms=None)
        assert churn.events(RandomSource(seed=3), 10_000) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonChurn(join_interval_ms=0)
        with pytest.raises(ConfigurationError):
            PoissonChurn(min_population=1)
        with pytest.raises(ConfigurationError):
            PoissonChurn(min_population=5, max_population=3)


class TestScriptedChurn:
    def test_replays_in_order_and_filters_horizon(self):
        script = [
            ChurnEvent(time=500, action=ChurnAction.LEAVE),
            ChurnEvent(time=100, action=ChurnAction.JOIN),
            ChurnEvent(time=9999, action=ChurnAction.JOIN),
        ]
        churn = ScriptedChurn(script)
        events = churn.events(RandomSource(seed=0), 1000)
        assert [e.time for e in events] == [100, 500]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ScriptedChurn([ChurnEvent(time=-1, action=ChurnAction.JOIN)])
