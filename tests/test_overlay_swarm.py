"""Overlay swarm soak: 64 real in-process nodes, oracle-checked.

The tentpole acceptance scenario at test scale: a 64-node swarm over
the in-process bus, disseminating exclusively through the bounded-
fanout relay overlay (fanout 3, view bound 12 — each node talks to a
dozen peers out of 63), with injected datagram loss so the anti-entropy
backstop actually earns its keep.  Every node starts with only a tiny
ring of seed peers; the piggybacked view gossip has to spread the rest
of the swarm's addresses by itself.

Asserted:

* **coverage** — 100% of broadcasts delivered everywhere once the
  relay wave plus anti-entropy settle (no probabilistic tail left);
* **safety** — zero causal violations against the ground-truth oracle
  (disjoint key sets make the (R, K) condition exact, so the zero is
  sound, not probabilistic);
* **per-sender FIFO** at every node;
* **view diversity** — the live rich-get-richer check (satellite of
  the overlay ISSUE): the swarm's views collectively cover most of the
  membership, no single node colonises the views, and the per-node
  diversity gauge stays well above the collapse floor;
* **redundancy is real** — duplicate relay copies arrive and are
  absorbed by the SeenFilter without re-forwarding (infect-and-die).

Marked ``soak``: excluded from tier-1 (see pyproject addopts), run in
CI's dedicated overlay-swarm job.
"""

import asyncio
from collections import Counter

import pytest

from repro.api import NodeConfig, create_node
from repro.net import LocalAsyncBus
from repro.sim.network import GaussianDelayModel
from repro.sim.oracle import CausalityOracle, DeliveryVerdict
from repro.util.rng import RandomSource

pytestmark = pytest.mark.soak

N_NODES = 64
ROUNDS = 3
FANOUT = 3
VIEW_SIZE = 12
SEED_PEERS = 4  # ring neighbours each node starts with


async def wait_for(predicate, timeout=240.0, interval=0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def test_overlay_swarm_converges_with_zero_violations():
    async def scenario():
        names = [f"n{i:02d}" for i in range(N_NODES)]
        bus = LocalAsyncBus(
            delay_model=GaussianDelayModel(5.0, 1.0, 0.0),
            rng=RandomSource(seed=13).spawn("overlay-swarm"),
            time_scale=0.001,
            loss_rate=0.05,
        )
        oracle = CausalityOracle(capacity=N_NODES)
        order = {name: [] for name in names}
        violations = []
        config = NodeConfig(
            r=3 * N_NODES,
            k=3,
            ack_timeout=0.05,
            anti_entropy_interval=0.15,
            dissemination="overlay",
            fanout=FANOUT,
            view_size=VIEW_SIZE,
        )

        def on_delivery(name):
            def callback(record):
                if record.local:
                    return
                order[name].append(record.message.message_id)
                result = oracle.classify_delivery(
                    name,
                    record.message.message_id,
                    now=asyncio.get_running_loop().time(),
                )
                if result.verdict is DeliveryVerdict.VIOLATION:
                    violations.append((name, record.message.message_id))

            return callback

        nodes = {}
        for i, name in enumerate(names):
            oracle.register_node(name)
            nodes[name] = await create_node(
                name,
                # Disjoint key sets: the delivery condition is exact.
                config.replace(keys=tuple(range(3 * i, 3 * i + 3))),
                transport=bus.attach(name),
                on_delivery=on_delivery(name),
            )
        # Sparse bootstrap: a ring of SEED_PEERS successors per node.
        # Everything beyond that must arrive through view gossip.
        for i, name in enumerate(names):
            for step in range(1, SEED_PEERS + 1):
                nodes[name].add_peer(names[(i + step) % N_NODES])

        sent = []
        try:
            for _ in range(ROUNDS):
                for name in names:
                    node = nodes[name]
                    message_id = (name, node.endpoint.clock.send_count + 1)
                    oracle.on_send(
                        name,
                        message_id,
                        now=asyncio.get_running_loop().time(),
                        fanout=N_NODES - 1,
                    )
                    await node.broadcast(message_id)
                    sent.append(message_id)
                await asyncio.sleep(0.05)

            expected = len(sent) * (N_NODES - 1)
            converged = lambda: (  # noqa: E731
                sum(len(o) for o in order.values()) == expected
            )
            assert await wait_for(converged), (
                f"coverage gap after anti-entropy: "
                f"{sum(len(o) for o in order.values())}/{expected} deliveries"
            )
            assert not violations, f"causal violations: {violations[:10]}"

            # Per-sender FIFO at every node.
            for name in names:
                last = {}
                for sender, seq in order[name]:
                    if sender in last:
                        assert seq == last[sender] + 1, (
                            f"{name} broke {sender}'s FIFO at seq {seq}"
                        )
                    last[sender] = seq

            # The overlay really carried the load: every broadcast went
            # out as a bounded push, redundant copies were absorbed.
            pushes = sum(n.overlay.stats.relay_pushes for n in nodes.values())
            intake = sum(
                n.overlay.stats.relay_first_intake for n in nodes.values()
            )
            duplicates = sum(
                n.overlay.stats.relay_duplicates for n in nodes.values()
            )
            assert pushes == len(sent)
            assert intake > 0
            assert duplicates > 0, (
                "no duplicate relay copies — gossip redundancy absent"
            )

            # View diversity (the live rich-get-richer check).  The
            # views collectively sample most of the swarm ...
            occupancy = Counter()
            total_slots = 0
            for name in names:
                for address in nodes[name].overlay.addresses():
                    occupancy[address] += 1
                    total_slots += 1
            assert len(occupancy) >= 0.5 * N_NODES, (
                f"views cover only {len(occupancy)}/{N_NODES} members"
            )
            # ... no single member colonised them (a collapsed overlay
            # concentrates every view on a few hubs) ...
            most_common = occupancy.most_common(1)[0][1]
            assert most_common <= 0.5 * total_slots, (
                f"one member holds {most_common}/{total_slots} view slots"
            )
            # ... and the per-node gauge agrees (collapse floor is
            # ~1/window ≈ 0.004; a healthy swarm sits far above it).
            diversities = [
                nodes[name].overlay.sample_diversity() for name in names
            ]
            assert sum(diversities) / len(diversities) > 0.05, (
                f"mean sample diversity {sum(diversities) / len(diversities)}"
            )
            for name in names:
                gauges = nodes[name].metrics.snapshot()["gauges"]
                assert gauges["repro_overlay_sample_diversity"] == (
                    pytest.approx(nodes[name].overlay.sample_diversity())
                )
        finally:
            await asyncio.gather(*(node.close() for node in nodes.values()))

    asyncio.run(scenario())
