"""Property tests for the oracle's classification and detector soundness.

These drive the protocol + oracle + detector with randomized arrival
orders (no network, pure control of the interleaving) and check the
invariants that underpin every measured number in EXPERIMENTS.md:

* the oracle's verdicts partition deliveries, and its CORRECT verdict is
  *sound*: replaying only the deliveries it blessed, in order, is a
  causally legal history;
* with in-order (causal) arrival everything is CORRECT;
* Algorithm 4 alerts on every delivery the oracle calls AMBIGUOUS (the
  bypassed-message side of each violation) — the paper's "no alert, no
  error" — for arbitrary interleavings, not just the benchmark configs.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.detector import BasicAlertDetector
from repro.core.keyspace import RandomKeyAssigner
from repro.core.protocol import CausalBroadcastEndpoint
from repro.sim.oracle import CausalityOracle, DeliveryVerdict
from repro.util.rng import RandomSource


def build_world(n_nodes, r, k, seed):
    rng = RandomSource(seed=seed)
    assigner = RandomKeyAssigner(r, k, rng=rng.spawn("keys"), avoid_collisions=False)
    oracle = CausalityOracle(capacity=n_nodes)
    endpoints = {}
    for node in range(n_nodes):
        oracle.register_node(node)
        endpoints[node] = CausalBroadcastEndpoint(
            node,
            ProbabilisticCausalClock(r, assigner.assign(node).keys),
            detector=BasicAlertDetector(),
        )
    return rng, oracle, endpoints


def random_run(rng, oracle, endpoints, n_nodes, steps):
    """Drive random sends and randomly ordered receptions; returns the
    (alert, verdict) pairs of every remote delivery."""
    in_flight = {node: [] for node in range(n_nodes)}
    outcomes = []
    clock_ms = 0.0

    def receive(node, message):
        records = endpoints[node].on_receive(message, clock_ms)
        for record in records:
            classified = oracle.classify_delivery(
                node, record.message.message_id, clock_ms
            )
            outcomes.append((record.alert, classified.verdict))

    for _ in range(steps):
        clock_ms += 1.0
        if rng.random() < 0.4:
            sender = rng.integer(0, n_nodes)
            message = endpoints[sender].broadcast(None, clock_ms)
            oracle.on_send(sender, message.message_id, clock_ms, n_nodes - 1)
            for node in range(n_nodes):
                if node != sender:
                    in_flight[node].append(message)
        else:
            node = rng.integer(0, n_nodes)
            queue = in_flight[node]
            if queue:
                receive(node, queue.pop(rng.integer(0, len(queue))))

    # Drain what is left, in random per-node order.
    for node, queue in in_flight.items():
        rng.shuffle(queue)
        for message in queue:
            receive(node, message)
    return outcomes


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    n_nodes=st.integers(3, 8),
    r=st.integers(3, 12),
    steps=st.integers(10, 120),
)
def test_random_interleavings_keep_all_invariants(seed, n_nodes, r, steps):
    rng, oracle, endpoints = build_world(n_nodes, r, min(2, r), seed)
    outcomes = random_run(rng, oracle, endpoints, n_nodes, steps)

    # Everything delivered, nothing stuck.
    for endpoint in endpoints.values():
        assert endpoint.pending_count == 0

    counters = oracle.totals
    assert counters.deliveries == len(outcomes)
    assert counters.deliveries == (
        counters.correct + counters.violations + counters.ambiguous
    )
    assert oracle.outstanding_messages == 0

    # Algorithm 4 soundness over arbitrary interleavings: every delivery
    # the oracle calls AMBIGUOUS (a bypassed message arriving after one
    # of its causal successors) carried an alert.
    for alert, verdict in outcomes:
        if verdict is DeliveryVerdict.AMBIGUOUS:
            assert alert, "a bypassed delivery escaped Algorithm 4"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20), n_nodes=st.integers(3, 6), sends=st.integers(1, 25))
def test_in_order_arrival_is_all_correct(seed, n_nodes, sends):
    """When every reception happens immediately (causal order trivially
    holds), the oracle must call every delivery CORRECT and the detector
    must stay silent."""
    rng, oracle, endpoints = build_world(n_nodes, r=6, k=2, seed=seed)
    outcomes = []
    for step in range(sends):
        sender = rng.integer(0, n_nodes)
        message = endpoints[sender].broadcast(None, float(step))
        oracle.on_send(sender, message.message_id, float(step), n_nodes - 1)
        for node in range(n_nodes):
            if node != sender:
                for record in endpoints[node].on_receive(message, float(step)):
                    classified = oracle.classify_delivery(
                        node, record.message.message_id, float(step)
                    )
                    outcomes.append((record.alert, classified.verdict))
    assert outcomes
    assert all(verdict is DeliveryVerdict.CORRECT for _, verdict in outcomes)
    assert all(not alert for alert, _ in outcomes)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20), n_nodes=st.integers(3, 6), steps=st.integers(20, 100))
def test_violations_and_ambiguous_pair_up(seed, n_nodes, steps):
    """Every proven violation (early delivery) creates at least one
    bypassed partner that eventually arrives (counted ambiguous) at the
    same node — after a full drain the ambiguous count is at least the
    number of distinct violating nodes and never exceeds what the
    violations could have bypassed."""
    rng, oracle, endpoints = build_world(n_nodes, r=4, k=2, seed=seed)
    random_run(rng, oracle, endpoints, n_nodes, steps)
    counters = oracle.totals
    if counters.violations == 0:
        assert counters.ambiguous == 0
    else:
        assert counters.ambiguous >= 1
