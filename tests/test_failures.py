"""Tests for fault injection: partitions and crash-stop failures."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import (
    CrashSchedule,
    DirectBroadcast,
    GaussianDelayModel,
    PartitionWindow,
    PartitionedDissemination,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)
from repro.sim.membership import ChurnAction
from repro.util.rng import RandomSource


class TestPartitionWindow:
    def test_activity_interval(self):
        window = PartitionWindow.split_even_odd(100.0, 200.0)
        assert not window.active_at(99.9)
        assert window.active_at(100.0)
        assert window.active_at(199.9)
        assert not window.active_at(200.0)

    def test_even_odd_separation(self):
        window = PartitionWindow.split_even_odd(0.0, 1.0)
        assert window.separates(0, 1)
        assert not window.separates(0, 2)
        assert not window.separates(1, 3)

    def test_unaffected_nodes_hear_everyone(self):
        window = PartitionWindow(
            start_ms=0.0,
            end_ms=1.0,
            group_of=lambda node: 0 if node == "a" else (1 if node == "b" else None),
        )
        assert window.separates("a", "b")
        assert not window.separates("a", "observer")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow.split_even_odd(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow.split_even_odd(-1.0, 5.0)


def partitioned_config(recovery="none", seed=2, **overrides):
    delay = GaussianDelayModel()
    dissemination = PartitionedDissemination(
        DirectBroadcast(delay), [PartitionWindow.split_even_odd(5_000.0, 12_000.0)]
    )
    base = dict(
        n_nodes=20,
        r=30,
        k=3,
        key_assigner="random-colliding",
        duration_ms=20_000.0,
        seed=seed,
        workload=PoissonWorkload(500.0),
        delay_model=delay,
        dissemination=dissemination,
        recovery=recovery,
        recovery_period_ms=1_000.0,
    )
    base.update(overrides)
    return SimulationConfig(**base), dissemination


class TestPartitionedRuns:
    def test_partition_drops_cross_group_traffic(self):
        config, dissemination = partitioned_config()
        run_simulation(config)
        assert dissemination.dropped_by_partition > 0

    def test_partition_without_recovery_strands_messages(self):
        config, _ = partitioned_config()
        result = run_simulation(config)
        assert result.stuck_pending > 0
        assert result.undelivered_messages > 0

    def test_anti_entropy_heals_the_partition(self):
        config, _ = partitioned_config(recovery="periodic")
        result = run_simulation(config)
        assert result.stuck_pending == 0
        assert result.undelivered_messages == 0
        assert result.recovery_repaired > 0

    def test_intra_group_traffic_flows_during_the_split(self):
        # Even without recovery, nodes on the same side keep delivering
        # each other's messages: more than half of expected volume lands.
        config, _ = partitioned_config()
        result = run_simulation(config)
        expected = result.sent * (config.n_nodes - 1)
        assert result.delivered_remote > expected * 0.5

    def test_healed_system_is_causally_consistent(self):
        config, _ = partitioned_config(recovery="periodic")
        result = run_simulation(config)
        counters = result.counters
        assert counters.deliveries == (
            counters.correct + counters.violations + counters.ambiguous
        )


class TestCrashSchedule:
    def test_events_generated_as_leaves(self):
        schedule = CrashSchedule([1_000.0, 2_000.0, 99_999.0])
        events = schedule.events(RandomSource(seed=0), 10_000.0)
        assert [event.time for event in events] == [1_000.0, 2_000.0]
        assert all(event.action is ChurnAction.LEAVE for event in events)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule([-5.0])

    def test_crashes_leave_system_live(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=12,
                r=24,
                k=2,
                duration_ms=12_000.0,
                seed=4,
                workload=PoissonWorkload(600.0),
                churn=CrashSchedule([3_000.0, 6_000.0]),
            )
        )
        assert result.leaves == 2
        assert result.stuck_pending == 0
