"""Tests for dissemination strategies (direct broadcast and gossip)."""

import pytest

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint
from repro.sim.dissemination import DirectBroadcast, DisseminationContext, PushGossip
from repro.sim.network import ConstantDelayModel, GaussianDelayModel
from repro.util.rng import RandomSource


class RecordingContext(DisseminationContext):
    """Captures schedule_receive calls for assertions."""

    def __init__(self, member_ids, seed=0):
        self._members = tuple(member_ids)
        self._rng = RandomSource(seed=seed)
        self.scheduled = []  # (node_id, message, delay)

    def members(self):
        return self._members

    def schedule_receive(self, node_id, message, delay_ms):
        self.scheduled.append((node_id, message, delay_ms))

    @property
    def rng(self):
        return self._rng


def make_message(sender="s"):
    clock = ProbabilisticCausalClock(4, (0,))
    endpoint = CausalBroadcastEndpoint(process_id=sender, clock=clock)
    return endpoint.broadcast("payload")


class TestDirectBroadcast:
    def test_reaches_all_other_members(self):
        context = RecordingContext(["s", "a", "b", "c"])
        strategy = DirectBroadcast(ConstantDelayModel(100))
        message = make_message()
        fanout = strategy.disseminate(context, message, "s")
        assert fanout == 3
        targets = {node for node, _, _ in context.scheduled}
        assert targets == {"a", "b", "c"}
        assert all(delay == 100 for _, _, delay in context.scheduled)

    def test_single_member_system(self):
        context = RecordingContext(["s"])
        strategy = DirectBroadcast(ConstantDelayModel(100))
        assert strategy.disseminate(context, make_message(), "s") == 0
        assert context.scheduled == []

    def test_loss_reduces_fanout(self):
        context = RecordingContext(list(range(200)), seed=1)
        strategy = DirectBroadcast(GaussianDelayModel(), loss_rate=0.5)
        fanout = strategy.disseminate(context, make_message(), 0)
        assert fanout == len(context.scheduled)
        assert 60 < fanout < 140  # ~100 of 199 expected

    def test_duplicates_scheduled_but_not_counted(self):
        context = RecordingContext(list(range(100)), seed=2)
        strategy = DirectBroadcast(GaussianDelayModel(), duplicate_rate=0.5)
        fanout = strategy.disseminate(context, make_message(), 0)
        assert fanout == 99
        assert len(context.scheduled) > 99  # extra duplicate receptions

    def test_on_first_reception_is_noop(self):
        context = RecordingContext(["a", "b"])
        strategy = DirectBroadcast(ConstantDelayModel(10))
        strategy.on_first_reception(context, make_message(), "a")
        assert context.scheduled == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DirectBroadcast(ConstantDelayModel(10), loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            DirectBroadcast(ConstantDelayModel(10), duplicate_rate=-0.1)


class TestPushGossip:
    def test_initial_push_respects_fanout(self):
        context = RecordingContext(list(range(50)), seed=3)
        strategy = PushGossip(ConstantDelayModel(10), fanout=4)
        budget = strategy.disseminate(context, make_message(), 0)
        assert budget == 49
        assert len(context.scheduled) == 4
        assert all(node != 0 for node, _, _ in context.scheduled)

    def test_relay_on_first_reception(self):
        context = RecordingContext(list(range(50)), seed=4)
        strategy = PushGossip(ConstantDelayModel(10), fanout=3)
        strategy.on_first_reception(context, make_message(), 7)
        assert len(context.scheduled) == 3
        assert all(node != 7 for node, _, _ in context.scheduled)

    def test_fanout_capped_by_membership(self):
        context = RecordingContext(["s", "a"], seed=5)
        strategy = PushGossip(ConstantDelayModel(10), fanout=8)
        strategy.disseminate(context, make_message(), "s")
        assert len(context.scheduled) == 1

    def test_distinct_targets_per_push(self):
        context = RecordingContext(list(range(30)), seed=6)
        strategy = PushGossip(ConstantDelayModel(10), fanout=5)
        strategy.disseminate(context, make_message(), 0)
        targets = [node for node, _, _ in context.scheduled]
        assert len(set(targets)) == len(targets)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PushGossip(ConstantDelayModel(10), fanout=0)


class TestGossipCoverage:
    def test_infect_and_die_covers_everyone_whp(self):
        """Simulate the relay process end to end on a simple round-based
        schedule: with fanout ~ log N + c, coverage is complete."""
        members = list(range(40))
        context = RecordingContext(members, seed=7)
        strategy = PushGossip(ConstantDelayModel(10), fanout=6)
        message = make_message()
        infected = {0}
        strategy.disseminate(context, message, 0)
        frontier = list(context.scheduled)
        context.scheduled = []
        rounds = 0
        while frontier and rounds < 20:
            rounds += 1
            for node, msg, _ in frontier:
                if node not in infected:
                    infected.add(node)
                    strategy.on_first_reception(context, msg, node)
            frontier = list(context.scheduled)
            context.scheduled = []
        assert infected == set(members)
