"""Failure-detector tests: monitor verdicts, quarantine, heal-on-return.

The integration tests run real UDP nodes with aggressive heartbeat
timings so a "death" is detected within a few hundred milliseconds.
"""

import asyncio

import pytest

from repro.api import NodeConfig, create_node
from repro.core.errors import ConfigurationError
from repro.net.liveness import LivenessPolicy, PeerLivenessMonitor


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


class TestPolicy:
    def test_defaults_valid(self):
        policy = LivenessPolicy()
        assert policy.quarantine_after >= policy.heartbeat_interval

    def test_zero_heartbeat_rejected(self):
        with pytest.raises(ConfigurationError):
            LivenessPolicy(heartbeat_interval=0.0)

    def test_quarantine_faster_than_heartbeat_rejected(self):
        with pytest.raises(ConfigurationError):
            LivenessPolicy(heartbeat_interval=1.0, quarantine_after=0.5)

    def test_config_validates_pair(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(heartbeat_interval=1.0, quarantine_after=0.1)


class TestMonitor:
    def make(self):
        return PeerLivenessMonitor(
            LivenessPolicy(heartbeat_interval=0.1, quarantine_after=1.0)
        )

    def test_silent_peer_quarantined_once(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        assert monitor.sweep(now=0.5) == []
        assert monitor.sweep(now=1.5) == ["a"]
        assert monitor.is_quarantined("a")
        assert monitor.sweep(now=2.5) == []  # already quarantined
        assert monitor.quarantines == 1

    def test_touch_revives_and_reports(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.sweep(now=2.0)
        assert monitor.touch("a", now=2.1) is True   # revival: caller heals
        assert monitor.touch("a", now=2.2) is False  # plain activity
        assert not monitor.is_quarantined("a")
        assert monitor.resumes == 1

    def test_touch_auto_tracks_unknown_peer(self):
        monitor = self.make()
        assert monitor.touch("new", now=5.0) is False
        assert monitor.sweep(now=7.0) == ["new"]

    def test_track_is_idempotent_and_keeps_first_deadline(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.track("a", now=10.0)  # must not refresh the grace period
        assert monitor.sweep(now=2.0) == ["a"]

    def test_forget_removes_all_state(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.sweep(now=2.0)
        monitor.forget("a")
        assert not monitor.is_quarantined("a")
        assert monitor.sweep(now=9.0) == []
        assert monitor.quarantined_peers() == ()


class TestQuarantineIntegration:
    def test_dead_peer_quarantined_and_backpressure_released(self):
        """A crashed peer is quarantined within the timeout; its unacked
        backlog is released so the sender's bounded buffer stops blocking
        broadcasts to healthy peers."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, anti_entropy_interval=0.0,
                heartbeat_interval=0.05, quarantine_after=0.25,
                send_buffer=4, max_retries=100,
            )
            alice = await create_node("alice", config)
            bob = await create_node("bob", config)
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)
            await alice.broadcast("warmup")
            assert await wait_for(lambda: len(bob.deliveries) == 1)

            bob_address = bob.local_address
            await bob.close()  # bob dies silently

            assert await wait_for(
                lambda: alice.liveness.is_quarantined(bob_address), timeout=5.0
            ), "silent peer never quarantined"
            stats = alice.transport_stats(bob_address)
            assert stats.heartbeats_sent > 0

            # The send buffer is tiny (4); with bob quarantined these
            # broadcasts must skip him entirely instead of blocking on
            # his backpressure budget.
            for i in range(10):
                await asyncio.wait_for(alice.broadcast(i), timeout=1.0)
            assert alice.session.unacked_count(bob_address) == 0
            assert alice.transport_stats(bob_address).quarantine_drops >= 0
            await alice.close()

        asyncio.run(scenario())

    def test_restarted_peer_resumes_and_heals(self):
        """A journaled bob restarting on the same port is resumed on his
        first datagram, and anti-entropy closes the gap that accumulated
        while he was down."""

        async def scenario(tmp):
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, anti_entropy_interval=0.1,
                heartbeat_interval=0.05, quarantine_after=0.25,
            )
            bob_config = config.replace(data_dir=str(tmp / "bob"))
            alice = await create_node("alice", config)
            bob = await create_node("bob", bob_config)
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)
            await alice.broadcast("before")
            assert await wait_for(lambda: len(bob.deliveries) == 1)

            bob_address = bob.local_address
            await bob.close()
            assert await wait_for(
                lambda: alice.liveness.is_quarantined(bob_address), timeout=5.0
            )
            # Broadcast while bob is down: skips him (quarantined).
            await alice.broadcast("during")

            bob2 = await create_node(
                "bob", bob_config.replace(port=bob_address[1])
            )
            bob2.add_peer(alice.local_address)
            assert await wait_for(
                lambda: not alice.liveness.is_quarantined(bob_address),
                timeout=5.0,
            ), "returning peer never resumed"
            assert alice.liveness.resumes >= 1
            # The heal: bob catches up on what he missed, exactly once.
            assert await wait_for(
                lambda: "during" in bob2.delivered_payloads(), timeout=10.0
            ), "anti-entropy never healed the quarantine gap"
            assert bob2.endpoint.stats.duplicates == 0
            await alice.close()
            await bob2.close()

        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as tmp:
            asyncio.run(scenario(Path(tmp)))


class TestQuarantineAging:
    """The eviction feeder: quarantine timestamps and the overdue query."""

    def make(self):
        return PeerLivenessMonitor(
            LivenessPolicy(heartbeat_interval=0.1, quarantine_after=1.0)
        )

    def test_quarantined_since_records_start_time(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        assert monitor.quarantined_since("a") is None
        monitor.sweep(now=2.0)
        assert monitor.quarantined_since("a") == 2.0

    def test_touch_clears_the_timestamp(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.sweep(now=2.0)
        monitor.touch("a", now=2.5)
        assert monitor.quarantined_since("a") is None

    def test_overdue_after_age(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.track("b", now=0.0)
        monitor.sweep(now=2.0)       # both quarantined at t=2
        monitor.touch("b", now=3.0)  # b revives
        assert monitor.overdue(now=4.0, age=5.0) == []
        assert monitor.overdue(now=8.0, age=5.0) == ["a"]

    def test_overdue_is_a_pure_query(self):
        monitor = self.make()
        monitor.track("a", now=0.0)
        monitor.sweep(now=2.0)
        assert monitor.overdue(now=10.0, age=1.0) == ["a"]
        # Asking again still reports it: the caller evicts and forgets.
        assert monitor.overdue(now=10.0, age=1.0) == ["a"]
        monitor.forget("a")
        assert monitor.overdue(now=10.0, age=1.0) == []
