"""Tests for the analysis toolkit: stats, tables, charts, sweeps."""

import dataclasses
import math

import pytest

from repro.analysis.stats import (
    Estimate,
    geometric_mean,
    mean_estimate,
    pooled_proportion,
    proportion_estimate,
    wilson_interval,
)
from repro.analysis.sweep import bench_scale, run_repeated, sweep_parameter
from repro.analysis.tables import ascii_chart, format_cell, render_series_table, render_table
from repro.core.errors import ConfigurationError
from repro.sim import PoissonWorkload, SimulationConfig


class TestMeanEstimate:
    def test_single_value_degenerate(self):
        estimate = mean_estimate([5.0])
        assert estimate.value == estimate.low == estimate.high == 5.0
        assert estimate.n == 1

    def test_interval_contains_mean(self):
        estimate = mean_estimate([1.0, 2.0, 3.0, 4.0])
        assert estimate.low < estimate.value < estimate.high
        assert estimate.value == pytest.approx(2.5)

    def test_tighter_with_more_data(self):
        narrow = mean_estimate([10.0, 10.1] * 50)
        wide = mean_estimate([10.0, 10.1])
        assert narrow.half_width < wide.half_width

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_estimate([])

    def test_str_format(self):
        assert "[" in str(mean_estimate([1.0, 2.0]))


class TestWilson:
    def test_bounds_within_unit_interval(self):
        low, high = wilson_interval(1, 10)
        assert 0.0 <= low <= 0.1 <= high <= 1.0

    def test_zero_successes_still_informative(self):
        low, high = wilson_interval(0, 1000)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0 < high < 0.01

    def test_no_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 3)

    def test_proportion_estimate(self):
        estimate = proportion_estimate(20, 100)
        assert estimate.value == pytest.approx(0.2)
        assert estimate.low < 0.2 < estimate.high

    def test_pooled_proportion(self):
        pooled = pooled_proportion([(1, 100), (3, 100), (2, 100)])
        assert pooled.value == pytest.approx(6 / 300)
        assert pooled.n == 300


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(3) == "3"
        assert format_cell(0.0) == "0"
        assert format_cell(1.23456e-5) == "1.235e-05"
        assert format_cell(123.456) == "123.5"
        assert format_cell("word") == "word"

    def test_render_table_alignment(self):
        text = render_table(["name", "x"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a"], [[1, 2]])

    def test_series_table_merges_x_axes(self):
        text = render_series_table(
            "k",
            {"measured": [(1, 0.5), (2, 0.25)], "theory": [(2, 0.3), (3, 0.1)]},
        )
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header + rule + 3 x values
        assert "-" in lines[2]  # missing point placeholder


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 2.0), (1, 1.0)]},
            width=40,
            height=8,
            title="demo",
        )
        assert "demo" in chart
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_log_scale_handles_zero(self):
        chart = ascii_chart({"s": [(0, 0.0), (1, 1e-3), (2, 1e-1)]}, log_y=True)
        assert "s" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"s": []})

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"s": [(0, 1)]}, width=4, height=2)


class TestSweep:
    def test_run_repeated_uses_distinct_seeds(self):
        config = SimulationConfig(
            n_nodes=8, r=16, k=2, duration_ms=4000.0, workload=PoissonWorkload(800.0)
        )
        results = run_repeated(config, repeats=3, seed_base=50)
        seeds = [r.config.seed for r in results]
        assert seeds == [50, 51, 52]

    def test_run_repeated_validation(self):
        config = SimulationConfig(n_nodes=4)
        with pytest.raises(ConfigurationError):
            run_repeated(config, repeats=0)

    def test_sweep_parameter_aggregates(self):
        base = SimulationConfig(
            n_nodes=8, r=16, k=2, duration_ms=4000.0, workload=PoissonWorkload(800.0)
        )
        progress = []
        points = sweep_parameter(
            base,
            values=[2, 3],
            make_config=lambda cfg, k: dataclasses.replace(cfg, k=k),
            repeats=2,
            on_point=progress.append,
        )
        assert [p.value for p in points] == [2, 3]
        assert len(progress) == 2
        for point in points:
            assert point.deliveries > 0
            assert 0.0 <= point.eps_min.value <= point.eps_max.value <= 1.0
            assert len(point.results) == 2
            assert len(point.row()) == len(point.ROW_HEADERS)

    def test_sweep_seeds_do_not_overlap_between_points(self):
        base = SimulationConfig(
            n_nodes=6, r=16, k=2, duration_ms=3000.0, workload=PoissonWorkload(800.0)
        )
        points = sweep_parameter(
            base,
            values=[2, 3],
            make_config=lambda cfg, k: dataclasses.replace(cfg, k=k),
            repeats=2,
            seed_base=100,
        )
        seeds = [r.config.seed for p in points for r in p.results]
        assert len(set(seeds)) == len(seeds)


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert bench_scale(default=2.5) == 2.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4")
        assert bench_scale() == 4.0

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert bench_scale() == 0.05

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "fast")
        with pytest.raises(ConfigurationError):
            bench_scale()
