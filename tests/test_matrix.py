"""Tests for the RST matrix-clock point-to-point causal ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.matrix import MatrixClockEndpoint
from repro.util.rng import RandomSource


def make_system(n):
    return [MatrixClockEndpoint(n, i) for i in range(n)]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatrixClockEndpoint(0, 0)
        with pytest.raises(ConfigurationError):
            MatrixClockEndpoint(3, 3)

    def test_send_validation(self):
        endpoint = MatrixClockEndpoint(3, 0)
        with pytest.raises(ConfigurationError):
            endpoint.send(3)
        with pytest.raises(ConfigurationError):
            endpoint.send(0)  # self

    def test_wrong_destination_rejected(self):
        a, b, c = make_system(3)
        message = a.send(1)
        with pytest.raises(ConfigurationError):
            c.on_receive(message)


class TestFifo:
    def test_in_order(self):
        a, b, _ = make_system(3)
        m1, m2 = a.send(1, "one"), a.send(1, "two")
        assert [m.payload for m in b.on_receive(m1)] == ["one"]
        assert [m.payload for m in b.on_receive(m2)] == ["two"]

    def test_reordered_pair_queued(self):
        a, b, _ = make_system(3)
        m1, m2 = a.send(1, "one"), a.send(1, "two")
        assert b.on_receive(m2) == []
        assert b.pending_count == 1
        delivered = b.on_receive(m1)
        assert [m.payload for m in delivered] == ["one", "two"]


class TestCausalTriangle:
    def test_relayed_message_waits_for_the_original(self):
        # a first sends the news to c directly, then tells b; b's relay to
        # c causally follows a's direct message (it is in b's received
        # matrix), so c must hold the relay until the slow direct copy
        # arrives.
        a, b, c = make_system(3)
        to_c = a.send(2, "news")
        to_b = a.send(1, "news")
        b.on_receive(to_b)
        relay = b.send(2, "re: news")
        # c gets the relay first: it must wait for a's direct message.
        assert c.on_receive(relay) == []
        delivered = c.on_receive(to_c)
        assert [m.payload for m in delivered] == ["news", "re: news"]

    def test_later_direct_message_is_concurrent_with_relay(self):
        # The subtle dual: if a sends to c *after* telling b, that direct
        # message is NOT in the relay's causal past (b never learned of
        # it), so c may deliver the relay first.
        a, b, c = make_system(3)
        to_b = a.send(1, "news")
        to_c = a.send(2, "ps: one more thing")
        b.on_receive(to_b)
        relay = b.send(2, "re: news")
        assert [m.payload for m in c.on_receive(relay)] == ["re: news"]
        assert [m.payload for m in c.on_receive(to_c)] == ["ps: one more thing"]

    def test_concurrent_messages_deliver_in_any_order(self):
        a, b, c = make_system(3)
        from_a = a.send(2, "from-a")
        from_b = b.send(2, "from-b")
        assert c.on_receive(from_b)
        assert c.on_receive(from_a)
        assert [m.payload for m in c.delivered] == ["from-b", "from-a"]


class TestOverhead:
    def test_quadratic_cost(self):
        small = MatrixClockEndpoint(10, 0)
        large = MatrixClockEndpoint(100, 0)
        assert large.overhead_bits() == 100 * small.overhead_bits()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(2, 5), steps=st.integers(1, 30))
def test_random_traffic_is_causally_ordered(seed, n, steps):
    """Random sends with random arrival order: every endpoint delivers
    everything addressed to it, respecting per-sender FIFO, and the
    matrix-clock condition leaves nothing stuck."""
    rng = RandomSource(seed=seed)
    endpoints = make_system(n)
    in_flight = {i: [] for i in range(n)}  # destination -> queued messages

    for _ in range(steps):
        action = rng.random()
        if action < 0.5:
            sender = rng.integer(0, n)
            destination = sender
            while destination == sender:
                destination = rng.integer(0, n)
            message = endpoints[sender].send(destination, None)
            in_flight[destination].append(message)
        else:
            destination = rng.integer(0, n)
            queue = in_flight[destination]
            if queue:
                index = rng.integer(0, len(queue))
                endpoints[destination].on_receive(queue.pop(index))

    # Drain everything still in flight, in random order.
    for destination, queue in in_flight.items():
        rng.shuffle(queue)
        for message in queue:
            endpoints[destination].on_receive(message)

    for index, endpoint in enumerate(endpoints):
        assert endpoint.pending_count == 0, f"stuck messages at {index}"
        # Per-sender FIFO at this destination.
        last_seq = {}
        for message in endpoint.delivered:
            previous = last_seq.get(message.sender, 0)
            assert message.seq == previous + 1
            last_seq[message.sender] = message.seq
