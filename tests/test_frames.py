"""Wire tests for the reliability frames (DATA/ACK/NACK/DIGEST/HEARTBEAT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import (
    AckFrame,
    CodecError,
    DataFrame,
    DigestFrame,
    FrameCodec,
    HeartbeatFrame,
    JoinAckFrame,
    JoinFrame,
    LeaveFrame,
    MemberRecord,
    MessageCodec,
    NackFrame,
    ViewFrame,
)
from repro.core.protocol import Message
from repro.core.clocks import ProbabilisticCausalClock

codec = FrameCodec()

seqs = st.integers(min_value=0, max_value=2**40)
ascending = st.lists(
    st.integers(min_value=1, max_value=2**20), min_size=0, max_size=16, unique=True
).map(sorted).map(tuple)


class TestRoundTrip:
    @given(seq=seqs, payload=st.binary(max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_data_frame(self, seq, payload):
        frame = DataFrame(seq=seq, payload=payload)
        assert codec.decode(codec.encode(frame)) == frame

    @given(cumulative=seqs, deltas=ascending)
    @settings(max_examples=200, deadline=None)
    def test_ack_frame(self, cumulative, deltas):
        sacks = tuple(cumulative + d for d in deltas)
        frame = AckFrame(cumulative=cumulative, sacks=sacks)
        assert codec.decode(codec.encode(frame)) == frame

    @given(first=st.integers(min_value=1, max_value=2**40), deltas=ascending)
    @settings(max_examples=200, deadline=None)
    def test_nack_frame(self, first, deltas):
        missing = (first,) + tuple(first + d for d in deltas)
        frame = NackFrame(missing=missing)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        frontiers=st.dictionaries(
            st.text(min_size=1, max_size=12),
            st.tuples(st.integers(min_value=0, max_value=2**30), ascending),
            max_size=8,
        ).map(
            lambda d: {
                sender: (contiguous, tuple(contiguous + delta for delta in extras))
                for sender, (contiguous, extras) in d.items()
            }
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_digest_frame(self, frontiers):
        frame = DigestFrame(frontiers=frontiers)
        assert codec.decode(codec.encode(frame)) == frame

    @given(count=st.integers(min_value=0, max_value=2**60))
    @settings(max_examples=200, deadline=None)
    def test_heartbeat_frame(self, count):
        frame = HeartbeatFrame(count=count)
        assert codec.decode(codec.encode(frame)) == frame


class TestDispatch:
    def test_frames_and_messages_are_distinguishable(self):
        """Frame magic differs from message magic at the first bytes."""
        message_codec = MessageCodec()
        clock = ProbabilisticCausalClock(16, (0, 3))
        message = Message(
            sender="p", seq=1, timestamp=clock.prepare_send(), payload="x"
        )
        message_bytes = message_codec.encode(message)
        frame_bytes = codec.encode(DataFrame(seq=1, payload=message_bytes))
        assert FrameCodec.is_frame(frame_bytes)
        assert not FrameCodec.is_frame(message_bytes)
        # And a DATA frame's payload round-trips the inner message.
        inner = codec.decode(frame_bytes).payload
        assert message_codec.decode(inner).payload == "x"

    def test_empty_and_short_data_not_frames(self):
        assert not FrameCodec.is_frame(b"")
        assert not FrameCodec.is_frame(b"PF")


class TestMalformed:
    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            codec.decode(b"XX\x01\x01")

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            codec.decode(b"PF\x01\x63" + b"\x00" * 16)

    def test_unknown_version_rejected(self):
        data = bytearray(codec.encode(DataFrame(seq=1, payload=b"x")))
        data[2] = 99
        with pytest.raises(CodecError):
            codec.decode(bytes(data))

    def test_truncated_data_rejected(self):
        data = codec.encode(DataFrame(seq=1, payload=b"hello"))
        with pytest.raises(CodecError):
            codec.decode(data[:-3])

    def test_truncated_digest_rejected(self):
        data = codec.encode(DigestFrame({"alice": (5, (7, 9))}))
        with pytest.raises(CodecError):
            codec.decode(data[:-1])

    def test_empty_nack_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(NackFrame(missing=()))

    def test_non_ascending_sack_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(AckFrame(cumulative=10, sacks=(5,)))

    def test_negative_heartbeat_count_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(HeartbeatFrame(count=-1))

    def test_truncated_heartbeat_rejected(self):
        data = codec.encode(HeartbeatFrame(count=7))
        with pytest.raises(CodecError):
            codec.decode(data[:-2])


# ----------------------------------------------------------------------
# membership frames (VIEW / JOIN / JOIN_ACK / LEAVE)
# ----------------------------------------------------------------------

addresses = st.tuples(
    st.text(min_size=1, max_size=20), st.integers(min_value=0, max_value=65535)
)
key_sets = st.lists(
    st.integers(min_value=0, max_value=255), min_size=0, max_size=8, unique=True
).map(sorted).map(tuple)
members = st.lists(
    st.tuples(st.text(min_size=1, max_size=12), addresses, key_sets),
    max_size=6,
    unique_by=lambda m: m[0],
).map(lambda ms: tuple(MemberRecord(n, a, k) for n, a, k in ms))


class TestMembershipRoundTrip:
    @given(view_id=seqs, records=members)
    @settings(max_examples=150, deadline=None)
    def test_view_frame(self, view_id, records):
        frame = ViewFrame(view_id=view_id, members=records)
        assert codec.decode(codec.encode(frame)) == frame

    @given(node_id=st.text(min_size=1, max_size=20), address=addresses,
           keys=key_sets)
    @settings(max_examples=150, deadline=None)
    def test_join_frame(self, node_id, address, keys):
        frame = JoinFrame(node_id=node_id, address=address, keys=keys)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        accepted=st.booleans(),
        view_id=seqs,
        keys=key_sets,
        records=members,
        frontiers=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.tuples(seqs, ascending),
            max_size=4,
        ).map(
            lambda d: {
                sender: (contiguous, tuple(contiguous + delta for delta in extras))
                for sender, (contiguous, extras) in d.items()
            }
        ),
        vector=st.lists(
            st.integers(min_value=0, max_value=2**30), max_size=32
        ).map(tuple),
        reason=st.text(max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_join_ack_frame(
        self, accepted, view_id, keys, records, frontiers, vector, reason
    ):
        frame = JoinAckFrame(
            accepted=accepted, view_id=view_id, r=256, k=len(keys) or 1,
            keys=keys, members=records, frontiers=frontiers,
            vector=vector, reason=reason,
        )
        assert codec.decode(codec.encode(frame)) == frame

    @given(node_id=st.text(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_leave_frame(self, node_id):
        frame = LeaveFrame(node_id=node_id)
        assert codec.decode(codec.encode(frame)) == frame

    def test_list_address_decodes_as_tuple(self):
        # JSON has no tuples; decoding canonicalises to tuples so
        # addresses stay usable as dict keys / transport targets.
        frame = JoinFrame(node_id="n", address=["10.0.0.1", 9000], keys=())
        decoded = codec.decode(codec.encode(frame))
        assert decoded.address == ("10.0.0.1", 9000)


class TestMembershipMalformed:
    def test_truncated_view_rejected(self):
        frame = ViewFrame(
            view_id=3,
            members=(MemberRecord("a", ("h", 1), (0, 1)),),
        )
        with pytest.raises(CodecError):
            codec.decode(codec.encode(frame)[:-2])

    def test_truncated_join_ack_rejected(self):
        frame = JoinAckFrame(
            accepted=True, view_id=1, r=16, k=2, keys=(0, 1),
            members=(), frontiers={"a": (3, ())}, vector=(0,) * 16,
        )
        with pytest.raises(CodecError):
            codec.decode(codec.encode(frame)[:-1])

    def test_unencodable_address_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(JoinFrame(node_id="n", address=object(), keys=()))
