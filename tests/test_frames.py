"""Wire tests for the reliability frames (DATA/ACK/NACK/DIGEST/HEARTBEAT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import (
    AckFrame,
    CodecError,
    DataFrame,
    DigestFrame,
    FrameCodec,
    HeartbeatFrame,
    MessageCodec,
    NackFrame,
)
from repro.core.protocol import Message
from repro.core.clocks import ProbabilisticCausalClock

codec = FrameCodec()

seqs = st.integers(min_value=0, max_value=2**40)
ascending = st.lists(
    st.integers(min_value=1, max_value=2**20), min_size=0, max_size=16, unique=True
).map(sorted).map(tuple)


class TestRoundTrip:
    @given(seq=seqs, payload=st.binary(max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_data_frame(self, seq, payload):
        frame = DataFrame(seq=seq, payload=payload)
        assert codec.decode(codec.encode(frame)) == frame

    @given(cumulative=seqs, deltas=ascending)
    @settings(max_examples=200, deadline=None)
    def test_ack_frame(self, cumulative, deltas):
        sacks = tuple(cumulative + d for d in deltas)
        frame = AckFrame(cumulative=cumulative, sacks=sacks)
        assert codec.decode(codec.encode(frame)) == frame

    @given(first=st.integers(min_value=1, max_value=2**40), deltas=ascending)
    @settings(max_examples=200, deadline=None)
    def test_nack_frame(self, first, deltas):
        missing = (first,) + tuple(first + d for d in deltas)
        frame = NackFrame(missing=missing)
        assert codec.decode(codec.encode(frame)) == frame

    @given(
        frontiers=st.dictionaries(
            st.text(min_size=1, max_size=12),
            st.tuples(st.integers(min_value=0, max_value=2**30), ascending),
            max_size=8,
        ).map(
            lambda d: {
                sender: (contiguous, tuple(contiguous + delta for delta in extras))
                for sender, (contiguous, extras) in d.items()
            }
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_digest_frame(self, frontiers):
        frame = DigestFrame(frontiers=frontiers)
        assert codec.decode(codec.encode(frame)) == frame

    @given(count=st.integers(min_value=0, max_value=2**60))
    @settings(max_examples=200, deadline=None)
    def test_heartbeat_frame(self, count):
        frame = HeartbeatFrame(count=count)
        assert codec.decode(codec.encode(frame)) == frame


class TestDispatch:
    def test_frames_and_messages_are_distinguishable(self):
        """Frame magic differs from message magic at the first bytes."""
        message_codec = MessageCodec()
        clock = ProbabilisticCausalClock(16, (0, 3))
        message = Message(
            sender="p", seq=1, timestamp=clock.prepare_send(), payload="x"
        )
        message_bytes = message_codec.encode(message)
        frame_bytes = codec.encode(DataFrame(seq=1, payload=message_bytes))
        assert FrameCodec.is_frame(frame_bytes)
        assert not FrameCodec.is_frame(message_bytes)
        # And a DATA frame's payload round-trips the inner message.
        inner = codec.decode(frame_bytes).payload
        assert message_codec.decode(inner).payload == "x"

    def test_empty_and_short_data_not_frames(self):
        assert not FrameCodec.is_frame(b"")
        assert not FrameCodec.is_frame(b"PF")


class TestMalformed:
    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            codec.decode(b"XX\x01\x01")

    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError):
            codec.decode(b"PF\x01\x63" + b"\x00" * 16)

    def test_unknown_version_rejected(self):
        data = bytearray(codec.encode(DataFrame(seq=1, payload=b"x")))
        data[2] = 99
        with pytest.raises(CodecError):
            codec.decode(bytes(data))

    def test_truncated_data_rejected(self):
        data = codec.encode(DataFrame(seq=1, payload=b"hello"))
        with pytest.raises(CodecError):
            codec.decode(data[:-3])

    def test_truncated_digest_rejected(self):
        data = codec.encode(DigestFrame({"alice": (5, (7, 9))}))
        with pytest.raises(CodecError):
            codec.decode(data[:-1])

    def test_empty_nack_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(NackFrame(missing=()))

    def test_non_ascending_sack_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(AckFrame(cumulative=10, sacks=(5,)))

    def test_negative_heartbeat_count_rejected(self):
        with pytest.raises(CodecError):
            codec.encode(HeartbeatFrame(count=-1))

    def test_truncated_heartbeat_rejected(self):
        data = codec.encode(HeartbeatFrame(count=7))
        with pytest.raises(CodecError):
            codec.decode(data[:-2])
