"""Tests for workload generators."""

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.sim.workload import (
    BurstyWorkload,
    HotspotWorkload,
    PoissonWorkload,
    ReplayWorkload,
    UniformJitterWorkload,
)
from repro.util.rng import RandomSource


class TestPoissonWorkload:
    def test_mean_interval(self):
        workload = PoissonWorkload(5000.0)
        assert workload.mean_interval() == 5000.0
        rng = RandomSource(seed=1)
        draws = [workload.next_interval(rng, 0) for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(5000, rel=0.05)
        assert all(d > 0 for d in draws)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonWorkload(0)


class TestUniformJitterWorkload:
    def test_bounds(self):
        workload = UniformJitterWorkload(1000, jitter_ms=100)
        rng = RandomSource(seed=2)
        draws = [workload.next_interval(rng, 0) for _ in range(1000)]
        assert all(900 <= d <= 1100 for d in draws)
        assert workload.mean_interval() == 1000

    def test_no_jitter_is_periodic(self):
        workload = UniformJitterWorkload(500)
        rng = RandomSource(seed=2)
        assert workload.next_interval(rng, 0) == 500

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformJitterWorkload(0)
        with pytest.raises(ConfigurationError):
            UniformJitterWorkload(100, jitter_ms=100)


class TestBurstyWorkload:
    def test_burst_pattern(self):
        workload = BurstyWorkload(burst_size=3, intra_gap_ms=10, pause_ms=1000)
        rng = RandomSource(seed=3)
        gaps = [workload.next_interval(rng, "node") for _ in range(9)]
        # Positions 0,1 inside the burst; 2 is the pause; repeats.
        assert gaps[0] == 10 and gaps[1] == 10
        assert gaps[2] > 10
        assert gaps[3] == 10 and gaps[4] == 10
        assert gaps[5] > 10

    def test_per_node_independent_positions(self):
        workload = BurstyWorkload(burst_size=2, intra_gap_ms=10, pause_ms=1000)
        rng = RandomSource(seed=3)
        assert workload.next_interval(rng, "a") == 10
        assert workload.next_interval(rng, "b") == 10  # b's own burst
        assert workload.next_interval(rng, "a") > 10  # a's pause

    def test_mean_interval(self):
        workload = BurstyWorkload(burst_size=4, intra_gap_ms=10, pause_ms=970)
        assert workload.mean_interval() == pytest.approx((3 * 10 + 970) / 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyWorkload(0, 10, 1000)
        with pytest.raises(ConfigurationError):
            BurstyWorkload(2, 0, 1000)


class TestHotspotWorkload:
    def test_hot_nodes_send_faster(self):
        workload = HotspotWorkload(1000, hot_fraction=0.5, hot_factor=20)
        rng = RandomSource(seed=4)
        hot = [n for n in range(200) if workload.is_hot(n)]
        cold = [n for n in range(200) if not workload.is_hot(n)]
        assert hot and cold

        def mean_for(node):
            return sum(workload.next_interval(rng, node) for _ in range(500)) / 500

        assert mean_for(hot[0]) < mean_for(cold[0]) / 5

    def test_heat_is_stable(self):
        workload = HotspotWorkload(1000, hot_fraction=0.3)
        flags = [workload.is_hot(n) for n in range(50)]
        assert flags == [workload.is_hot(n) for n in range(50)]

    def test_mean_interval_harmonic(self):
        workload = HotspotWorkload(1000, hot_fraction=0.0, hot_factor=10)
        assert workload.mean_interval() == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotWorkload(0)
        with pytest.raises(ConfigurationError):
            HotspotWorkload(100, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotspotWorkload(100, hot_factor=0.5)


class TestReplayWorkload:
    def test_replays_trace_then_falls_silent(self):
        workload = ReplayWorkload({"a": [10, 20, 30]})
        rng = RandomSource(seed=5)
        assert workload.next_interval(rng, "a") == 10
        assert workload.next_interval(rng, "a") == 20
        assert workload.next_interval(rng, "a") == 30
        assert math.isinf(workload.next_interval(rng, "a"))

    def test_unknown_node_is_silent(self):
        workload = ReplayWorkload({"a": [10]})
        rng = RandomSource(seed=5)
        assert math.isinf(workload.next_interval(rng, "b"))

    def test_mean_interval(self):
        workload = ReplayWorkload({"a": [10, 30], "b": [20]})
        assert workload.mean_interval() == pytest.approx(20)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayWorkload({})
        with pytest.raises(ConfigurationError):
            ReplayWorkload({"a": [0]})
