"""Tests for the (n, r, k) clock family (Algorithms 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import (
    DynamicVectorClock,
    EntryVectorClock,
    LamportCausalClock,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    Timestamp,
    VectorCausalClock,
)
from repro.core.errors import ConfigurationError, UnknownProcessError


def make_timestamp(vector, keys, seq=1):
    return Timestamp(
        vector=np.asarray(vector, dtype=np.int64), sender_keys=tuple(keys), seq=seq
    )


class TestTimestamp:
    def test_adjusted_subtracts_one_at_sender_keys(self):
        ts = make_timestamp([2, 3, 1, 0], (0, 1))
        assert list(ts.adjusted) == [1, 2, 1, 0]

    def test_as_tuple(self):
        ts = make_timestamp([1, 0], (0,))
        assert ts.as_tuple() == (1, 0)

    def test_vector_is_read_only_after_prepare_send(self):
        clock = EntryVectorClock(4, (0, 1))
        ts = clock.prepare_send()
        with pytest.raises(ValueError):
            ts.vector[0] = 99

    def test_overhead_bits(self):
        ts = make_timestamp([1] * 100, (0, 1, 2, 3))
        # 100 entries * 32 bits + 4 keys * 7 bits (log2 99 -> 7)
        assert ts.overhead_bits() == 100 * 32 + 4 * 7

    def test_overhead_bits_scalar_clock(self):
        ts = make_timestamp([5], (0,))
        assert ts.overhead_bits() == 32

    def test_dominates_on(self):
        big = make_timestamp([3, 3, 0], (0,))
        small = make_timestamp([2, 3, 5], (0,))
        assert big.dominates_on(small, [0, 1])
        assert not big.dominates_on(small, [2])


class TestEntryVectorClockConstruction:
    def test_validates_keys(self):
        with pytest.raises(ConfigurationError):
            EntryVectorClock(4, ())
        with pytest.raises(ConfigurationError):
            EntryVectorClock(4, (4,))
        with pytest.raises(ConfigurationError):
            EntryVectorClock(4, (-1,))
        with pytest.raises(ConfigurationError):
            EntryVectorClock(4, (1, 1))
        with pytest.raises(ConfigurationError):
            EntryVectorClock(0, (0,))

    def test_keys_sorted_and_exposed(self):
        clock = EntryVectorClock(6, (5, 2))
        assert clock.own_keys == (2, 5)
        assert clock.r == 6 and clock.k == 2


class TestAlgorithmOne:
    def test_send_increments_own_entries_only(self):
        clock = EntryVectorClock(4, (0, 1))
        ts = clock.prepare_send()
        assert clock.snapshot() == (1, 1, 0, 0)
        assert ts.as_tuple() == (1, 1, 0, 0)
        assert ts.seq == 1

    def test_consecutive_sends(self):
        clock = EntryVectorClock(4, (1, 3))
        clock.prepare_send()
        ts = clock.prepare_send()
        assert ts.as_tuple() == (0, 2, 0, 2)
        assert ts.seq == 2
        assert clock.send_count == 2

    def test_timestamp_is_a_frozen_copy(self):
        clock = EntryVectorClock(3, (0,))
        ts = clock.prepare_send()
        clock.prepare_send()
        assert ts.as_tuple() == (1, 0, 0)  # unaffected by later sends


class TestAlgorithmTwo:
    def test_first_message_always_deliverable(self):
        sender = EntryVectorClock(4, (0, 1))
        receiver = EntryVectorClock(4, (2, 3))
        ts = sender.prepare_send()
        assert receiver.is_deliverable(ts)

    def test_gap_on_sender_entries_blocks(self):
        sender = EntryVectorClock(4, (0, 1))
        receiver = EntryVectorClock(4, (2, 3))
        sender.prepare_send()  # m1, never received
        ts2 = sender.prepare_send()
        assert not receiver.is_deliverable(ts2)

    def test_gap_on_foreign_entries_blocks(self):
        other = EntryVectorClock(4, (0, 1))
        sender = EntryVectorClock(4, (1, 2))
        receiver = EntryVectorClock(4, (3,))
        m1 = other.prepare_send()
        sender.record_delivery(m1)  # sender saw m1
        m2 = sender.prepare_send()
        # receiver has not seen m1: entry 0 lags.
        assert not receiver.is_deliverable(m2)
        receiver.record_delivery(m1)
        assert receiver.is_deliverable(m2)

    def test_record_delivery_increments_sender_keys(self):
        sender = EntryVectorClock(4, (0, 1))
        receiver = EntryVectorClock(4, (2, 3))
        ts = sender.prepare_send()
        receiver.record_delivery(ts)
        assert receiver.snapshot() == (1, 1, 0, 0)

    def test_lag_measures_total_deficit(self):
        sender = EntryVectorClock(4, (0, 1))
        receiver = EntryVectorClock(4, (2, 3))
        sender.prepare_send()
        sender.prepare_send()
        ts3 = sender.prepare_send()
        # adjusted = [2, 2, 0, 0]; receiver at zeros -> deficit 4.
        assert receiver.lag(ts3) == 4
        assert receiver.lag(sender.prepare_send()) > 0

    def test_size_mismatch_rejected(self):
        clock = EntryVectorClock(4, (0,))
        ts = make_timestamp([1, 0, 0], (0,))
        with pytest.raises(ConfigurationError):
            clock.is_deliverable(ts)
        with pytest.raises(ConfigurationError):
            clock.record_delivery(ts)


class TestInitializeFrom:
    def test_seeds_vector(self):
        clock = EntryVectorClock(4, (0,))
        clock.initialize_from([3, 1, 4, 1])
        assert clock.snapshot() == (3, 1, 4, 1)

    def test_rejects_after_activity(self):
        clock = EntryVectorClock(4, (0,))
        clock.prepare_send()
        with pytest.raises(ConfigurationError):
            clock.initialize_from([0, 0, 0, 0])

    def test_rejects_bad_shape_and_negative(self):
        clock = EntryVectorClock(4, (0,))
        with pytest.raises(ConfigurationError):
            clock.initialize_from([0, 0, 0])
        with pytest.raises(ConfigurationError):
            clock.initialize_from([0, -1, 0, 0])


class TestFamilyMembers:
    def test_probabilistic_is_entry_clock(self):
        clock = ProbabilisticCausalClock(10, (2, 5, 7))
        assert isinstance(clock, EntryVectorClock)
        assert clock.k == 3

    def test_plausible_single_entry(self):
        clock = PlausibleCausalClock(10, 7)
        assert clock.own_keys == (7,)
        assert clock.k == 1

    def test_lamport_single_shared_entry(self):
        clock = LamportCausalClock()
        assert clock.r == 1 and clock.own_keys == (0,)
        ts = clock.prepare_send()
        assert ts.as_tuple() == (1,)

    def test_lamport_delivery_synchronisation(self):
        a, b = LamportCausalClock(), LamportCausalClock()
        a.prepare_send()
        ts2 = a.prepare_send()  # scalar 2
        # b at 0: needs counter >= 1 before delivering ts2.
        assert not b.is_deliverable(ts2)
        b.prepare_send()  # b's own send raises its counter
        assert b.is_deliverable(ts2)

    def test_vector_clock_exactness(self):
        # Three processes, exact entries: classical causal delivery.
        a = VectorCausalClock(3, 0)
        b = VectorCausalClock(3, 1)
        c = VectorCausalClock(3, 2)
        m1 = a.prepare_send()
        b.record_delivery(m1)
        m2 = b.prepare_send()
        assert not c.is_deliverable(m2)  # m1 missing
        c.record_delivery(m1)
        assert c.is_deliverable(m2)

    def test_vector_clock_index_validation(self):
        with pytest.raises(ConfigurationError):
            VectorCausalClock(3, 3)


class TestDynamicVectorClock:
    def test_send_and_deliver(self):
        a = DynamicVectorClock("a")
        b = DynamicVectorClock("b")
        ts = a.prepare_send()
        assert b.is_deliverable(ts, "a")
        b.record_delivery(ts, "a")
        assert b.snapshot()["a"] == 1

    def test_unknown_processes_grow_the_map(self):
        a = DynamicVectorClock("a")
        b = DynamicVectorClock("b")
        b.record_delivery(a.prepare_send(), "a")
        ts = b.prepare_send()
        c = DynamicVectorClock("c")
        assert not c.is_deliverable(ts, "b")  # a's message missing

    def test_sender_not_in_timestamp_rejected(self):
        c = DynamicVectorClock("c")
        with pytest.raises(UnknownProcessError):
            c.is_deliverable({"a": 1}, "b")

    def test_merge(self):
        clock = DynamicVectorClock("a")
        clock.merge({"a": 0, "b": 5})
        clock.merge({"b": 3, "c": 1})
        assert clock.snapshot() == {"a": 0, "b": 5, "c": 1}


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    r=st.integers(2, 16),
    sends=st.integers(1, 10),
    data=st.data(),
)
def test_fifo_never_blocked_after_predecessor(r, sends, data):
    """Consecutive messages of one sender: delivering message i makes
    message i+1 deliverable (the paper's 'causally ready is never delayed'
    for the single-sender case)."""
    k = data.draw(st.integers(1, r))
    keys = tuple(sorted(data.draw(
        st.sets(st.integers(0, r - 1), min_size=k, max_size=k)
    )))
    sender = EntryVectorClock(r, keys)
    receiver_keys = tuple(sorted(data.draw(
        st.sets(st.integers(0, r - 1), min_size=1, max_size=r)
    )))
    receiver = EntryVectorClock(r, receiver_keys)
    messages = [sender.prepare_send() for _ in range(sends)]
    for ts in messages:
        assert receiver.is_deliverable(ts)
        receiver.record_delivery(ts)


@settings(max_examples=100, deadline=None)
@given(r=st.integers(2, 12), steps=st.integers(1, 30), data=st.data())
def test_local_vector_is_monotone(r, steps, data):
    """No operation ever decreases any entry of the local vector."""
    clock = EntryVectorClock(r, (0,))
    previous = np.asarray(clock.snapshot())
    peers = [EntryVectorClock(r, (data.draw(st.integers(0, r - 1)),)) for _ in range(3)]
    for _ in range(steps):
        action = data.draw(st.integers(0, 1))
        if action == 0:
            clock.prepare_send()
        else:
            peer = peers[data.draw(st.integers(0, 2))]
            clock.record_delivery(peer.prepare_send())
        current = np.asarray(clock.snapshot())
        assert (current >= previous).all()
        previous = current


class TestRekey:
    def test_rekey_changes_future_timestamps_only(self):
        clock = EntryVectorClock(8, (0, 1))
        before = clock.prepare_send()
        previous = clock.rekey((3, 4, 5))
        assert previous == (0, 1)
        assert clock.own_keys == (3, 4, 5)
        after = clock.prepare_send()
        assert before.sender_keys == (0, 1)
        assert after.sender_keys == (3, 4, 5)
        # The vector keeps the old increments and adds the new ones.
        assert after.as_tuple() == (1, 1, 0, 1, 1, 1, 0, 0)

    def test_rekey_validation(self):
        clock = EntryVectorClock(4, (0,))
        with pytest.raises(ConfigurationError):
            clock.rekey(())
        with pytest.raises(ConfigurationError):
            clock.rekey((1, 1))
        with pytest.raises(ConfigurationError):
            clock.rekey((4,))

    def test_messages_across_a_rekey_stay_causally_ordered(self):
        """A receiver holds back the post-switch message until the
        pre-switch one is delivered: condition 2 (non-sender entries)
        covers the old keys' increments."""
        sender = EntryVectorClock(8, (0, 1))
        receiver = EntryVectorClock(8, (6, 7))
        m1 = sender.prepare_send()
        sender.rekey((3, 4))
        m2 = sender.prepare_send()
        # m2's vector still carries m1's increments on the old keys.
        assert not receiver.is_deliverable(m2)
        receiver.record_delivery(m1)
        assert receiver.is_deliverable(m2)
        receiver.record_delivery(m2)
