"""Tests for the watermark + sparse-tail duplicate filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import ProbabilisticCausalClock
from repro.core.errors import ConfigurationError
from repro.core.pending import SeenFilter
from repro.core.protocol import CausalBroadcastEndpoint


class TestBasics:
    def test_empty(self):
        f = SeenFilter()
        assert ("a", 1) not in f
        assert len(f) == 0
        assert f.sender_count == 0
        assert f.tail_size == 0
        assert f.watermark("a") == 0

    def test_in_order_adds_advance_watermark_only(self):
        f = SeenFilter()
        for seq in range(1, 6):
            assert f.add(("a", seq))
        assert f.watermark("a") == 5
        assert f.tail_size == 0
        assert len(f) == 5
        assert all(("a", seq) in f for seq in range(1, 6))
        assert ("a", 6) not in f

    def test_duplicate_below_watermark_rejected(self):
        f = SeenFilter()
        f.add(("a", 1))
        f.add(("a", 2))
        assert not f.add(("a", 1))
        assert not f.add(("a", 2))
        assert len(f) == 2

    def test_gap_goes_to_tail(self):
        f = SeenFilter()
        f.add(("a", 1))
        assert f.add(("a", 3))
        assert f.watermark("a") == 1
        assert f.tail_size == 1
        assert ("a", 3) in f
        assert ("a", 2) not in f
        assert not f.add(("a", 3))  # tail duplicate

    def test_gap_fill_merges_tail_into_watermark(self):
        f = SeenFilter()
        for seq in (1, 3, 4, 6):
            f.add(("a", seq))
        assert f.watermark("a") == 1 and f.tail_size == 3
        f.add(("a", 2))  # fills the gap: 2,3,4 collapse; 6 stays sparse
        assert f.watermark("a") == 4
        assert f.tail_size == 1
        f.add(("a", 5))
        assert f.watermark("a") == 6
        assert f.tail_size == 0

    def test_senders_independent(self):
        f = SeenFilter()
        f.add(("a", 1))
        f.add(("b", 5))
        assert f.watermark("a") == 1
        assert f.watermark("b") == 0
        assert f.sender_count == 2
        assert ("b", 1) not in f

    def test_nonpositive_seq_rejected(self):
        f = SeenFilter()
        with pytest.raises(ConfigurationError):
            f.add(("a", 0))


class TestFrontiers:
    def test_frontier_shape(self):
        f = SeenFilter()
        for seq in (1, 2, 5, 7):
            f.add(("a", seq))
        f.add(("b", 1))
        assert f.frontiers() == {"a": (2, (5, 7)), "b": (1, ())}

    def test_restore_round_trip(self):
        f = SeenFilter()
        for sender, seq in [("a", 1), ("a", 2), ("a", 9), ("b", 4)]:
            f.add((sender, seq))
        g = SeenFilter()
        g.restore(f.frontiers())
        assert g.frontiers() == f.frontiers()
        assert len(g) == len(f)
        # coverage behaves identically after restore
        assert not g.add(("a", 2))
        assert not g.add(("a", 9))
        assert g.add(("a", 3))

    def test_restore_requires_empty_filter(self):
        f = SeenFilter()
        f.add(("a", 1))
        with pytest.raises(ConfigurationError):
            f.restore({"a": (1, ())})

    def test_restore_rejects_tail_overlapping_watermark(self):
        f = SeenFilter()
        with pytest.raises(ConfigurationError):
            f.restore({"a": (3, (2,))})

    def test_restore_rejects_negative_watermark(self):
        f = SeenFilter()
        with pytest.raises(ConfigurationError):
            f.restore({"a": (-1, ())})


@settings(max_examples=200, deadline=None)
@given(
    seqs=st.lists(
        st.tuples(st.sampled_from("abc"), st.integers(1, 40)),
        min_size=0,
        max_size=120,
    )
)
def test_matches_reference_set(seqs):
    """The filter is observationally a set of (sender, seq) ids."""
    f = SeenFilter()
    reference = set()
    for message_id in seqs:
        assert f.add(message_id) == (message_id not in reference)
        reference.add(message_id)
        assert message_id in f
    assert len(f) == len(reference)
    # every id the reference holds is covered; neighbours outside it are not
    for message_id in reference:
        assert message_id in f
    for sender in "abc":
        for seq in range(1, 42):
            assert ((sender, seq) in f) == ((sender, seq) in reference)
    # round-trip through the frontier representation preserves coverage
    g = SeenFilter()
    g.restore(f.frontiers())
    assert g.frontiers() == f.frontiers()


class TestEndpointIntegration:
    def test_endpoint_restore_seen_skips_recovered_range(self):
        a = CausalBroadcastEndpoint("a", ProbabilisticCausalClock(6, (0, 1)))
        b = CausalBroadcastEndpoint("b", ProbabilisticCausalClock(6, (2, 3)))
        messages = [a.broadcast(i) for i in range(3)]
        for message in messages:
            b.on_receive(message)
        frontiers = b.seen_frontiers()
        assert frontiers["a"][0] == 3

        fresh = CausalBroadcastEndpoint("b2", ProbabilisticCausalClock(6, (2, 3)))
        fresh.restore_seen(frontiers)
        # recovered ids are duplicates now, without any mark_seen replay
        assert fresh.on_receive(messages[0]) == []
        assert fresh.stats.duplicates == 1

    def test_endpoint_restore_seen_after_traffic_rejected(self):
        a = CausalBroadcastEndpoint("a", ProbabilisticCausalClock(6, (0, 1)))
        b = CausalBroadcastEndpoint("b", ProbabilisticCausalClock(6, (2, 3)))
        b.on_receive(a.broadcast())
        with pytest.raises(ConfigurationError):
            b.restore_seen({"x": (4, ())})
