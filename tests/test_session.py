"""Tests for the reliable session layer (acks, retransmit, backpressure)."""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.net import LocalAsyncBus, ReliableSession, RetransmitPolicy
from repro.net.peer import Transport
from repro.sim.network import ConstantDelayModel
from repro.util.rng import RandomSource


def fast_policy(**overrides):
    defaults = dict(
        initial_timeout=0.02,
        max_timeout=0.2,
        max_retries=20,
        tick_interval=0.005,
        nack_interval=0.01,
    )
    defaults.update(overrides)
    return RetransmitPolicy(**defaults)


def make_pair(bus, policy=None):
    """Two sessions on one bus; returns (sessions, inboxes) keyed a/b."""
    sessions, inboxes = {}, {}
    for name in ("a", "b"):
        inbox = []
        sessions[name] = ReliableSession(
            bus.attach(name),
            on_message=lambda data, addr, inbox=inbox: inbox.append((data, addr)),
            policy=policy or fast_policy(),
        )
        inboxes[name] = inbox
    return sessions, inboxes


async def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError("condition not reached in time")


class BlackholeTransport(Transport):
    """Swallows every datagram; nothing is ever received."""

    def __init__(self):
        self.sent = 0

    async def send(self, destination, data):
        self.sent += 1

    def set_receiver(self, callback):
        pass

    async def close(self):
        pass


class TestDelivery:
    def test_payload_delivered_with_sender_address(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, inboxes = make_pair(bus)
            for session in sessions.values():
                session.start()
            await sessions["a"].send("b", b"ping")
            await wait_for(lambda: inboxes["b"])
            assert inboxes["b"] == [(b"ping", "a")]
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_ack_clears_send_buffer_and_sets_rtt(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, _ = make_pair(bus)
            for session in sessions.values():
                session.start()
            await sessions["a"].send("b", b"one")
            await sessions["a"].send("b", b"two")
            await wait_for(lambda: sessions["a"].unacked_count("b") == 0)
            stats = sessions["a"].stats_for("b")
            assert stats.acks_received >= 1
            assert stats.retransmits == 0
            assert stats.rtt is not None and stats.rtt > 0
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_duplicate_datagrams_delivered_once(self):
        async def scenario():
            bus = LocalAsyncBus(
                delay_model=ConstantDelayModel(1.0),
                rng=RandomSource(seed=4).spawn("net"),
                duplicate_rate=0.9,
            )
            sessions, inboxes = make_pair(bus)
            for session in sessions.values():
                session.start()
            for i in range(10):
                await sessions["a"].send("b", bytes([i]))
            await wait_for(lambda: len(inboxes["b"]) == 10)
            await bus.drain()
            assert len(inboxes["b"]) == 10
            assert sessions["b"].stats_for("a").duplicates > 0
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_raw_datagrams_pass_through_unframed(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, inboxes = make_pair(bus)
            raw = bus.attach("legacy")
            await raw.send("b", b"bare bytes")
            await bus.drain()
            assert inboxes["b"] == [(b"bare bytes", "legacy")]
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_garbage_frame_counted_not_fatal(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, inboxes = make_pair(bus)
            raw = bus.attach("evil")
            await raw.send("b", b"PF\x01\x01trunc")
            await bus.drain()
            assert sessions["b"].frame_errors == 1
            assert inboxes["b"] == []
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())


class TestRetransmission:
    def test_lost_datagrams_recovered_by_retransmit(self):
        async def scenario():
            bus = LocalAsyncBus(
                delay_model=ConstantDelayModel(1.0),
                rng=RandomSource(seed=8).spawn("net"),
                loss_rate=0.4,
            )
            sessions, inboxes = make_pair(bus)
            for session in sessions.values():
                session.start()
            for i in range(25):
                await sessions["a"].send("b", bytes([i]))
            await wait_for(lambda: len(inboxes["b"]) == 25, timeout=10.0)
            payloads = sorted(data for data, _ in inboxes["b"])
            assert payloads == [bytes([i]) for i in range(25)]
            assert sessions["a"].stats_for("b").retransmits > 0
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_gap_triggers_nack(self):
        async def scenario():
            # Drop-once bus: lose exactly the second datagram's first copy.
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, inboxes = make_pair(bus)
            for session in sessions.values():
                session.start()
            await sessions["a"].send("b", b"first")
            await wait_for(lambda: len(inboxes["b"]) == 1)
            # Simulate the loss: bump a's seq by crafting a gap — send
            # seq 2 into the void, then seq 3 for real.
            state = sessions["a"]._peer("b")
            state.next_seq += 1  # b will see 1 then 3: a gap at 2
            await sessions["a"].send("b", b"third")
            await wait_for(lambda: sessions["b"].stats_for("a").nacks_sent >= 1)
            assert 2 in [s for s in sessions["b"]._peer("a").missing_seqs()] or (
                sessions["b"]._peer("a").recv_cumulative >= 3
            )
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_frames_dropped_after_max_retries(self):
        async def scenario():
            transport = BlackholeTransport()
            session = ReliableSession(
                transport,
                on_message=lambda data, addr: None,
                policy=fast_policy(max_retries=3),
            )
            session.start()
            await session.send("nowhere", b"doomed")
            await wait_for(lambda: session.stats_for("nowhere").drops == 1)
            stats = session.stats_for("nowhere")
            assert stats.retransmits == 3
            assert session.unacked_count("nowhere") == 0
            await session.close()

        asyncio.run(scenario())

    def test_backoff_grows_between_retransmissions(self):
        async def scenario():
            transport = BlackholeTransport()
            session = ReliableSession(
                transport,
                on_message=lambda data, addr: None,
                policy=fast_policy(max_retries=4, jitter=0.0),
            )
            session.start()
            await session.send("void", b"x")
            state = session._peer("void")
            pending = next(iter(state.unacked.values()))
            first_timeout = pending.timeout
            await wait_for(lambda: pending.sends >= 3)
            assert pending.timeout > first_timeout
            await session.close()

        asyncio.run(scenario())


class TestBackpressure:
    def test_send_suspends_when_buffer_full(self):
        async def scenario():
            transport = BlackholeTransport()
            session = ReliableSession(
                transport,
                on_message=lambda data, addr: None,
                policy=fast_policy(send_buffer=2, max_retries=1000),
            )
            session.start()
            await session.send("void", b"1")
            await session.send("void", b"2")
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(session.send("void", b"3"), timeout=0.2)
            await session.close()

        asyncio.run(scenario())

    def test_send_resumes_after_drop_frees_space(self):
        async def scenario():
            transport = BlackholeTransport()
            session = ReliableSession(
                transport,
                on_message=lambda data, addr: None,
                policy=fast_policy(send_buffer=1, max_retries=1),
            )
            session.start()
            await session.send("void", b"1")
            # The frame is dropped after max_retries, freeing the buffer,
            # so the second send completes instead of hanging forever.
            await asyncio.wait_for(session.send("void", b"2"), timeout=5.0)
            assert session.stats_for("void").drops >= 1
            await session.close()

        asyncio.run(scenario())


class TestWirePath:
    """Frame coalescing, delayed cumulative ACKs, and the wire counters."""

    def test_burst_coalesces_into_batches(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            sessions, inboxes = make_pair(bus)
            for session in sessions.values():
                session.start()
            for i in range(6):
                await sessions["a"].send("b", bytes([i]))
            await wait_for(lambda: len(inboxes["b"]) == 6)
            await wait_for(lambda: sessions["a"].unacked_count("b") == 0)
            tx = sessions["a"].stats_for("b")
            rx = sessions["b"].stats_for("a")
            assert tx.frames_sent == 6
            assert tx.datagrams_sent < 6, "burst should coalesce"
            assert tx.batches_sent >= 1
            assert tx.bytes_sent > 0
            assert rx.batches_received >= 1
            assert rx.frames_received == 6
            assert rx.datagrams_received == tx.datagrams_sent
            assert rx.bytes_received == tx.bytes_sent
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_coalescing_disabled_sends_one_datagram_per_frame(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            policy = fast_policy(coalesce_mtu=0, ack_delay=0.0)
            sessions, inboxes = make_pair(bus, policy=policy)
            for session in sessions.values():
                session.start()
            for i in range(5):
                await sessions["a"].send("b", bytes([i]))
            await wait_for(lambda: len(inboxes["b"]) == 5)
            await wait_for(lambda: sessions["a"].unacked_count("b") == 0)
            tx = sessions["a"].stats_for("b")
            rx = sessions["b"].stats_for("a")
            assert tx.datagrams_sent == 5
            assert tx.batches_sent == 0
            # Immediate-ack mode: one standalone ACK per DATA frame.
            assert rx.acks_sent == 5
            assert rx.acks_piggybacked == 0
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_delayed_ack_is_cumulative(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            policy = fast_policy(initial_timeout=0.5, max_timeout=1.0, ack_delay=0.05)
            sessions, inboxes = make_pair(bus, policy=policy)
            for session in sessions.values():
                session.start()
            for i in range(5):
                await sessions["a"].send("b", bytes([i]))
            await wait_for(lambda: len(inboxes["b"]) == 5)
            await wait_for(lambda: sessions["a"].unacked_count("b") == 0)
            rx = sessions["b"].stats_for("a")
            assert rx.acks_sent == 1, "one held cumulative ACK, not five"
            assert sessions["a"].stats_for("b").retransmits == 0
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_ack_piggybacks_on_reverse_traffic(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            policy = fast_policy(initial_timeout=0.5, max_timeout=1.0, ack_delay=0.1)
            sessions, inboxes = make_pair(bus, policy=policy)
            for session in sessions.values():
                session.start()
            await sessions["a"].send("b", b"ping")
            await wait_for(lambda: len(inboxes["b"]) == 1)
            # Reverse traffic inside the ack-delay window: the held ACK
            # must ride b's outgoing datagram, never stand alone.
            await sessions["b"].send("a", b"pong")
            await wait_for(lambda: sessions["a"].unacked_count("b") == 0)
            rx = sessions["b"].stats_for("a")
            assert rx.acks_piggybacked >= 1
            assert rx.acks_piggybacked == rx.acks_sent
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())

    def test_explicit_flush_empties_the_outbox(self):
        async def scenario():
            bus = LocalAsyncBus(delay_model=ConstantDelayModel(1.0))
            policy = fast_policy(flush_interval=10.0, ack_delay=10.0)
            sessions, inboxes = make_pair(bus, policy=policy)
            for session in sessions.values():
                session.start()
            await sessions["a"].send("b", b"held")
            assert sessions["a"].stats_for("b").datagrams_sent == 0
            sessions["a"].flush("b")
            assert sessions["a"].stats_for("b").datagrams_sent == 1
            await wait_for(lambda: len(inboxes["b"]) == 1)
            for session in sessions.values():
                await session.close()

        asyncio.run(scenario())


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(initial_timeout=0),
            dict(backoff_factor=0.5),
            dict(max_timeout=0.01, initial_timeout=0.05),
            dict(jitter=1.5),
            dict(max_retries=-1),
            dict(send_buffer=0),
            dict(tick_interval=0),
            dict(nack_interval=-0.1),
            dict(coalesce_mtu=-1),
            dict(flush_interval=0),
            dict(ack_delay=-0.1),
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(**kwargs)

    def test_stats_merge_sums_counters(self):
        from repro.net import TransportStats

        first = TransportStats(
            data_sent=2, retransmits=1, rtt=0.1,
            datagrams_sent=4, bytes_sent=100, delta_sent=1,
        )
        second = TransportStats(
            data_sent=3, drops=1, rtt=0.3,
            datagrams_sent=6, bytes_sent=50, acks_piggybacked=2,
        )
        total = first.merge(second)
        assert total.data_sent == 5
        assert total.retransmits == 1
        assert total.drops == 1
        assert total.datagrams_sent == 10
        assert total.bytes_sent == 150
        assert total.delta_sent == 1
        assert total.acks_piggybacked == 2
        assert total.rtt == pytest.approx(0.2)
