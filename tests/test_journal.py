"""Durability tests: WAL replay, snapshots, and node crash-recovery.

A "crash" here is closing a node without any shutdown ceremony and
rebuilding it from the same data directory — the journal's crash-only
design means that IS the only persistence path.
"""

import asyncio
import json
import os

import pytest

from repro.api import NodeConfig, create_node
from repro.core.errors import ConfigurationError
from repro.net.journal import NodeJournal


async def wait_for(predicate, timeout=20.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def make_journal(tmp_path, **kwargs):
    defaults = dict(node_id="p", r=8, own_keys=(1, 5))
    defaults.update(kwargs)
    return NodeJournal(str(tmp_path / "j"), **defaults)


class TestWalReplay:
    def test_fresh_directory_recovers_nothing(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.open() is None
        journal.close()

    def test_sends_and_deliveries_rebuild_clock_and_frontiers(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.open() is None
        journal.record_send(1, b"m1")
        journal.record_send(2, b"m2")
        journal.record_delivery("q", 1, keys=(0, 2))
        journal.record_delivery("q", 3, keys=(0, 2))
        journal.ensure_lease(("host", 9000), 1)
        journal.close()

        restarted = make_journal(tmp_path)
        recovered = restarted.open()
        assert recovered is not None
        # Two own sends increment keys (1, 5); two deliveries keys (0, 2).
        assert recovered.vector == (2, 2, 2, 0, 0, 2, 0, 0)
        assert recovered.send_seq == 2
        assert recovered.delivered == {"p": (2, ()), "q": (1, (3,))}
        assert recovered.own_messages == {1: b"m1", 2: b"m2"}
        assert recovered.wal_records == 5
        # The lease advances the link seq past the whole reserved block.
        assert recovered.links[("host", 9000)].tx_next > 1
        restarted.close()

    def test_torn_trailing_record_is_discarded(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        journal.record_send(1, b"m1")
        journal.close()
        with open(journal.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"t":"send","q":2,"d":"bW')  # crash mid-append

        restarted = make_journal(tmp_path)
        recovered = restarted.open()
        assert recovered.send_seq == 1
        assert recovered.own_messages == {1: b"m1"}
        # The torn tail was truncated away; appending resumes cleanly.
        restarted.record_send(2, b"m2")
        restarted.close()
        again = make_journal(tmp_path)
        assert again.open().own_messages == {1: b"m1", 2: b"m2"}
        again.close()

    def test_identity_mismatch_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open()
        journal.record_send(1, b"m1")
        journal.close()
        for wrong in (
            dict(node_id="other"),
            dict(r=16),
            dict(own_keys=(0, 3)),
        ):
            with pytest.raises(ConfigurationError):
                make_journal(tmp_path, **wrong).open()

    def test_lease_blocks_amortise_wal_writes(self, tmp_path):
        journal = make_journal(tmp_path, seq_lease=10)
        journal.open()
        for seq in range(1, 25):
            journal.ensure_lease("peer", seq)
        journal.close()
        with open(journal.wal_path, encoding="utf-8") as handle:
            leases = [json.loads(line) for line in handle if '"lease"' in line]
        # 24 seqs at a 10-seq lease granularity: 3 lease records, and the
        # last block covers every seq that was used.
        assert len(leases) == 3
        restarted = make_journal(tmp_path, seq_lease=10)
        assert restarted.open().links["peer"].tx_next > 24
        restarted.close()


class TestSnapshots:
    def test_snapshot_truncates_wal_and_survives_restart(self, tmp_path):
        journal = make_journal(tmp_path, snapshot_interval=4)
        journal.open()
        for seq in range(1, 5):
            journal.record_send(seq, b"m%d" % seq)
        assert journal.snapshot_due
        journal.write_snapshot(
            vector=(4, 4, 0, 0, 0, 4, 0, 0),  # not replay-derived: caller's truth
            send_seq=4,
            links={"peer": (7, 3, (5,))},
        )
        assert not journal.snapshot_due
        assert os.path.getsize(journal.wal_path) < 200  # just the open record
        journal.record_delivery("q", 1, keys=(2,))
        journal.close()

        restarted = make_journal(tmp_path, snapshot_interval=4)
        recovered = restarted.open()
        assert recovered.vector == (4, 4, 1, 0, 0, 4, 0, 0)
        assert recovered.send_seq == 4
        assert recovered.delivered == {"p": (4, ()), "q": (1, ())}
        link = recovered.links["peer"]
        assert (link.tx_next, link.rx_cumulative, link.rx_out_of_order) == (7, 3, (5,))
        # Pre-snapshot own bytes are gone — only the WAL carries bytes.
        assert recovered.own_messages == {}
        restarted.close()

    def test_replay_is_idempotent_across_snapshot_overlap(self, tmp_path):
        """A crash between the snapshot rename and the WAL truncation
        leaves folded records in the log; they must not double-count."""
        journal = make_journal(tmp_path, snapshot_interval=100)
        journal.open()
        journal.record_send(1, b"m1")
        journal.record_delivery("q", 1, keys=(2,))
        journal.close()
        # Simulate the crash window: snapshot exists, WAL NOT truncated.
        stale_wal = open(journal.wal_path, encoding="utf-8").read()
        mid = make_journal(tmp_path, snapshot_interval=100)
        recovered = mid.open()
        mid.write_snapshot(recovered.vector, recovered.send_seq, {})
        mid.close()
        with open(journal.wal_path, "w", encoding="utf-8") as handle:
            handle.write(stale_wal)

        restarted = make_journal(tmp_path, snapshot_interval=100)
        again = restarted.open()
        assert again.vector == recovered.vector  # not doubled
        assert again.send_seq == 1
        assert again.delivered == {"p": (1, ()), "q": (1, ())}
        restarted.close()

    def test_invalid_intervals_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_journal(tmp_path, snapshot_interval=0)
        with pytest.raises(ConfigurationError):
            make_journal(tmp_path, seq_lease=0)


class TestNodeRecovery:
    def test_restarted_node_resumes_pre_crash_state(self, tmp_path):
        """End-to-end: crash alice mid-conversation, restart her from the
        journal, and verify clock/seq continuity plus no redeliveries."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, anti_entropy_interval=0.1,
                data_dir=str(tmp_path / "alice"), journal_snapshot_interval=6,
            )
            alice = await create_node("alice", config)
            bob = await create_node("bob", config.replace(data_dir=None))
            alice.add_peer(bob.local_address)
            bob.add_peer(alice.local_address)
            for i in range(10):
                await alice.broadcast(("alice", i))
            await bob.broadcast(("bob", 0))
            assert await wait_for(lambda: len(alice.deliveries) == 11)
            assert await wait_for(lambda: len(bob.deliveries) == 11)
            pre_vector = alice.endpoint.clock.snapshot()
            pre_sends = alice.endpoint.clock.send_count
            port = alice.local_address[1]
            await alice.close()  # crash: no shutdown snapshot exists

            alice2 = await create_node(
                "alice", config.replace(port=port), start=False
            )
            assert alice2.recovered is not None
            assert alice2.endpoint.clock.snapshot() == pre_vector
            assert alice2.endpoint.clock.send_count == pre_sends
            await alice2.start()
            alice2.add_peer(bob.local_address)
            bob_count = len(bob.deliveries)
            message = await alice2.broadcast(("alice", "post-crash"))
            # Fresh-but-monotonic: the message id continues the sequence.
            assert message.seq == pre_sends + 1
            assert await wait_for(lambda: len(bob.deliveries) == bob_count + 1)
            # Bob saw no duplicate of the pre-crash traffic: the restart
            # neither re-sent old messages nor reused a message id.
            assert bob.endpoint.stats.duplicates == 0
            # Alice's restart did not re-deliver anything she had seen.
            assert len(alice2.deliveries) == 1
            await alice2.close()
            await bob.close()

        asyncio.run(scenario())

    def test_restart_does_not_reuse_link_seqs(self, tmp_path):
        """Bob's session must accept the first post-restart frame from a
        rebooted alice on the same address: her link seqs resume past the
        journal lease instead of colliding with acked ones."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, anti_entropy_interval=0.0,
                data_dir=str(tmp_path / "alice"),
            )
            alice = await create_node("alice", config)
            bob = await create_node("bob", config.replace(data_dir=None))
            alice.add_peer(bob.local_address)
            for i in range(3):
                await alice.broadcast(i)
            assert await wait_for(lambda: len(bob.deliveries) == 3)
            port = alice.local_address[1]
            await alice.close()

            alice2 = await create_node("alice", config.replace(port=port))
            alice2.add_peer(bob.local_address)
            link = alice2.session.link_states()[bob.local_address]
            assert link[0] > 3, "link seq must resume past the lease"
            await alice2.broadcast("fresh")
            # Anti-entropy is off: only a non-duplicate link seq delivers.
            assert await wait_for(lambda: len(bob.deliveries) == 4)
            await alice2.close()
            await bob.close()

        asyncio.run(scenario())

    def test_recovered_node_serves_own_waled_messages(self, tmp_path):
        """Own broadcasts journalled since the last snapshot are servable
        through anti-entropy after the restart."""

        async def scenario():
            config = NodeConfig(
                r=32, k=2, ack_timeout=0.02, anti_entropy_interval=0.05,
                data_dir=str(tmp_path / "alice"),
            )
            # Alice broadcasts with no peers attached, then crashes.
            alice = await create_node("alice", config)
            for i in range(4):
                await alice.broadcast(("pre", i))
            port = alice.local_address[1]
            await alice.close()

            alice2 = await create_node("alice", config.replace(port=port))
            bob = await create_node("bob", config.replace(data_dir=None))
            alice2.add_peer(bob.local_address)
            bob.add_peer(alice2.local_address)
            # Bob's digests reveal he lacks the pre-crash messages; the
            # restarted store can serve them because the WAL kept bytes.
            assert await wait_for(lambda: len(bob.deliveries) == 4)
            assert [p for p in bob.delivered_payloads()] == [
                ("pre", 0), ("pre", 1), ("pre", 2), ("pre", 3)
            ]
            await alice2.close()
            await bob.close()

        asyncio.run(scenario())
