"""Property tests for the wire formats (messages, deltas, frames).

Three families of invariants, hypothesis-driven:

* ``encoded_size(m) == len(encode(m))`` — the analytic size used for
  MTU budgeting must agree with the real encoding, for both the varint
  and fixed-width entry modes;
* every frame type (DATA/ACK/NACK/DIGEST/HEARTBEAT/BATCH) round-trips
  ``encode -> decode -> encode`` byte-identically — the retransmit
  path stores encoded frames, so a re-encode that drifted by one byte
  would silently fork the wire history;
* DELTA differential — ``encode_delta -> decode_delta`` reconstructs a
  message bit-identical to its full encoding (same vector values and
  dtype, keys, seq, payload), for arbitrary reference/increment splits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import Timestamp
from repro.core.codec import (
    AckFrame,
    BatchFrame,
    CodecError,
    DataFrame,
    DigestFrame,
    FrameCodec,
    HeartbeatFrame,
    MessageCodec,
    NackFrame,
)
from repro.core.protocol import Message


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

SENDERS = st.text(min_size=1, max_size=12)
SEQS = st.integers(min_value=1, max_value=2**48)


def message_from(draw, entry_max=2**40):
    r = draw(st.integers(min_value=1, max_value=64))
    key_count = draw(st.integers(min_value=1, max_value=min(4, r)))
    keys = tuple(
        sorted(
            draw(
                st.lists(
                    st.integers(0, r - 1),
                    min_size=key_count,
                    max_size=key_count,
                    unique=True,
                )
            )
        )
    )
    entries = draw(
        st.lists(st.integers(0, entry_max), min_size=r, max_size=r)
    )
    vector = np.asarray(entries, dtype=np.int64)
    vector.flags.writeable = False
    sender = draw(SENDERS)
    seq = draw(SEQS)
    payload = draw(
        st.none()
        | st.integers(-(2**31), 2**31)
        | st.text(max_size=32)
        | st.lists(st.integers(-100, 100), max_size=8)
    )
    return Message(
        sender=sender,
        seq=seq,
        timestamp=Timestamp(vector=vector, sender_keys=keys, seq=seq),
        payload=payload,
    )


@st.composite
def messages(draw):
    return message_from(draw)


@st.composite
def small_entry_messages(draw):
    # Fixed-width entries must fit u32.
    return message_from(draw, entry_max=2**32 - 1)


@st.composite
def ascending_above(draw, base, max_size=16):
    gaps = draw(
        st.lists(st.integers(1, 1000), min_size=0, max_size=max_size)
    )
    values, current = [], base
    for gap in gaps:
        current += gap
        values.append(current)
    return tuple(values)


@st.composite
def inner_frames(draw):
    kind = draw(st.sampled_from(["data", "ack", "nack", "digest", "heartbeat"]))
    if kind == "data":
        return DataFrame(
            seq=draw(st.integers(0, 2**60)),
            payload=draw(st.binary(max_size=200)),
        )
    if kind == "ack":
        cumulative = draw(st.integers(0, 2**40))
        return AckFrame(
            cumulative=cumulative,
            sacks=draw(ascending_above(cumulative)),
        )
    if kind == "nack":
        first = draw(st.integers(0, 2**40))
        return NackFrame(missing=(first,) + draw(ascending_above(first)))
    if kind == "digest":
        frontiers = {}
        for sender in draw(st.lists(SENDERS, max_size=4, unique=True)):
            contiguous = draw(st.integers(0, 2**40))
            frontiers[sender] = (contiguous, draw(ascending_above(contiguous)))
        return DigestFrame(frontiers=frontiers)
    return HeartbeatFrame(count=draw(st.integers(0, 2**60)))


@st.composite
def frames(draw):
    codec = FrameCodec()
    if draw(st.booleans()):
        return draw(inner_frames())
    inners = draw(st.lists(inner_frames(), min_size=1, max_size=5))
    ack = None
    if draw(st.booleans()):
        cumulative = draw(st.integers(0, 2**40))
        ack = AckFrame(cumulative=cumulative, sacks=draw(ascending_above(cumulative)))
    return BatchFrame(
        frames=tuple(codec.encode(inner) for inner in inners), ack=ack
    )


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


class TestEncodedSize:
    @settings(max_examples=150, deadline=None)
    @given(messages())
    def test_varint_mode_matches_real_encoding(self, message):
        codec = MessageCodec()
        assert codec.encoded_size(message) == len(codec.encode(message))

    @settings(max_examples=150, deadline=None)
    @given(small_entry_messages())
    def test_fixed_mode_matches_real_encoding(self, message):
        codec = MessageCodec(varint_entries=False)
        assert codec.encoded_size(message) == len(codec.encode(message))


class TestMessageRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(messages())
    def test_encode_decode_encode_is_identity(self, message):
        codec = MessageCodec()
        data = codec.encode(message)
        decoded = codec.decode(data)
        assert codec.encode(decoded) == data
        assert decoded.sender == message.sender
        assert decoded.seq == message.seq
        assert decoded.timestamp.sender_keys == message.timestamp.sender_keys
        assert decoded.timestamp.vector.dtype == np.int64
        assert np.array_equal(decoded.timestamp.vector, message.timestamp.vector)


class TestFrameRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(frames())
    def test_encode_decode_encode_is_identity(self, frame):
        codec = FrameCodec()
        data = codec.encode(frame)
        decoded = codec.decode(data)
        assert type(decoded) is type(frame)
        assert codec.encode(decoded) == data


class TestDeltaDifferential:
    @settings(max_examples=200, deadline=None)
    @given(messages(), st.data())
    def test_delta_reconstructs_bit_identically(self, message, data):
        codec = MessageCodec()
        vector = message.timestamp.vector
        increments = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 500),
                    min_size=len(vector),
                    max_size=len(vector),
                )
            ),
            dtype=np.int64,
        )
        ref_vector = np.maximum(vector - increments, 0)
        ref_vector.flags.writeable = False
        ref_seq = data.draw(st.integers(0, message.seq - 1))

        delta = codec.encode_delta(message, ref_seq, ref_vector)
        assert MessageCodec.is_delta(delta)
        assert not MessageCodec.is_delta(codec.encode(message))
        sender, seq, peeked_ref = codec.delta_header(delta)
        assert (sender, seq, peeked_ref) == (message.sender, message.seq, ref_seq)

        decoded = codec.decode_delta(
            delta, ref_vector, message.timestamp.sender_keys
        )
        assert codec.encode(decoded) == codec.encode(message)
        assert decoded.timestamp.vector.dtype == np.int64
        assert np.array_equal(decoded.timestamp.vector, vector)
        assert decoded.timestamp.sender_keys == message.timestamp.sender_keys
        assert decoded.payload == codec.decode(codec.encode(message)).payload

    @settings(max_examples=100, deadline=None)
    @given(messages())
    def test_delta_never_larger_than_full_plus_slack(self, message):
        """Against an up-to-date reference the delta is strictly smaller
        than the full encoding whenever R is non-trivial."""
        codec = MessageCodec()
        if message.seq < 2 or message.timestamp.size < 8:
            return
        delta = codec.encode_delta(
            message, message.seq - 1, message.timestamp.vector
        )
        assert len(delta) < len(codec.encode(message))


class TestDeltaRejections:
    def _message(self, r=8, seq=5, entries=None):
        vector = np.asarray(
            entries if entries is not None else [3] * r, dtype=np.int64
        )
        vector.flags.writeable = False
        return Message(
            sender="s",
            seq=seq,
            timestamp=Timestamp(vector=vector, sender_keys=(0, 1), seq=seq),
            payload=None,
        )

    def test_reference_must_be_earlier_message(self):
        message = self._message(seq=5)
        with pytest.raises(CodecError):
            MessageCodec().encode_delta(message, 5, message.timestamp.vector)

    def test_vector_regression_rejected(self):
        message = self._message(entries=[1] * 8)
        ref = np.asarray([2] * 8, dtype=np.int64)
        with pytest.raises(CodecError):
            MessageCodec().encode_delta(message, 1, ref)

    def test_size_mismatch_rejected(self):
        message = self._message(r=8)
        with pytest.raises(CodecError):
            MessageCodec().encode_delta(
                message, 1, np.zeros(9, dtype=np.int64)
            )

    def test_plain_decode_rejects_delta(self):
        codec = MessageCodec()
        message = self._message()
        ref = np.zeros(8, dtype=np.int64)
        delta = codec.encode_delta(message, 1, ref)
        with pytest.raises(CodecError):
            codec.decode(delta)


class TestBatchRejections:
    def test_empty_batch_rejected(self):
        with pytest.raises(CodecError):
            FrameCodec().encode(BatchFrame(frames=()))

    def test_nested_batch_rejected(self):
        codec = FrameCodec()
        inner = codec.encode(HeartbeatFrame(count=1))
        batch = codec.encode(BatchFrame(frames=(inner,)))
        with pytest.raises(CodecError):
            codec.encode(BatchFrame(frames=(batch,)))
