"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestTheoryCommand:
    def test_prints_curve(self, capsys):
        code, out = run_cli(capsys, "theory", "--r", "100", "--x", "20")
        assert code == 0
        assert "P_err" in out
        assert "3.47" in out  # the paper's optimum

    def test_k_max_respected(self, capsys):
        code, out = run_cli(capsys, "theory", "--r", "50", "--x", "10", "--k-max", "3")
        lines = [line for line in out.splitlines() if line.strip() and line.strip()[0].isdigit()]
        assert len(lines) == 3


class TestDimensionCommand:
    def test_recipe_fields(self, capsys):
        code, out = run_cli(
            capsys,
            "dimension", "--nodes", "1000", "--send-rate", "0.2",
            "--delay-ms", "100", "--budget-bytes", "512",
        )
        assert code == 0
        assert "concurrency X" in out
        assert "keys per process K" in out
        assert "vector-clock bytes" in out

    def test_tiny_budget_still_valid(self, capsys):
        code, out = run_cli(
            capsys, "dimension", "--nodes", "10", "--send-rate", "1",
            "--budget-bytes", "8",
        )
        assert code == 0
        assert "vector size R" in out


class TestSimulateCommand:
    BASE = [
        "simulate", "--nodes", "15", "--r", "30", "--k", "3",
        "--lambda-ms", "800", "--duration-ms", "6000", "--seed", "4",
    ]

    def test_text_output(self, capsys):
        code, out = run_cli(capsys, *self.BASE)
        assert code == 0
        assert "eps_min" in out
        assert "stuck pending" in out

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, *self.BASE, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["traffic"]["sent"] > 0
        assert payload["traffic"]["delivered_remote"] == payload["traffic"]["sent"] * 14
        assert payload["traffic"]["stuck_pending"] == 0
        counters = payload["counters"]
        assert 0.0 <= counters["eps_min"] <= counters["eps_max"] <= 1.0

    def test_churn_flag(self, capsys):
        code, out = run_cli(
            capsys, *self.BASE, "--churn-interval-ms", "1500", "--json"
        )
        payload = json.loads(out)
        membership = payload["membership"]
        assert membership["joins"] >= 0 and membership["leaves"] >= 0

    def test_clock_choices(self, capsys):
        for clock in ("vector", "lamport", "plausible", "bloom"):
            code, out = run_cli(capsys, *self.BASE, "--clock", clock, "--json")
            assert code == 0, clock
            assert json.loads(out)["traffic"]["stuck_pending"] == 0

    def test_engine_choices(self, capsys):
        for engine in ("naive", "indexed", "hybrid"):
            code, out = run_cli(capsys, *self.BASE, "--engine", engine, "--json")
            assert code == 0, engine
            assert json.loads(out)["traffic"]["stuck_pending"] == 0


class TestSweepCommand:
    def test_sweep_k(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "k", "--values", "2,3",
            "--nodes", "12", "--r", "24", "--lambda-ms", "800",
            "--duration-ms", "5000", "--repeats", "1",
        )
        assert code == 0
        assert "sweep of k" in out
        data_lines = [l for l in out.splitlines() if l.strip().startswith(("2", "3"))]
        assert len(data_lines) == 2

    def test_sweep_lambda(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "lambda", "--values", "500,1000",
            "--nodes", "10", "--r", "20", "--duration-ms", "4000",
            "--repeats", "1",
        )
        assert code == 0
        assert "sweep of lambda" in out

    def test_sweep_nodes(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "nodes", "--values", "8,12",
            "--r", "20", "--lambda-ms", "800", "--duration-ms", "4000",
            "--repeats", "1",
        )
        assert code == 0
        assert "sweep of nodes" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_clock_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--clock", "quantum"])

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "turbo"])

    def test_choices_track_the_registry(self):
        # Plugins registered before build_parser() become CLI choices.
        from repro.core.pending import PendingBuffer
        from repro.core.registry import register_engine, unregister_engine

        register_engine("cli-test-engine", PendingBuffer,
                        description="registered by test_cli")
        try:
            args = build_parser().parse_args(
                ["simulate", "--engine", "cli-test-engine"]
            )
            assert args.engine == "cli-test-engine"
        finally:
            unregister_engine("cli-test-engine")


class TestEnginesCommand:
    def test_lists_registered_components(self, capsys):
        code, out = run_cli(capsys, "engines")
        assert code == 0
        for name in ("probabilistic", "plausible", "lamport", "vector",
                     "bloom"):
            assert name in out
        for name in ("indexed", "naive", "auto", "hybrid"):
            assert name in out
        for name in ("none", "basic", "refined"):
            assert name in out
        # capability descriptors surface in the listing
        assert "needs_dense_index" in out
        assert "per_message_keys" in out
        assert "wire id" in out


class TestNodeCommand:
    def test_solo_node_runs_and_reports_stats(self, capsys):
        code, out = run_cli(
            capsys,
            "node", "--id", "solo", "--count", "2",
            "--interval", "0.01", "--duration", "0.05",
        )
        assert code == 0
        assert "listening on 127.0.0.1:" in out
        assert "solo" in out
        assert "hello-0" in out and "hello-1" in out
        assert "retransmits=" in out

    def test_two_nodes_exchange_over_udp(self, capsys):
        # The CLI runs its own event loop, so host the receiving node on
        # a background-thread loop and point the CLI sender at it.
        import asyncio
        import threading
        import time

        from repro.api import NodeConfig, create_node

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            receiver = asyncio.run_coroutine_threadsafe(
                create_node("rx", NodeConfig(r=128, k=3)), loop
            ).result(timeout=10)
            host, port = receiver.local_address
            code = main([
                "node", "--id", "tx", "--peer", f"{host}:{port}",
                "--count", "2", "--interval", "0.01", "--duration", "0.3",
            ])
            assert code == 0
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if len(receiver.delivered_payloads()) == 2:
                    break
                time.sleep(0.01)
            assert receiver.delivered_payloads() == ["hello-0", "hello-1"]
            asyncio.run_coroutine_threadsafe(receiver.close(), loop).result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()

    def test_bad_listen_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["node", "--listen", "no-port", "--count", "0"])


class TestStatsCommand:
    def _export(self, tmp_path, name="m.jsonl"):
        from repro.obs import JsonlExporter, MetricsRegistry

        registry = MetricsRegistry(labels={"node": "a"})
        registry.counter("repro_endpoint_sent_total").inc(5)
        registry.gauge("repro_pending_depth").set(2.0)
        registry.histogram(
            "repro_delivery_wait_seconds", bounds=(0.01, 0.1)
        ).observe(0.05)
        path = tmp_path / name
        with JsonlExporter(path) as exporter:
            exporter.export(registry.snapshot(), ts=3.0)
        return path

    def test_renders_tables(self, capsys, tmp_path):
        path = self._export(tmp_path)
        code, out = run_cli(capsys, "stats", str(path))
        assert code == 0
        assert "node=a" in out
        assert "repro_endpoint_sent_total" in out
        assert "repro_pending_depth" in out
        assert "repro_delivery_wait_seconds" in out
        assert "p95" in out

    def test_json_output(self, capsys, tmp_path):
        path = self._export(tmp_path)
        code, out = run_cli(capsys, "stats", str(path), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["counters"]["repro_endpoint_sent_total"] == 5

    def test_prometheus_output(self, capsys, tmp_path):
        path = self._export(tmp_path)
        code, out = run_cli(capsys, "stats", str(path), "--prometheus")
        assert code == 0
        assert 'repro_endpoint_sent_total{node="a"} 5' in out
        assert 'le="+Inf"' in out

    def test_merges_multiple_files(self, capsys, tmp_path):
        first = self._export(tmp_path, "a.jsonl")
        second = self._export(tmp_path, "b.jsonl")
        code, out = run_cli(capsys, "stats", str(first), str(second), "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["counters"]["repro_endpoint_sent_total"] == 10

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["stats", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 1
        assert "absent.jsonl" in captured.err

    def test_empty_file_fails_cleanly(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["stats", str(empty)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no complete snapshot" in captured.err


class TestMetricsFlags:
    def test_simulate_exports_snapshot(self, capsys, tmp_path):
        from repro.obs import last_snapshot

        path = tmp_path / "sim.jsonl"
        code, out = run_cli(
            capsys,
            "simulate", "--nodes", "10", "--r", "30", "--k", "3",
            "--lambda-ms", "500", "--duration-ms", "3000", "--seed", "2",
            "--metrics-path", str(path),
        )
        assert code == 0
        snapshot = last_snapshot(path)
        assert snapshot is not None
        assert snapshot["labels"] == {"mode": "sim"}
        assert snapshot["counters"]["repro_sim_deliveries_total"] > 0
        histogram = snapshot["histograms"]["repro_sim_delivery_latency_ms"]
        assert histogram["count"] > 0

    def test_node_reports_detector_and_exports_metrics(self, capsys, tmp_path):
        path = tmp_path / "node.jsonl"
        code, out = run_cli(
            capsys,
            "node", "--id", "solo", "--count", "2",
            "--interval", "0.01", "--duration", "0.1",
            "--metrics-path", str(path), "--metrics-interval", "0.03",
            "--metrics-port", "0",
        )
        assert code == 0
        assert "detector: checks=" in out
        assert "alert_rate=" in out
        assert "metrics: http://127.0.0.1:" in out
        # The exported file round-trips through the stats renderer.
        code, out = run_cli(capsys, "stats", str(path))
        assert code == 0
        assert "repro_endpoint_sent_total" in out
