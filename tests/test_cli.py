"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestTheoryCommand:
    def test_prints_curve(self, capsys):
        code, out = run_cli(capsys, "theory", "--r", "100", "--x", "20")
        assert code == 0
        assert "P_err" in out
        assert "3.47" in out  # the paper's optimum

    def test_k_max_respected(self, capsys):
        code, out = run_cli(capsys, "theory", "--r", "50", "--x", "10", "--k-max", "3")
        lines = [line for line in out.splitlines() if line.strip() and line.strip()[0].isdigit()]
        assert len(lines) == 3


class TestDimensionCommand:
    def test_recipe_fields(self, capsys):
        code, out = run_cli(
            capsys,
            "dimension", "--nodes", "1000", "--send-rate", "0.2",
            "--delay-ms", "100", "--budget-bytes", "512",
        )
        assert code == 0
        assert "concurrency X" in out
        assert "keys per process K" in out
        assert "vector-clock bytes" in out

    def test_tiny_budget_still_valid(self, capsys):
        code, out = run_cli(
            capsys, "dimension", "--nodes", "10", "--send-rate", "1",
            "--budget-bytes", "8",
        )
        assert code == 0
        assert "vector size R" in out


class TestSimulateCommand:
    BASE = [
        "simulate", "--nodes", "15", "--r", "30", "--k", "3",
        "--lambda-ms", "800", "--duration-ms", "6000", "--seed", "4",
    ]

    def test_text_output(self, capsys):
        code, out = run_cli(capsys, *self.BASE)
        assert code == 0
        assert "eps_min" in out
        assert "stuck pending" in out

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, *self.BASE, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["traffic"]["sent"] > 0
        assert payload["traffic"]["delivered_remote"] == payload["traffic"]["sent"] * 14
        assert payload["traffic"]["stuck_pending"] == 0
        counters = payload["counters"]
        assert 0.0 <= counters["eps_min"] <= counters["eps_max"] <= 1.0

    def test_churn_flag(self, capsys):
        code, out = run_cli(
            capsys, *self.BASE, "--churn-interval-ms", "1500", "--json"
        )
        payload = json.loads(out)
        membership = payload["membership"]
        assert membership["joins"] >= 0 and membership["leaves"] >= 0

    def test_clock_choices(self, capsys):
        for clock in ("vector", "lamport", "plausible"):
            code, out = run_cli(capsys, *self.BASE, "--clock", clock, "--json")
            assert code == 0, clock
            assert json.loads(out)["traffic"]["stuck_pending"] == 0


class TestSweepCommand:
    def test_sweep_k(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "k", "--values", "2,3",
            "--nodes", "12", "--r", "24", "--lambda-ms", "800",
            "--duration-ms", "5000", "--repeats", "1",
        )
        assert code == 0
        assert "sweep of k" in out
        data_lines = [l for l in out.splitlines() if l.strip().startswith(("2", "3"))]
        assert len(data_lines) == 2

    def test_sweep_lambda(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "lambda", "--values", "500,1000",
            "--nodes", "10", "--r", "20", "--duration-ms", "4000",
            "--repeats", "1",
        )
        assert code == 0
        assert "sweep of lambda" in out

    def test_sweep_nodes(self, capsys):
        code, out = run_cli(
            capsys,
            "sweep", "--parameter", "nodes", "--values", "8,12",
            "--r", "20", "--lambda-ms", "800", "--duration-ms", "4000",
            "--repeats", "1",
        )
        assert code == 0
        assert "sweep of nodes" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_invalid_clock_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--clock", "quantum"])


class TestNodeCommand:
    def test_solo_node_runs_and_reports_stats(self, capsys):
        code, out = run_cli(
            capsys,
            "node", "--id", "solo", "--count", "2",
            "--interval", "0.01", "--duration", "0.05",
        )
        assert code == 0
        assert "listening on 127.0.0.1:" in out
        assert "solo" in out
        assert "hello-0" in out and "hello-1" in out
        assert "retransmits=" in out

    def test_two_nodes_exchange_over_udp(self, capsys):
        # The CLI runs its own event loop, so host the receiving node on
        # a background-thread loop and point the CLI sender at it.
        import asyncio
        import threading
        import time

        from repro.api import NodeConfig, create_node

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            receiver = asyncio.run_coroutine_threadsafe(
                create_node("rx", NodeConfig(r=128, k=3)), loop
            ).result(timeout=10)
            host, port = receiver.local_address
            code = main([
                "node", "--id", "tx", "--peer", f"{host}:{port}",
                "--count", "2", "--interval", "0.01", "--duration", "0.3",
            ])
            assert code == 0
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if len(receiver.delivered_payloads()) == 2:
                    break
                time.sleep(0.01)
            assert receiver.delivered_payloads() == ["hello-0", "hello-1"]
            asyncio.run_coroutine_threadsafe(receiver.close(), loop).result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()

    def test_bad_listen_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["node", "--listen", "no-port", "--count", "0"])
