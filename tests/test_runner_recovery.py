"""Integration tests for the §4.2 recovery loop in the simulator."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)


def lossy_config(loss_rate=0.02, **overrides):
    delay = GaussianDelayModel()
    base = dict(
        n_nodes=20,
        r=30,
        k=3,
        duration_ms=20_000.0,
        seed=9,
        workload=PoissonWorkload(500.0),
        delay_model=delay,
        dissemination=DirectBroadcast(delay, loss_rate=loss_rate),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestPeriodicRecovery:
    def test_loss_without_recovery_leaves_stuck_messages(self):
        result = run_simulation(lossy_config())
        assert result.stuck_pending > 0
        assert result.undelivered_messages > 0

    def test_periodic_recovery_repairs_all_loss(self):
        result = run_simulation(
            lossy_config(recovery="periodic", recovery_period_ms=1000.0)
        )
        assert result.stuck_pending == 0
        assert result.undelivered_messages == 0
        assert result.recovery_sessions > 0
        assert result.recovery_repaired > 0

    def test_recovery_burst_effect_is_bounded(self):
        # Recovered messages go through the normal reception path, so the
        # delivery condition still applies — but a recovery session
        # delivers a *burst*, and burst deliveries cover the entries of
        # messages still in flight, raising the violation rate above the
        # loss-free baseline.  This is a real cost of naive anti-entropy
        # under probabilistic ordering (documented in EXPERIMENTS.md); it
        # must stay bounded, and completeness must be restored.
        clean = run_simulation(lossy_config(loss_rate=0.0))
        repaired = run_simulation(
            lossy_config(recovery="periodic", recovery_period_ms=1000.0)
        )
        assert repaired.stuck_pending == 0
        assert repaired.eps_max <= max(clean.eps_max * 10, 0.03)

    def test_counters_still_consistent(self):
        result = run_simulation(
            lossy_config(recovery="periodic", recovery_period_ms=800.0)
        )
        counters = result.counters
        assert counters.deliveries == (
            counters.correct + counters.violations + counters.ambiguous
        )


class TestAlertRecovery:
    def test_alert_trigger_runs_sessions_under_pressure(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=30,
                r=12,
                k=2,
                duration_ms=20_000.0,
                seed=9,
                workload=PoissonWorkload(300.0),
                detector="basic",
                recovery="alert",
            )
        )
        assert result.counters.violations > 0
        assert result.recovery_sessions > 0

    def test_alert_trigger_idle_without_detector(self):
        # With detector="none" no alert ever fires, so the alert-triggered
        # mode performs no sessions.
        result = run_simulation(
            SimulationConfig(
                n_nodes=15,
                r=30,
                k=3,
                duration_ms=8_000.0,
                seed=3,
                workload=PoissonWorkload(800.0),
                detector="none",
                recovery="alert",
            )
        )
        assert result.recovery_sessions == 0

    def test_quiet_system_fires_no_recovery(self):
        result = run_simulation(
            SimulationConfig(
                n_nodes=10,
                r=100,
                k=4,
                duration_ms=8_000.0,
                seed=3,
                workload=PoissonWorkload(4_000.0),
                detector="basic",
                recovery="alert",
            )
        )
        assert result.recovery_sessions == result.alerts.alerts == 0


class TestRecoveryValidation:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(lossy_config(recovery="psychic"))

    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(lossy_config(recovery="periodic", recovery_period_ms=0))
        with pytest.raises(ConfigurationError):
            run_simulation(lossy_config(recovery="alert", recovery_delay_ms=-1))
        with pytest.raises(ConfigurationError):
            run_simulation(lossy_config(recovery="periodic", recovery_log_size=0))

    def test_no_recovery_runs_have_zero_session_counters(self):
        result = run_simulation(lossy_config())
        assert result.recovery_sessions == 0
        assert result.recovery_repaired == 0


class TestFullStack:
    def test_partial_view_gossip_churn_and_recovery_compose(self):
        """The complete large-system stack the paper implies: partial-view
        gossip (no membership knowledge), churn (joins with state
        transfer, leaves), and periodic anti-entropy — everything keeps
        flowing and nothing is left stuck."""
        from repro.sim import GaussianDelayModel, PartialViewGossip, PoissonChurn

        delay = GaussianDelayModel()
        result = run_simulation(
            SimulationConfig(
                n_nodes=40,
                r=40,
                k=3,
                key_assigner="random-colliding",
                duration_ms=15_000.0,
                seed=5,
                workload=PoissonWorkload(600.0),
                delay_model=delay,
                dissemination=PartialViewGossip(
                    delay, fanout=8, view_size=15, merge_probability=0.05
                ),
                churn=PoissonChurn(
                    join_interval_ms=3_000.0,
                    leave_interval_ms=3_000.0,
                    min_population=20,
                ),
                recovery="periodic",
                recovery_period_ms=1_500.0,
            )
        )
        assert result.joins > 0 and result.leaves > 0
        assert result.stuck_pending == 0
        assert result.recovery_repaired > 0
        # A handful of oracle records may stay open when a counted
        # receiver departed before any copy or session reached it.
        assert result.undelivered_messages <= result.leaves * 2
        counters = result.counters
        assert counters.deliveries == (
            counters.correct + counters.violations + counters.ambiguous
        )
