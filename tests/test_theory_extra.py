"""Additional closed-form checks: cross-validation of the theory module
against brute-force/exhaustive computations (no simulator involved)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import binomial, num_key_sets, unrank_lex
from repro.core.theory import (
    expected_concurrency,
    optimal_k_int,
    p_entry_covered,
    p_error,
    timestamp_overhead_bits,
)
from repro.util.rng import RandomSource


class TestPErrorAgainstMonteCarlo:
    def test_covering_probability_matches_direct_simulation(self):
        """P_err(R, K, X) approximates the probability that X random
        K-subsets jointly cover a fixed K-subset.  Monte-Carlo the exact
        combinatorial event and compare."""
        r, k, x = 12, 3, 6
        rng = RandomSource(seed=31)
        total = num_key_sets(r, k)
        target = set(unrank_lex(0, r, k))
        trials = 30_000
        hits = 0
        for _ in range(trials):
            covered = set()
            for _ in range(x):
                covered.update(unrank_lex(rng.integer(0, total), r, k))
            if target <= covered:
                hits += 1
        measured = hits / trials
        predicted = p_error(r, k, x)
        # The closed form treats entry hits as independent (Bloom-filter
        # style); the true draw is without replacement within one subset,
        # so a modest tolerance is expected.
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_entry_covered_matches_direct_simulation(self):
        r, k, x = 10, 2, 5
        rng = RandomSource(seed=32)
        total = num_key_sets(r, k)
        trials = 30_000
        hits = 0
        for _ in range(trials):
            covered = False
            for _ in range(x):
                if 0 in unrank_lex(rng.integer(0, total), r, k):
                    covered = True
                    break
            if covered:
                hits += 1
        assert hits / trials == pytest.approx(p_entry_covered(r, k, x), rel=0.1)


class TestOptimalKExhaustive:
    @pytest.mark.parametrize("r,x", [(20, 4), (50, 10), (100, 20), (100, 5)])
    def test_integer_optimum_is_argmin(self, r, x):
        values = {k: p_error(r, k, x) for k in range(1, r + 1)}
        best = min(values, key=values.get)
        assert optimal_k_int(r, x) == best


class TestDimensioningIdentities:
    def test_concurrency_is_rate_times_delay(self):
        assert expected_concurrency(150, 200) == pytest.approx(30.0)

    @given(
        r=st.integers(1, 512),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_overhead_monotone_in_r_and_k(self, r, data):
        k = data.draw(st.integers(1, r))
        base = timestamp_overhead_bits(r, k)
        if r < 512:
            assert timestamp_overhead_bits(r + 1, k) > base
        if k < r:
            assert timestamp_overhead_bits(r, k + 1) >= base


class TestCombinatoricsCrossChecks:
    def test_unrank_enumerates_uniformly(self):
        """Random set_ids hit every subset with near-equal frequency —
        the uniformity assumption behind the Bloom analysis."""
        r, k = 6, 2
        total = num_key_sets(r, k)
        rng = RandomSource(seed=33)
        counts = {}
        draws = 15_000
        for _ in range(draws):
            keys = unrank_lex(rng.integer(0, total), r, k)
            counts[keys] = counts.get(keys, 0) + 1
        assert len(counts) == total
        expected = draws / total
        for subset, count in counts.items():
            assert abs(count - expected) < expected * 0.3, subset

    def test_every_entry_equally_loaded_across_the_space(self):
        """Across the whole subset space, every entry appears in exactly
        C(r-1, k-1) subsets — the symmetry p_entry_covered relies on."""
        r, k = 7, 3
        loads = [0] * r
        for rank in range(num_key_sets(r, k)):
            for entry in unrank_lex(rank, r, k):
                loads[entry] += 1
        assert all(load == binomial(r - 1, k - 1) for load in loads)
