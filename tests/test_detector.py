"""Tests for the delivery-error detectors (Algorithms 4 and 5)."""

import numpy as np
import pytest

from repro.core.clocks import EntryVectorClock, Timestamp
from repro.core.detector import (
    BasicAlertDetector,
    NullDetector,
    RefinedAlertDetector,
)
from repro.core.errors import ConfigurationError


def ts(vector, keys, seq=1):
    return Timestamp(
        vector=np.asarray(vector, dtype=np.int64), sender_keys=tuple(keys), seq=seq
    )


def clock_with(vector, own_keys=(0,)):
    clock = EntryVectorClock(len(vector), own_keys)
    clock.initialize_from(vector)
    return clock


class TestNullDetector:
    def test_never_alerts_but_counts(self):
        detector = NullDetector()
        clock = clock_with([5, 5, 5])
        assert detector.check(clock, ts([6, 6, 6], (0,))) is False
        assert detector.stats.checks == 1
        assert detector.stats.alerts == 0
        assert detector.stats.alert_rate == 0.0


class TestBasicAlertDetector:
    def test_silent_when_own_increment_visible(self):
        # V_i[x] == m.V[x] - 1 on a sender key: the message brings its own
        # increment, everything normal.
        detector = BasicAlertDetector()
        clock = clock_with([0, 3, 0, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is False

    def test_alerts_when_all_sender_entries_covered(self):
        detector = BasicAlertDetector()
        clock = clock_with([1, 4, 0, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is True

    def test_partial_covering_is_silent(self):
        # One sender entry covered, the other not: no alert (the paper's
        # error needs *all* entries matched by concurrent messages).
        detector = BasicAlertDetector()
        clock = clock_with([1, 3, 0, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is False

    def test_stats_accumulate(self):
        detector = BasicAlertDetector()
        clock = clock_with([1, 1])
        detector.check(clock, ts([1, 1], (0,)))  # covered -> alert
        detector.check(clock, ts([2, 1], (0,)))  # V[0]=1=2-1 -> silent
        assert detector.stats.checks == 2
        assert detector.stats.alerts == 1
        assert detector.stats.alert_rate == 0.5


class TestRefinedAlertDetector:
    def test_requires_a_witness_in_recent_list(self):
        detector = RefinedAlertDetector(max_entries=8)
        clock = clock_with([1, 4, 0, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        # Covered, but L is empty: Algorithm 5 stays silent where
        # Algorithm 4 would alert.
        assert detector.check(clock, message) is False

    def test_alerts_with_dominating_witness(self):
        detector = RefinedAlertDetector(max_entries=8)
        witness = ts([2, 5, 2, 0], (2,), seq=3)
        detector.on_delivered(witness, now=0.0)
        clock = clock_with([2, 5, 2, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is True

    def test_non_dominating_witness_is_silent(self):
        detector = RefinedAlertDetector(max_entries=8)
        witness = ts([2, 3, 2, 0], (2,), seq=3)  # entry 1: 3 < 4
        detector.on_delivered(witness, now=0.0)
        clock = clock_with([2, 5, 2, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is False

    def test_window_eviction(self):
        detector = RefinedAlertDetector(window=100.0, max_entries=8)
        witness = ts([2, 5, 2, 0], (2,))
        detector.on_delivered(witness, now=0.0)
        assert detector.recent_size == 1
        clock = clock_with([2, 5, 2, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        # Within the window the witness counts...
        assert detector.check(clock, message, now=50.0) is True
        # ...after it, the witness is gone and the alert disappears.
        assert detector.check(clock, message, now=201.0) is False
        assert detector.recent_size == 0

    def test_max_entries_bound(self):
        detector = RefinedAlertDetector(max_entries=3)
        for seq in range(10):
            detector.on_delivered(ts([seq, 0], (0,), seq=seq + 1), now=float(seq))
        assert detector.recent_size == 3

    def test_strict_mode_needs_strictly_greater(self):
        strict = RefinedAlertDetector(max_entries=8, strict_domination=True)
        lenient = RefinedAlertDetector(max_entries=8)
        witness = ts([1, 4, 2, 0], (2,))
        for detector in (strict, lenient):
            detector.on_delivered(witness, now=0.0)
        clock = clock_with([1, 4, 2, 0])  # equality, not strictly greater
        message = ts([1, 4, 2, 0], (0, 1))
        assert lenient.check(clock, message) is True
        assert strict.check(clock, message) is False

    def test_refined_alerts_subset_of_basic(self):
        # On identical inputs, every refined alert is also a basic alert
        # (the refinement only removes alerts).
        basic = BasicAlertDetector()
        refined = RefinedAlertDetector(max_entries=16)
        clock = clock_with([3, 3, 3, 3])
        witness = ts([3, 3, 3, 3], (3,))
        refined.on_delivered(witness, now=0.0)
        probes = [
            ts([1, 1, 1, 1], (0,)),
            ts([3, 3, 3, 3], (0, 1)),
            ts([4, 3, 3, 3], (0,)),
        ]
        for probe in probes:
            if refined.check(clock, probe):
                assert basic.check(clock, probe)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RefinedAlertDetector(max_entries=0)
        with pytest.raises(ConfigurationError):
            RefinedAlertDetector(window=0.0)

    def test_size_mismatch_witness_skipped(self):
        detector = RefinedAlertDetector(max_entries=8)
        detector.on_delivered(ts([9, 9], (0,)), now=0.0)  # from another epoch
        clock = clock_with([1, 4, 2, 0])
        message = ts([1, 4, 2, 0], (0, 1))
        assert detector.check(clock, message) is False
