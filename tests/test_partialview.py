"""Tests for lpbcast-style partial-view gossip."""

import pytest

from repro.core.errors import ConfigurationError
from repro.sim import (
    GaussianDelayModel,
    PartialViewGossip,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)
from repro.sim.network import ConstantDelayModel
from tests.test_dissemination import RecordingContext, make_message


class TestViews:
    def test_view_initialised_from_membership_sample(self):
        context = RecordingContext(list(range(50)), seed=1)
        strategy = PartialViewGossip(ConstantDelayModel(10), fanout=4, view_size=8)
        strategy.disseminate(context, make_message(), 0)
        view = strategy.view_of(0)
        assert len(view) == 8
        assert 0 not in view
        assert all(peer in range(50) for peer in view)

    def test_small_system_view_capped_by_membership(self):
        context = RecordingContext(["a", "b", "c"], seed=2)
        strategy = PartialViewGossip(ConstantDelayModel(10), fanout=2, view_size=10)
        strategy.disseminate(context, make_message(), "a")
        assert len(strategy.view_of("a")) == 2

    def test_pushes_stay_inside_the_view(self):
        context = RecordingContext(list(range(50)), seed=3)
        strategy = PartialViewGossip(ConstantDelayModel(10), fanout=5, view_size=8)
        strategy.disseminate(context, make_message(), 0)
        view = set(strategy.view_of(0))
        targets = {node for node, _, _ in context.scheduled}
        assert targets <= view
        assert len(targets) == 5

    def test_merge_bounded_and_self_free(self):
        context = RecordingContext(list(range(30)), seed=4)
        strategy = PartialViewGossip(
            ConstantDelayModel(10), fanout=3, view_size=5, merge_probability=1.0
        )
        message = make_message()
        strategy.disseminate(context, message, 0)
        target = context.scheduled[0][0]
        strategy.on_first_reception(context, message, target)
        view = strategy.view_of(target)
        assert len(view) <= 5
        assert target not in view

    def test_forget_drops_view(self):
        context = RecordingContext(list(range(10)), seed=5)
        strategy = PartialViewGossip(ConstantDelayModel(10), fanout=2, view_size=4)
        strategy.disseminate(context, make_message(), 0)
        strategy.forget(0)
        assert strategy.view_of(0) == ()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartialViewGossip(ConstantDelayModel(10), fanout=0)
        with pytest.raises(ConfigurationError):
            PartialViewGossip(ConstantDelayModel(10), fanout=5, view_size=4)
        with pytest.raises(ConfigurationError):
            PartialViewGossip(ConstantDelayModel(10), piggyback_size=-1)
        with pytest.raises(ConfigurationError):
            PartialViewGossip(ConstantDelayModel(10), merge_probability=1.5)


class TestEndToEnd:
    def run_with(self, merge_probability, seed=8, duration=12_000.0):
        delay = GaussianDelayModel()
        config = SimulationConfig(
            n_nodes=60,
            r=40,
            k=3,
            key_assigner="random-colliding",
            duration_ms=duration,
            seed=seed,
            workload=PoissonWorkload(600.0),
            delay_model=delay,
            dissemination=PartialViewGossip(
                delay,
                fanout=8,
                view_size=15,
                piggyback_size=3,
                merge_probability=merge_probability,
            ),
            track_latency=False,
        )
        result = run_simulation(config)
        expected = result.sent * (config.n_nodes - 1)
        return result, result.delivered_remote / expected if expected else 0.0

    def test_reasonable_coverage_without_membership_knowledge(self):
        result, coverage = self.run_with(merge_probability=0.02)
        assert coverage > 0.7
        assert result.duplicates > 0  # gossip redundancy

    def test_unthrottled_view_merging_collapses_coverage(self):
        """The measured rich-get-richer effect: folding a membership
        sample into the view on *every* reception lets popular ids take
        over all views, shrinking the effective overlay."""
        _, throttled = self.run_with(merge_probability=0.02)
        _, unthrottled = self.run_with(merge_probability=1.0)
        assert unthrottled < throttled
