"""A causal group chat over real (and deliberately lossy) UDP sockets.

The deployment path end-to-end, assembled entirely by the
:mod:`repro.api` factory: three chat participants, each one a
``create_node()`` call, exchange messages through the binary wire codec
over loopback UDP.  A fault injector drops 25% of all datagrams and
duplicates another 10% — the reliable session (acks + NACK-driven
retransmission) and the periodic anti-entropy exchange recover every
loss, and the (R, K) ordering layer keeps the causal chains intact:
"re: ..." never appears before the message it answers, at any
participant.

Run:  python examples/async_chat.py
"""

import asyncio

from repro import NodeConfig, create_node
from repro.net import FaultyTransport, UdpTransport
from repro.util.rng import RandomSource

NAMES = ["ana", "ben", "chloé"]
CONFIG = NodeConfig(
    r=64,
    k=3,
    detector="basic",
    ack_timeout=0.02,          # aggressive: loopback RTT is tiny
    anti_entropy_interval=0.1,
)
DROP_RATE, DUPLICATE_RATE = 0.25, 0.10


async def build_room():
    nodes = {}
    for index, name in enumerate(NAMES):
        transport = FaultyTransport(
            await UdpTransport.create(),
            drop_rate=DROP_RATE,
            duplicate_rate=DUPLICATE_RATE,
            rng=RandomSource(seed=40 + index).spawn("chat-faults"),
        )
        transcript = []

        def on_delivery(record, transcript=transcript):
            transcript.append(f"{record.message.sender}: {record.message.payload}")

        node = await create_node(
            name, CONFIG, transport=transport, on_delivery=on_delivery
        )
        node.transcript = transcript
        nodes[name] = node
    for name, node in nodes.items():
        for other in NAMES:
            if other != name:
                node.add_peer(nodes[other].local_address)
    return nodes


async def settle(nodes, expected, timeout=10.0):
    """Wait until every node's transcript reaches the expected length."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if all(len(node.transcript) >= expected for node in nodes.values()):
            return
        await asyncio.sleep(0.01)
    raise TimeoutError("chat did not converge in time")


async def conversation():
    nodes = await build_room()
    ana, ben, chloe = (nodes[name] for name in NAMES)

    await ana.broadcast("anyone up for lunch?")
    await settle(nodes, 1)
    await ben.broadcast("re: lunch — yes! the usual place?")
    await chloe.broadcast("I brought my own today")  # concurrent with ben's
    await settle(nodes, 3)
    await ana.broadcast("re: usual place — see you at noon")
    await settle(nodes, 4)

    print(__doc__)
    for name in NAMES:
        print(f"--- transcript at {name} ---")
        for line in nodes[name].transcript:
            print(f"  {line}")
        print()

    # The causal chains hold at every participant.
    for name in NAMES:
        transcript = nodes[name].transcript
        lunch = next(i for i, l in enumerate(transcript) if "anyone up" in l)
        reply = next(i for i, l in enumerate(transcript) if "the usual place?" in l)
        confirm = next(i for i, l in enumerate(transcript) if "see you at noon" in l)
        assert lunch < reply < confirm, f"causal order broken at {name}"
    print("causal chains intact at every participant "
          "(question < reply < confirmation)")

    total = nodes["ana"].transport_stats()
    for name in ("ben", "chloé"):
        total = total.merge(nodes[name].transport_stats())
    dropped = sum(node.transport.dropped for node in nodes.values())
    print(f"the wire dropped {dropped} datagrams; the runtime answered with "
          f"{total.retransmits} retransmissions, {total.nacks_sent} NACKs and "
          f"{total.digests_sent} anti-entropy digests")

    for node in nodes.values():
        await node.close()


if __name__ == "__main__":
    asyncio.run(conversation())
