"""A causal group chat over the asyncio deployment layer.

The deployment path end-to-end: three chat participants exchange
messages through the binary wire codec over an in-process asyncio bus
whose delays follow the paper's N(100, 20) network model (time-scaled so
the demo runs in real milliseconds).  Replies are causally chained —
"re: ..." must never appear before the message it answers, and the
(R, K) ordering layer guarantees exactly that at every participant.

Swap :class:`LocalAsyncBus` for :class:`repro.net.UdpTransport` and the
same code runs over real sockets (see ``tests/test_net.py``).

Run:  python examples/async_chat.py
"""

import asyncio

from repro.core import BasicAlertDetector, ProbabilisticCausalClock, RandomKeyAssigner
from repro.net import AsyncCausalPeer, LocalAsyncBus
from repro.sim.network import GaussianDelayModel
from repro.util.rng import RandomSource

R, K = 64, 3
NAMES = ["ana", "ben", "chloé"]


def build_room(bus):
    assigner = RandomKeyAssigner(R, K, rng=RandomSource(seed=99))
    peers = {}
    for name in NAMES:
        transcript = []

        def on_delivery(record, transcript=transcript, name=name):
            sender = record.message.sender
            text = record.message.payload
            transcript.append(f"{sender}: {text}")

        peer = AsyncCausalPeer(
            peer_id=name,
            clock=ProbabilisticCausalClock(R, assigner.assign(name).keys),
            transport=bus.attach(name),
            detector=BasicAlertDetector(),
            on_delivery=on_delivery,
        )
        peer.transcript = transcript
        peers[name] = peer
    for name, peer in peers.items():
        for other in NAMES:
            if other != name:
                peer.add_peer(other)
    return peers


async def conversation():
    bus = LocalAsyncBus(
        delay_model=GaussianDelayModel(mean=100, std=20, skew_std=20),
        rng=RandomSource(seed=7).spawn("chat-net"),
        time_scale=0.001,  # 100 simulated ms ~ 0.1 real ms
    )
    peers = build_room(bus)
    ana, ben, chloe = (peers[name] for name in NAMES)

    await ana.broadcast("anyone up for lunch?")
    await bus.drain()
    await ben.broadcast("re: lunch — yes! the usual place?")
    await chloe.broadcast("I brought my own today")  # concurrent with ben's
    await bus.drain()
    await ana.broadcast("re: usual place — see you at noon")
    await bus.drain()

    print(__doc__)
    for name in NAMES:
        print(f"--- transcript at {name} ---")
        for line in peers[name].transcript:
            print(f"  {line}")
        print()

    # The causal chains hold at every participant.
    for name in NAMES:
        transcript = peers[name].transcript
        lunch = next(i for i, l in enumerate(transcript) if "anyone up" in l)
        reply = next(i for i, l in enumerate(transcript) if "the usual place?" in l)
        confirm = next(i for i, l in enumerate(transcript) if "see you at noon" in l)
        assert lunch < reply < confirm, f"causal order broken at {name}"
    print("causal chains intact at every participant "
          "(question < reply < confirmation)")


if __name__ == "__main__":
    asyncio.run(conversation())
