"""A tour of the (n, r, k) clock family — and how to dimension yours.

The paper frames every practical causal-ordering timestamp as a triplet
(system size, vector size, entries per process):

    Lamport    (n, 1, 1)   tiny, orders almost nothing
    vector     (n, n, 1)   exact, grows with the system
    plausible  (n, r, 1)   fixed size, one entry per process
    this paper (n, r, k)   fixed size, K entries per process

This example (1) runs the same small workload under all four and prints
what each one costs and catches, then (2) shows the dimensioning recipe
for a target deployment: pick R from your overhead budget, estimate the
concurrency X from your rates, set K = ln2·R/X.

Run:  python examples/clock_family_tour.py
"""

from repro.analysis.tables import render_table
from repro.core.theory import (
    expected_concurrency,
    optimal_k,
    optimal_k_int,
    p_error,
    timestamp_overhead_bits,
)
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation

N = 80
R = 50
K = 3


def run_family() -> None:
    rows = []
    for clock in ("vector", "probabilistic", "plausible", "lamport"):
        result = run_simulation(
            SimulationConfig(
                n_nodes=N,
                r=R,
                k=K,
                clock=clock,
                key_assigner="random-colliding",
                workload=PoissonWorkload(300.0),
                duration_ms=15_000.0,
                seed=5,
            )
        )
        if clock == "vector":
            bits = timestamp_overhead_bits(N, 1)
        elif clock == "lamport":
            bits = timestamp_overhead_bits(1, 1)
        elif clock == "plausible":
            bits = timestamp_overhead_bits(R, 1)
        else:
            bits = timestamp_overhead_bits(R, K)
        rows.append(
            [
                clock,
                bits // 8,
                result.eps_min,
                result.eps_max,
                result.latency["mean"],
            ]
        )
    print(
        render_table(
            ["clock", "timestamp bytes", "eps_min", "eps_max", "mean latency ms"],
            rows,
            title=f"identical traffic, N={N}, R={R}, K={K}",
        )
    )


def dimension(n_nodes: int, sends_per_node_per_s: float, delay_ms: float, budget_bytes: int) -> None:
    print(f"\nDimensioning for N={n_nodes}, {sends_per_node_per_s}/s per node, "
          f"{delay_ms} ms delay, {budget_bytes} B timestamp budget:")
    receive_rate = (n_nodes - 1) * sends_per_node_per_s
    x = expected_concurrency(receive_rate, delay_ms)
    # Largest R whose timestamp fits the budget (4-byte entries).
    r = max(1, (budget_bytes * 8) // 33)
    k = optimal_k_int(r, x, k_max=16)
    print(f"  concurrency X = {x:.1f}")
    print(f"  vector size R = {r} (fits {timestamp_overhead_bits(r, k)//8} B)")
    print(f"  K = ln2*R/X = {optimal_k(r, max(x, 0.1)):.2f} -> use K = {k}")
    print(f"  predicted covering probability P_err = {p_error(r, k, max(x, 0.1)):.2e}")
    print(f"  (a vector clock would cost {timestamp_overhead_bits(n_nodes, 1)//8} B/message)")


if __name__ == "__main__":
    print(__doc__)
    run_family()
    dimension(n_nodes=10_000, sends_per_node_per_s=0.01, delay_ms=100, budget_bytes=512)
    dimension(n_nodes=1_000, sends_per_node_per_s=0.2, delay_ms=100, budget_bytes=512)
