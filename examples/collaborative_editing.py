"""Collaborative text editing over probabilistic causal broadcast.

The paper's introduction motivates the mechanism with collaborative
applications; this example builds one: every node runs an RGA sequence
CRDT (the data type behind collaborative editors) and keeps typing
characters into a shared document while the simulated network delivers
operations through the probabilistic causal ordering layer.

What to watch:

* all replicas converge to the same document once the run drains —
  protocol-level dedup + FIFO hold-back do the heavy lifting;
* under the probabilistic clock, occasional causal violations surface as
  *anomalies* (an insert arriving before its parent); the RGA parks such
  orphans and integrates them when the parent shows up, so convergence
  survives;
* the same workload over exact vector clocks shows zero anomalies — the
  price is O(N) timestamps on every message.

Run:  python examples/collaborative_editing.py
"""

import dataclasses
import string

from repro.crdt import RGA, ROOT
from repro.sim import PoissonWorkload, SimulationConfig
from repro.sim.runner import NodeApplication, run_simulation
from repro.util.rng import RandomSource


class Editor(NodeApplication):
    """One collaborating author: inserts (and sometimes deletes) characters."""

    def __init__(self, node_id: int, rng: RandomSource):
        self.doc = RGA(node_id)
        self._rng = rng

    def make_payload(self, node_id, now):
        visible = self.doc.visible_ids()
        if visible and self._rng.random() < 0.15:
            return self.doc.delete(self._rng.choice(visible))
        parent = ROOT if not visible or self._rng.random() < 0.2 else self._rng.choice(visible)
        letter = self._rng.choice(string.ascii_lowercase)
        return self.doc.insert_after(parent, letter)

    def on_deliver(self, node_id, record, verdict, now):
        self.doc.apply_remote(record.message.payload)


def run_session(clock: str, seed: int = 11):
    editors = {}
    rng = RandomSource(seed=seed).spawn("editors")

    def factory(node_id):
        editor = Editor(node_id, rng.spawn(f"editor-{node_id}"))
        editors[node_id] = editor
        return editor

    config = SimulationConfig(
        n_nodes=25,
        r=24,  # deliberately tight so the probabilistic run shows anomalies
        k=2,
        clock=clock,
        key_assigner="random-colliding",
        workload=PoissonWorkload(300.0),
        duration_ms=30_000.0,
        seed=seed,
        application_factory=factory,
    )
    result = run_simulation(config)
    return result, editors


def describe(clock: str) -> None:
    result, editors = run_session(clock)
    documents = {repr(editor.doc.value()) for editor in editors.values()}
    anomalies = sum(editor.doc.anomalies for editor in editors.values())
    orphans = sum(editor.doc.orphan_count for editor in editors.values())
    sample = next(iter(editors.values())).doc.as_text()

    print(f"--- clock = {clock} ---")
    print(f"operations broadcast: {result.sent}; deliveries: {result.delivered_remote}")
    print(f"ordering violations (proven): {result.counters.violations}")
    print(f"RGA anomalies (insert before parent / delete before insert): {anomalies}")
    print(f"replicas converged: {len(documents) == 1} (distinct states: {len(documents)})")
    print(f"orphans left parked: {orphans}")
    print(f"document ({len(sample)} chars): {sample[:60]}{'...' if len(sample) > 60 else ''}")
    print()

    assert len(documents) == 1, "replicas must converge after the drain"
    assert orphans == 0
    if clock == "vector":
        assert anomalies == 0


if __name__ == "__main__":
    print(__doc__)
    describe("probabilistic")
    describe("vector")
