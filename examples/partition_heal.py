"""A network partition, observed and healed.

Injects a split into a running system (even vs odd nodes for the middle
ten seconds), watches it through the trace recorder, heals it with
periodic anti-entropy, and prints the timeline: progress during the
split, the backlog burst at heal time, and the final fully consistent
state.

Run:  python examples/partition_heal.py
"""

from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PartitionWindow,
    PartitionedDissemination,
    PoissonWorkload,
    SimulationConfig,
    TraceKind,
    TraceRecorder,
    TracingApplication,
    run_simulation,
)

SPLIT_START, SPLIT_END = 10_000.0, 20_000.0
DURATION = 30_000.0


def run(recovery: str):
    delay = GaussianDelayModel()
    dissemination = PartitionedDissemination(
        DirectBroadcast(delay),
        [PartitionWindow.split_even_odd(SPLIT_START, SPLIT_END)],
    )
    recorder = TraceRecorder(capacity=500_000)
    config = SimulationConfig(
        n_nodes=30,
        r=50,
        k=3,
        key_assigner="random-colliding",
        workload=PoissonWorkload(400.0),
        delay_model=delay,
        dissemination=dissemination,
        duration_ms=DURATION,
        seed=21,
        recovery=recovery,
        recovery_period_ms=1_500.0,
        application_factory=TracingApplication(recorder),
    )
    return run_simulation(config), dissemination, recorder


def phase_of(time_ms: float) -> str:
    if time_ms < SPLIT_START:
        return "before"
    if time_ms < SPLIT_END:
        return "during"
    return "after"


def main() -> None:
    print(__doc__)
    result, dissemination, recorder = run(recovery="periodic")

    deliveries_by_phase = {"before": 0, "during": 0, "after": 0}
    for event in recorder.select(kind=TraceKind.DELIVER):
        deliveries_by_phase[phase_of(event.time)] += 1

    print(f"copies dropped at the cut: {dissemination.dropped_by_partition}")
    print("deliveries per phase (10 s each):")
    for phase in ("before", "during", "after"):
        marker = " <- split" if phase == "during" else (" <- heal backlog" if phase == "after" else "")
        print(f"  {phase:7s} {deliveries_by_phase[phase]:7d}{marker}")
    print()
    print(f"anti-entropy sessions: {result.recovery_sessions}, "
          f"messages repaired: {result.recovery_repaired}")
    print(f"stuck messages after the run: {result.stuck_pending} (must be 0)")
    print(f"ordering error bounds: eps_min={result.eps_min:.2e}, "
          f"eps_max={result.eps_max:.2e}")

    stranded, _, _ = run(recovery="none")
    print()
    print(f"the same split without anti-entropy strands "
          f"{stranded.stuck_pending} messages forever "
          f"({stranded.undelivered_messages} never fully delivered)")

    assert result.stuck_pending == 0
    assert stranded.stuck_pending > 0
    assert deliveries_by_phase["during"] > 0  # each side kept working


if __name__ == "__main__":
    main()
