"""Continuous joins and leaves — the scenario vector clocks cannot serve.

The paper's opening argument: collaborative and social systems are large
*and churning*, and a vector clock needs to know the exact process count,
so it cannot follow.  The (R, K) scheme lets a newcomer draw a set_id
locally and join immediately.

This example runs a session where membership changes every couple of
seconds (Poisson joins and leaves around a 40-node core), and shows:

* the system stays live: every broadcast reaches every *current* member
  and nothing is left undeliverable;
* newcomers bootstrap from a state snapshot and participate instantly;
* the error rate remains at its static-configuration level;
* the timestamp stays exactly R integers + K key indices, regardless of
  how many processes ever existed — while a vector clock sized for the
  union of all participants keeps growing.

Run:  python examples/churn_membership.py
"""

from repro.core.theory import timestamp_overhead_bits
from repro.sim import (
    PoissonChurn,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)


def main() -> None:
    print(__doc__)
    config = SimulationConfig(
        n_nodes=40,
        r=100,
        k=4,
        key_assigner="random-colliding",
        workload=PoissonWorkload(400.0),
        churn=PoissonChurn(
            join_interval_ms=2_000.0,
            leave_interval_ms=2_500.0,
            min_population=20,
        ),
        duration_ms=40_000.0,
        seed=23,
    )
    result = run_simulation(config)

    ever_existed = config.n_nodes + result.joins
    print(f"initial population: {config.n_nodes}")
    print(f"joins: {result.joins}, leaves: {result.leaves}")
    print(f"mean population over the run: {result.mean_membership:.1f}")
    print(f"processes that ever existed: {ever_existed}")
    print()
    print(f"messages broadcast: {result.sent}, delivered: {result.delivered_remote}")
    print(f"undeliverable leftovers: {result.stuck_pending} (must be 0)")
    print(
        f"error bounds under churn: eps_min={result.eps_min:.2e}, "
        f"eps_max={result.eps_max:.2e}"
    )
    print()
    rk_bytes = timestamp_overhead_bits(config.r, config.k) // 8
    vc_bytes = timestamp_overhead_bits(ever_existed, 1) // 8
    print(f"(R={config.r}, K={config.k}) timestamp: {rk_bytes} bytes — churn-invariant")
    print(
        f"vector clock over every process ever seen: {vc_bytes} bytes — and growing"
    )

    assert result.stuck_pending == 0
    assert result.joins > 0 and result.leaves > 0


if __name__ == "__main__":
    main()
