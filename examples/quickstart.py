"""Quickstart: the probabilistic causal broadcast in five minutes.

Walks through the public API bottom-up:

1. give two processes (R, K) clocks with random key sets;
2. broadcast and deliver messages by hand, watching Algorithm 2 delay a
   causally dependent message;
3. run a whole simulated system and read the headline numbers the paper
   reports (error-rate bounds, alert statistics, latency).

Run:  python examples/quickstart.py
"""

from repro.core import (
    BasicAlertDetector,
    CausalBroadcastEndpoint,
    ProbabilisticCausalClock,
    RandomKeyAssigner,
    optimal_k,
    p_error,
)
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation
from repro.util.rng import RandomSource


def hand_driven_protocol() -> None:
    print("=" * 70)
    print("1. The mechanism by hand (Algorithms 1-3)")
    print("=" * 70)

    # Every process draws K entries of an R-entry vector (Algorithm 3).
    r, k = 16, 3
    assigner = RandomKeyAssigner(r, k, rng=RandomSource(seed=2024))
    alice_keys = assigner.assign("alice").keys
    bob_keys = assigner.assign("bob").keys
    carol_keys = assigner.assign("carol").keys
    print(f"R={r}, K={k}")
    print(f"f(alice) = {alice_keys}, f(bob) = {bob_keys}, f(carol) = {carol_keys}")

    alice = CausalBroadcastEndpoint(
        "alice", ProbabilisticCausalClock(r, alice_keys), detector=BasicAlertDetector()
    )
    bob = CausalBroadcastEndpoint(
        "bob", ProbabilisticCausalClock(r, bob_keys), detector=BasicAlertDetector()
    )
    carol = CausalBroadcastEndpoint(
        "carol", ProbabilisticCausalClock(r, carol_keys), detector=BasicAlertDetector()
    )

    # Alice broadcasts; Bob delivers it and replies (a causal chain).
    hello = alice.broadcast("hello")
    print(f"\nalice broadcasts {hello.payload!r}; timestamp = {hello.timestamp.as_tuple()}")
    bob.on_receive(hello)
    reply = bob.broadcast("hello back")
    print(f"bob delivers it and replies; timestamp = {reply.timestamp.as_tuple()}")

    # Carol receives the reply FIRST: Algorithm 2 holds it back.
    delivered = carol.on_receive(reply)
    print(f"\ncarol receives the reply first -> delivered now: {delivered}")
    print(f"carol's pending queue: {carol.pending_count} message(s)")

    # The original arrives: both messages deliver, in causal order.
    delivered = carol.on_receive(hello)
    order = [record.message.payload for record in delivered]
    print(f"the original arrives -> carol delivers in causal order: {order}")


def dimensioning() -> None:
    print()
    print("=" * 70)
    print("2. Dimensioning a deployment (Section 5.3)")
    print("=" * 70)
    receive_rate = 200.0  # messages/s arriving at each node
    delay_ms = 100.0
    concurrency = receive_rate * delay_ms / 1000.0
    r = 100
    print(f"receive rate {receive_rate}/s, delay {delay_ms} ms -> X = {concurrency}")
    print(f"optimal K = ln2 * R / X = {optimal_k(r, concurrency):.2f}  (paper: 3.5)")
    for k in (1, 2, 4, 8):
        print(f"  P_err(R={r}, K={k}, X={concurrency:.0f}) = {p_error(r, k, concurrency):.4f}")


def whole_system() -> None:
    print()
    print("=" * 70)
    print("3. A whole simulated system (Section 5.4)")
    print("=" * 70)
    config = SimulationConfig(
        n_nodes=60,
        r=100,
        k=4,
        key_assigner="random-colliding",
        workload=PoissonWorkload(400.0),  # each node sends every ~0.4 s
        detector="basic",
        duration_ms=20_000.0,
        seed=7,
    )
    result = run_simulation(config)
    print(result.summary())
    print(
        f"error-rate bounds: eps_min={result.eps_min:.2e}  eps_max={result.eps_max:.2e}"
    )
    print(
        f"alerts: rate={result.alerts.alert_rate:.2e}, "
        f"recall on bypassed deliveries={result.alerts.recall_late:.2f} "
        "(Algorithm 4 guarantees 1.00)"
    )
    print(
        f"latency: mean={result.latency['mean']:.1f} ms, "
        f"p99={result.latency['p99']:.1f} ms"
    )
    assert result.undelivered_messages == 0


if __name__ == "__main__":
    hand_driven_protocol()
    dimensioning()
    whole_system()
