"""Delivery-error alerts driving anti-entropy recovery (Section 4.2).

The paper's second contribution: Algorithms 4/5 raise an alert exactly
when a delivery *may* have violated causal order, so the application can
run its (costly) recovery procedure only when needed — "in case there is
no alert, we are sure there is no error".

This example replays the paper's Figure 2 error scenario with a real
replicated shopping list (an OR-Set) on top:

1. p_i adds "milk"; p_j sees it and removes it; two concurrent messages
   from p_1 and p_2 cover p_i's vector entries at p_k;
2. p_k wrongly delivers the removal before the addition — the OR-Set
   records an anomaly;
3. when the late addition arrives, Algorithm 4 raises its alert;
4. the alert triggers an anti-entropy session with a healthy peer, after
   which both replicas are provably identical.

Run:  python examples/alert_and_recovery.py
"""

from repro.core import (
    BasicAlertDetector,
    CausalBroadcastEndpoint,
    ProbabilisticCausalClock,
)
from repro.crdt import CrdtBinding, ORSet
from repro.sim.recovery import AntiEntropySession

R = 4
KEYS = {
    "p_i": (0, 1),
    "p_j": (1, 2),
    "p_k": (2, 3),
    "p_1": (0, 3),
    "p_2": (1, 3),
}


def make_node(name):
    crdt = ORSet(name)

    def factory(callback):
        return CausalBroadcastEndpoint(
            process_id=name,
            clock=ProbabilisticCausalClock(R, KEYS[name]),
            detector=BasicAlertDetector(),
            deliver_callback=callback,
        )

    return CrdtBinding.attach(factory, crdt)


def main() -> None:
    print(__doc__)
    nodes = {name: make_node(name) for name in KEYS}
    p_i, p_j, p_k = nodes["p_i"], nodes["p_j"], nodes["p_k"]
    p_1, p_2 = nodes["p_1"], nodes["p_2"]

    # The causal chain: add at p_i, observed removal at p_j.
    m = p_i.broadcast_update(p_i.crdt.add("milk"))
    p_j.endpoint.on_receive(m)
    m_prime = p_j.broadcast_update(p_j.crdt.remove("milk"))
    # Two concurrent messages jointly covering f(p_i) = {0, 1}.
    m_1 = p_1.broadcast_update(p_1.crdt.add("bread"))
    m_2 = p_2.broadcast_update(p_2.crdt.add("eggs"))

    print("p_k receives: m_2, m_1, then the removal m' (the addition m is late)")
    p_k.endpoint.on_receive(m_2)
    p_k.endpoint.on_receive(m_1)
    records = p_k.endpoint.on_receive(m_prime)
    print(f"  -> m' delivered early: {[r.message.payload[0] for r in records]}")
    print(f"  -> OR-Set anomaly recorded: {p_k.crdt.anomalies} (remove before its add)")
    print(f"  -> shopping list at p_k: {sorted(p_k.crdt.value())}")

    print("\nthe late addition m finally arrives:")
    (late,) = p_k.endpoint.on_receive(m)
    print(f"  -> Algorithm 4 alert on its delivery: {late.alert}")
    assert late.alert, "the alert must fire on the bypassed message"

    print("\nalert -> run anti-entropy with a healthy peer (p_j):")
    # Bring p_j up to date with the concurrent messages first.
    p_j.endpoint.on_receive(m_1)
    p_j.endpoint.on_receive(m_2)
    session = AntiEntropySession(
        apply_first=p_k.repair_from, apply_second=p_j.repair_from
    )
    repaired = session.reconcile(p_k.log, p_j.log)
    print(f"  -> messages exchanged during recovery: {repaired}")
    print(f"  -> p_k list: {sorted(p_k.crdt.value())}")
    print(f"  -> p_j list: {sorted(p_j.crdt.value())}")
    assert p_k.crdt.value() == p_j.crdt.value()
    print("\nreplicas identical after recovery — the add-wins tombstone kept")
    print("'milk' deleted even though its removal overtook its addition.")


if __name__ == "__main__":
    main()
