"""Crash-recovery economics of the networked node's journal.

`NodeJournal` trades WAL length against snapshot frequency
(`journal_snapshot_interval`): a small interval folds the WAL into a
snapshot often (cheap recovery, more steady-state fsync/rename work), a
large one lets the WAL grow (cheap steady state, longer replay at
restart).  This benchmark measures the trade end-to-end over real
loopback UDP: a journaled node handles a fixed pre-crash workload, is
crashed and restarted, and we record how many WAL records the restart
had to replay, how long the journal load took, and how long until
anti-entropy converged the node on the traffic it slept through.

Unlike the simulation benchmarks this one measures wall-clock of live
asyncio nodes, so the times are indicative rather than paper figures;
the *shape* asserted is the structural one: residual WAL length grows
with the snapshot interval.  Results are persisted as both the usual
text report and ``results/net_recovery.json`` for tooling.
"""

import asyncio
import json
import tempfile

from repro.api import NodeConfig, create_node
from repro.analysis.tables import render_table

from _common import RESULTS_DIR, report

SNAPSHOT_INTERVALS = (8, 64, 512)
PRE_CRASH_SENDS = 40      # journaled node's own broadcasts
PRE_CRASH_RECEIVES = 20   # peer broadcasts delivered before the crash
DOWN_WINDOW_SENDS = 10    # peer broadcasts while the node is down


async def _wait_for(predicate, timeout=30.0, interval=0.005):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def _run_one(snapshot_interval, data_dir):
    config = NodeConfig(
        r=64, k=3, ack_timeout=0.02, anti_entropy_interval=0.05,
        journal_snapshot_interval=snapshot_interval,
    )
    alice = await create_node("alice", config.replace(data_dir=data_dir))
    bob = await create_node("bob", config)
    alice.add_peer(bob.local_address)
    bob.add_peer(alice.local_address)

    for i in range(PRE_CRASH_SENDS):
        await alice.broadcast(("alice", i))
    for i in range(PRE_CRASH_RECEIVES):
        await bob.broadcast(("bob", i))
    assert await _wait_for(
        lambda: len(alice.deliveries) == PRE_CRASH_SENDS + PRE_CRASH_RECEIVES
    )
    assert await _wait_for(
        lambda: len(bob.deliveries) == PRE_CRASH_SENDS + PRE_CRASH_RECEIVES
    )

    port = alice.local_address[1]
    await alice.close()  # crash: the journal is the only persistence

    # Traffic the crashed node sleeps through; anti-entropy must heal it.
    for i in range(DOWN_WINDOW_SENDS):
        await bob.broadcast(("bob", "down", i))

    loop = asyncio.get_running_loop()
    t0 = loop.time()
    alice2 = await create_node(
        "alice", config.replace(data_dir=data_dir, port=port), start=False
    )
    load_ms = (loop.time() - t0) * 1e3
    assert alice2.recovered is not None
    wal_records = alice2.recovered.wal_records

    await alice2.start()
    alice2.add_peer(bob.local_address)
    t1 = loop.time()
    converged = await _wait_for(
        lambda: len(alice2.deliveries) == DOWN_WINDOW_SENDS
    )
    converge_ms = (loop.time() - t1) * 1e3
    assert converged, "restarted node never caught up"
    assert bob.endpoint.stats.duplicates == 0

    await alice2.close()
    await bob.close()
    return {
        "snapshot_interval": snapshot_interval,
        "wal_records_replayed": wal_records,
        "journal_load_ms": round(load_ms, 3),
        "post_crash_converge_ms": round(converge_ms, 3),
    }


def run_matrix():
    async def scenario():
        results = []
        for interval in SNAPSHOT_INTERVALS:
            with tempfile.TemporaryDirectory() as tmp:
                results.append(await _run_one(interval, tmp + "/alice"))
        return results

    return asyncio.run(scenario())


def test_net_recovery(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [
            point["snapshot_interval"],
            point["wal_records_replayed"],
            point["journal_load_ms"],
            point["post_crash_converge_ms"],
        ]
        for point in results
    ]
    table = render_table(
        ["snapshot_interval", "wal_replayed", "load_ms", "converge_ms"],
        rows,
        title=(
            f"journaled UDP node, {PRE_CRASH_SENDS} sends + "
            f"{PRE_CRASH_RECEIVES} receives pre-crash, "
            f"{DOWN_WINDOW_SENDS} missed during downtime"
        ),
    )
    report("net_recovery", table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "net_recovery.json").write_text(
        json.dumps(results, indent=2) + "\n", encoding="utf-8"
    )

    # The structural claim: a larger snapshot interval leaves more WAL to
    # replay at recovery (monotone in interval over a fixed workload).
    replayed = [point["wal_records_replayed"] for point in results]
    assert replayed == sorted(replayed), replayed
    assert replayed[0] < replayed[-1], replayed
