"""CI gate: the competitor clock and engine stay honest.

Three independent checks, one exit code:

1. **Bloom theory ratio** — a short simulation under ``clock="bloom"``
   with reception-order tracking; the oracle's measured violation rate
   (``eps_max``) must sit within an order of magnitude of the predicted
   ``P_nc · p_fp(m, h, X)`` at the *measured* reordering probability and
   concurrency.  Same tolerance philosophy as ``check_alert_sanity.py``:
   generous enough never to flake on statistics, tight enough to catch a
   dead oracle (rate ~ 0) or a broken key derivation (rate ~ P_nc).

2. **Engine equivalence** — the same probabilistic-clock traffic run
   under the ``naive``, ``indexed``, and ``hybrid`` drain engines with
   one seed.  ``hybrid`` and ``indexed`` must both be *bit-identical*
   to the naive reference (counters, totals, latency statistics) — the
   ISSUE's oracle differential requirement.  The indexed drain's
   historical hair of divergence on this workload (340 vs 342
   violations out of 21k deliveries on the seed commit) was a missed
   wakeup — local sends increment the node's own keys without telling
   the entry index — fixed by ``PendingBuffer.notify_increment``, so
   the gate is exact identity for every engine.  Every run must stay
   live (no stuck pending, no undelivered messages).

3. **Clock-family table identity** — regenerates the Section 2 design
   table (``bench_table_clock_family.build_table``) and checks the
   Bloom column equals the (r, k) column: one covering curve predicts
   both families, so the table identity breaking means the theory and
   the table drifted apart.

Exit 0 when all three hold, 1 otherwise.  Run with
``PYTHONPATH=src:benchmarks`` so both the package and the benchmark
modules resolve.
"""

import argparse
import dataclasses
import sys

from repro.core.theory import p_fp
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation

ENGINES = ("naive", "indexed", "hybrid")


def check_bloom_theory(args, failures):
    config = SimulationConfig(
        n_nodes=args.nodes, r=args.r, k=args.k, clock="bloom",
        workload=PoissonWorkload(args.lambda_ms),
        duration_ms=args.duration_ms, seed=args.seed,
        detector="none", track_reception_order=True,
    )
    result = run_simulation(config)
    predicted = result.measured_p_nc * p_fp(
        args.r, args.k, result.measured_concurrency
    )
    measured = result.counters.eps_max
    print(
        f"bloom: X={result.measured_concurrency:.2f} "
        f"P_nc={result.measured_p_nc:.4f} eps_max={measured:.4e} "
        f"predicted={predicted:.4e} "
        f"({result.counters.deliveries} deliveries)"
    )
    if predicted <= 0:
        failures.append("bloom: predicted rate is 0 (run too short to measure)")
        return
    ratio = measured / predicted
    if not (1.0 / args.tolerance) <= ratio <= args.tolerance:
        failures.append(
            f"bloom: measured eps_max {measured:.4e} is {ratio:.2f}x the "
            f"predicted P_nc*p_fp {predicted:.4e} "
            f"(allowed band {1 / args.tolerance:.2f}x..{args.tolerance:.0f}x)"
        )
    if result.stuck_pending or result.undelivered_messages:
        failures.append(
            f"bloom: liveness broken (stuck={result.stuck_pending}, "
            f"undelivered={result.undelivered_messages})"
        )


def check_engine_equivalence(args, failures):
    base = SimulationConfig(
        n_nodes=args.nodes, r=args.r, k=args.k,
        workload=PoissonWorkload(args.lambda_ms),
        duration_ms=args.duration_ms / 2, seed=args.seed,
        detector="basic",
    )
    results = {}
    for engine in ENGINES:
        results[engine] = run_simulation(
            dataclasses.replace(base, engine=engine)
        )
    reference = results["naive"]
    print(
        f"engines: sent={reference.sent} "
        f"delivered={reference.delivered_remote} "
        f"eps_max={reference.counters.eps_max:.4e} (naive reference)"
    )
    for engine in ENGINES:
        result = results[engine]
        if result.stuck_pending or result.undelivered_messages:
            failures.append(
                f"{engine}: liveness broken (stuck={result.stuck_pending}, "
                f"undelivered={result.undelivered_messages})"
            )
        if engine == "naive":
            continue
        # Full bit-identity with the reference drain for every engine:
        # counters (the oracle's per-delivery verdicts), totals, and the
        # latency summary, which is order-sensitive through delivery
        # timing.  Identical values here mean identical delivery order.
        fields = ("counters", "sent", "delivered_remote", "latency")
        for field in fields:
            got, want = getattr(result, field), getattr(reference, field)
            if got != want:
                failures.append(
                    f"{engine}: {field} diverged from the naive reference "
                    f"({got!r} != {want!r})"
                )
        if result.counters.deliveries != reference.counters.deliveries:
            failures.append(
                f"{engine}: delivery count {result.counters.deliveries} != "
                f"naive reference {reference.counters.deliveries}"
            )


def check_table_identity(failures):
    try:
        from bench_table_clock_family import build_table
    except ImportError:
        failures.append(
            "table: cannot import bench_table_clock_family "
            "(run with PYTHONPATH=src:benchmarks)"
        )
        return
    rows = build_table()
    # Columns 7/8 are the (r, k) clock, 9/10 the Bloom clock at the
    # same (m, h): identical wire size, identical covering probability.
    for row in rows:
        if row[9] != row[7] or row[10] != row[8]:
            failures.append(
                f"table: bloom column drifted from the (r, k) column at "
                f"n={row[0]}: B {row[9]} vs {row[7]}, "
                f"p {row[10]} vs {row[8]}"
            )
    print(f"table: bloom column identity holds across {len(rows)} system sizes")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--r", type=int, default=40)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--lambda-ms", type=float, default=250.0)
    parser.add_argument("--duration-ms", type=float, default=12_000.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed multiplicative deviation either way "
                             "for the bloom theory ratio")
    args = parser.parse_args()

    failures = []
    check_bloom_theory(args, failures)
    check_engine_equivalence(args, failures)
    check_table_identity(failures)

    if failures:
        print("\ncompetitor gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncompetitor gate passed (bloom theory, engine equivalence, "
          "table identity)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
