"""Section 5.3 / 5.4 — accuracy of the closed-form error estimate.

The paper bounds the wrong-delivery probability by ``P ≤ P_nc · P_err``
with ``P_err(R, K, X) = (1 − (1 − 1/R)^{KX})^K`` and validates the
estimate by simulation ("we show the accuracy of the estimation of the
probability of an error occurrence").

This benchmark sweeps the concurrency X, measures both the violation
rate (ε_min ... ε_max) and the network reordering rate P_nc, and checks:

* the measured error never exceeds the bound ``P_nc · P_err`` (within
  sampling slack) — the bound is sound;
* bound and measurement rise together across two decades of X — the
  estimate tracks the phenomenon, which is what makes the dimensioning
  rule K = ln2·R/X usable.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import render_table
from repro.core.theory import p_error
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    run_duration,
    report,
    scaled_duration,
    series_chart,
)

N_NODES = 150
R = 100
K = 4
X_VALUES = [5.0, 10.0, 20.0, 40.0]
TARGET_DELIVERIES = 70_000.0


def run_theory_accuracy():
    def config_for(base, x):
        lam = lambda_for_concurrency(N_NODES, x)
        duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
        return dataclasses.replace(
            base, workload=PoissonWorkload(lam), duration_ms=duration
        )

    base = SimulationConfig(
        n_nodes=N_NODES,
        r=R,
        k=K,
        key_assigner="random-colliding",
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        track_latency=False,
        track_reception_order=True,
    )
    return sweep_parameter(
        base,
        values=X_VALUES,
        make_config=config_for,
        repeats=1,
        seed_base=700,
    )


def test_theory_accuracy(benchmark):
    points = benchmark.pedantic(run_theory_accuracy, rounds=1, iterations=1)

    rows = []
    bounds = []
    for point in points:
        result = point.results[0]
        x = point.value
        p_nc = result.measured_p_nc
        bound = p_nc * p_error(R, K, x)
        bounds.append(bound)
        rows.append(
            [
                x,
                point.concurrency.value,
                p_nc,
                p_error(R, K, x),
                bound,
                point.eps_min.value,
                point.eps_max.value,
                point.deliveries,
            ]
        )
    table = render_table(
        [
            "X nominal",
            "X measured",
            "P_nc measured",
            "P_err theory",
            "bound P_nc*P_err",
            "eps_min",
            "eps_max",
            "deliveries",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}",
    )
    chart = series_chart(
        "measured error vs theoretical bound",
        {
            "eps_min": [(p.value, max(p.eps_min.value, 1e-8)) for p in points],
            "eps_max": [(p.value, max(p.eps_max.value, 1e-8)) for p in points],
            "bound": [(x, max(b, 1e-8)) for x, b in zip(X_VALUES, bounds)],
        },
        x_label="X",
    )
    report("theory_accuracy", table + "\n\n" + chart)

    for point, bound in zip(points, bounds):
        # Soundness: measurement below the bound (Wilson upper CI of
        # eps_min against the bound with 2x slack for finite sampling of
        # P_nc itself).
        assert point.eps_min.low <= bound * 2.0 + 1e-6, point.value
    # Tracking: both series rise monotonically in X.
    eps_series = [p.eps_min.value for p in points]
    assert eps_series == sorted(eps_series)
    assert bounds == sorted(bounds)
