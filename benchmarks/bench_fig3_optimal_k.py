"""Figure 3 — error rate against K; the empirical optimum vs ln2·R/X.

Paper setup: R = 100, four populations (500–2000 peers), constant
per-node receive rate of 200 msg/s, mean propagation 100 ms ⇒ X = 20
concurrent messages; theory predicts K_opt = ln2·100/20 ≈ 3.5, the
measured optimum is K = 4.

Our reproduction keeps every rate-determining parameter (receive rate,
delay, R) and runs two smaller populations — the paper's own point with
this figure is that the curves for different N at equal receive rate
coincide.  Populations stay *above* R = 100: with N < R every process
could own a private entry and K = 1 would degenerate into an exact
vector clock, erasing the effect the figure shows.  Key sets use the
fully uncoordinated random draw (collisions allowed), which is the only
option once N exceeds C(R, K) anyway.  Shape assertions: the interior
optimum beats both extremes (K = 1, plausible clocks; large K).
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.core.theory import optimal_k, optimal_k_int, p_error
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    run_duration,
    points_table,
    report,
    scaled_duration,
    series_chart,
)

R = 100
TARGET_X = 20.0
K_VALUES = [1, 2, 3, 4, 5, 6, 8]
POPULATIONS = [150, 250]
TARGET_DELIVERIES = 80_000.0


def run_figure3():
    curves = {}
    tables = []
    for n_nodes in POPULATIONS:
        lam = lambda_for_concurrency(n_nodes, TARGET_X)
        duration = run_duration(TARGET_DELIVERIES, n_nodes, lam)
        base = SimulationConfig(
            n_nodes=n_nodes,
            r=R,
            k=4,
            duration_ms=duration,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector="none",
            track_latency=False,
        )
        points = sweep_parameter(
            base,
            values=K_VALUES,
            make_config=lambda cfg, k: dataclasses.replace(cfg, k=k),
            repeats=1,
            seed_base=300 + n_nodes,
        )
        curves[f"N={n_nodes}"] = points
        tables.append(points_table(f"N={n_nodes} (lambda={lam:.0f} ms)", points))
    return curves, tables


def test_fig3_optimal_k(benchmark):
    curves, tables = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    k_theory = optimal_k(R, TARGET_X)
    k_int = optimal_k_int(R, TARGET_X)
    chart_series = {
        name: [(p.value, max(p.eps_min.value, 1e-7)) for p in points]
        for name, points in curves.items()
    }
    theory_note = (
        f"theory: K_opt = ln2*R/X = {k_theory:.2f} (paper: 3.5, measured 4); "
        f"integer minimiser of exact P_err: K = {k_int}\n"
        f"P_err(R=100, K, X=20): "
        + ", ".join(f"K={k}: {p_error(R, k, TARGET_X):.3f}" for k in K_VALUES)
    )
    body = "\n\n".join(
        tables
        + [
            series_chart("error rate vs K (eps_min)", chart_series, x_label="K"),
            theory_note,
        ]
    )
    report("fig3_optimal_k", body)

    for name, points in curves.items():
        by_k = {p.value: p for p in points}
        interior_best = min(
            (by_k[k] for k in (3, 4, 5)), key=lambda p: p.eps_min.value
        )
        # The paper's headline shape: an interior K beats both extremes.
        assert interior_best.eps_min.value <= by_k[1].eps_min.value, name
        assert interior_best.eps_min.value <= by_k[8].eps_min.value, name
        # And errors actually occur at the K=1 end (plausible clocks).
        assert by_k[1].eps_min.value > 0, name
