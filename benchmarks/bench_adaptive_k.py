"""Adaptive K — the natural extension of the paper's dimensioning rule.

Section 5.3 dimensions K once, from an *estimate* of the concurrency X,
and Figures 4–5 show what happens when reality disagrees with the
estimate: the error rate takes off.  Because every message carries its
sender's key set, nothing stops a node from re-drawing a differently
sized set at runtime — receivers never need to know.  This benchmark
implements that loop (each node re-estimates X from its own delivery
rate every few seconds and re-draws keys when the integer optimum moved,
with hysteresis) and measures the payoff on a *mis-dimensioned* system:

* static, wrong K (planned for 6x less traffic than it gets);
* adaptive, starting from the same wrong K;
* static, correct K (the oracle-dimensioned reference).

Expected: the adaptive run converges every node to the optimal K
neighbourhood and lands near the correctly dimensioned error rate,
recovering most of the mis-dimensioning penalty.
"""

from collections import Counter

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.core.theory import optimal_k_int
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 60
R = 100
ACTUAL_X = 25.0
WRONG_K = 12  # dimensioned for X ≈ 4 — 6x less traffic than reality
TARGET_DELIVERIES = 120_000.0
# Adaptation needs several periods to converge and then time to pay off:
MIN_HORIZON_MS = 25_000.0
ADAPT_INTERVAL_MS = 2_500.0


def run_adaptive_matrix():
    lam = lambda_for_concurrency(N_NODES, ACTUAL_X)
    duration = max(run_duration(TARGET_DELIVERIES, N_NODES, lam), MIN_HORIZON_MS)
    right_k = optimal_k_int(R, ACTUAL_X)

    def config(k, adaptive):
        return SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=k,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector="none",
            duration_ms=duration,
            track_latency=False,
            adaptive_k_interval_ms=ADAPT_INTERVAL_MS if adaptive else None,
        )

    return right_k, {
        f"static K={WRONG_K} (mis-dimensioned)": run_repeated(
            config(WRONG_K, adaptive=False), repeats=1, seed_base=1500
        )[0],
        f"adaptive (starts at K={WRONG_K})": run_repeated(
            config(WRONG_K, adaptive=True), repeats=1, seed_base=1500
        )[0],
        "static K=optimal (reference)": run_repeated(
            config(right_k, adaptive=False), repeats=1, seed_base=1500
        )[0],
    }


def test_adaptive_k(benchmark):
    right_k, results = benchmark.pedantic(run_adaptive_matrix, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        k_distribution = Counter(result.final_k_values)
        rows.append(
            [
                name,
                result.counters.eps_min,
                result.counters.eps_max,
                result.adaptive_rekeys,
                dict(sorted(k_distribution.items())),
                result.counters.deliveries,
            ]
        )
    table = render_table(
        ["scenario", "eps_min", "eps_max", "rekeys", "final K distribution", "deliveries"],
        rows,
        title=(
            f"N={N_NODES}, R={R}, actual X={ACTUAL_X} "
            f"(integer optimum K={right_k}), planned K={WRONG_K}"
        ),
    )
    report("adaptive_k", table)

    wrong = results[f"static K={WRONG_K} (mis-dimensioned)"]
    adaptive = results[f"adaptive (starts at K={WRONG_K})"]
    reference = results["static K=optimal (reference)"]

    # The mis-dimensioned system is markedly worse than the reference.
    assert wrong.counters.eps_min > 2 * reference.counters.eps_min
    # Adaptation happened, and converged nodes into the optimum's
    # neighbourhood (P_err is nearly flat across K_opt ± 1).
    assert adaptive.adaptive_rekeys >= N_NODES * 0.9
    assert all(abs(k - right_k) <= 2 for k in adaptive.final_k_values)
    # The payoff: adaptive recovers most of the penalty.
    assert adaptive.counters.eps_min < 0.6 * wrong.counters.eps_min
    assert adaptive.counters.eps_min < 3 * max(reference.counters.eps_min, 1e-4)
    # And liveness survived every key switch.
    assert adaptive.stuck_pending == 0
    assert adaptive.undelivered_messages == 0
