"""Partition experiment — ordering through a split and its healing.

Large decentralised systems partition; the paper's mechanism has no
global coordination to lose, so each side keeps ordering its own traffic
and the interesting questions are at the boundary:

* during the split, how much of the system keeps making progress?
* what does healing cost?  The backlog arrives as a burst (directly or
  via anti-entropy), and bursts inflate the covering probability — the
  same effect the recovery benchmark isolates;
* does the composed system (partition + anti-entropy) return to a fully
  consistent, nothing-stuck state?

The run splits the population into halves for the middle third of the
experiment and compares: no recovery (stranded backlog), periodic
anti-entropy (healed), and an unpartitioned control.
"""

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PartitionWindow,
    PartitionedDissemination,
    PoissonWorkload,
    SimulationConfig,
)

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 40
R = 100
K = 4
TARGET_X = 20.0
TARGET_DELIVERIES = 40_000.0


def run_partition_matrix():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = max(run_duration(TARGET_DELIVERIES, N_NODES, lam), 18_000.0)
    split = PartitionWindow.split_even_odd(duration / 3.0, 2.0 * duration / 3.0)
    delay = GaussianDelayModel(MEAN_DELAY_MS)

    def config(partitioned, recovery):
        dissemination = DirectBroadcast(delay)
        wrapper = None
        if partitioned:
            wrapper = PartitionedDissemination(dissemination, [split])
        return (
            SimulationConfig(
                n_nodes=N_NODES,
                r=R,
                k=K,
                key_assigner="random-colliding",
                workload=PoissonWorkload(lam),
                delay_model=delay,
                dissemination=wrapper if wrapper is not None else dissemination,
                detector="none",
                duration_ms=duration,
                recovery=recovery,
                recovery_period_ms=2_000.0,
                track_latency=True,
            ),
            wrapper,
        )

    results = {}
    wrappers = {}
    for name, partitioned, recovery in [
        ("control (no split)", False, "none"),
        ("split, no recovery", True, "none"),
        ("split + anti-entropy", True, "periodic"),
    ]:
        cfg, wrapper = config(partitioned, recovery)
        results[name] = run_repeated(cfg, repeats=1, seed_base=1600)[0]
        wrappers[name] = wrapper
    return results, wrappers


def test_partition(benchmark):
    results, wrappers = benchmark.pedantic(run_partition_matrix, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        expected = result.sent * (N_NODES - 1)
        wrapper = wrappers[name]
        rows.append(
            [
                name,
                result.delivered_remote / expected if expected else 0.0,
                wrapper.dropped_by_partition if wrapper is not None else 0,
                result.counters.eps_min,
                result.counters.eps_max,
                result.latency["p99"],
                result.stuck_pending,
                result.recovery_repaired,
            ]
        )
    table = render_table(
        [
            "scenario",
            "coverage",
            "dropped at cut",
            "eps_min",
            "eps_max",
            "lat p99 (ms)",
            "stuck",
            "repaired",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}, split = middle third",
    )
    report("partition", table)

    control = results["control (no split)"]
    stranded = results["split, no recovery"]
    healed = results["split + anti-entropy"]

    # The cut actually severed traffic.
    assert wrappers["split, no recovery"].dropped_by_partition > 0
    # Without repair, the cross-partition backlog is stranded forever...
    assert stranded.stuck_pending > 0
    assert stranded.undelivered_messages > 0
    # ...but each side kept working: the majority of volume still landed.
    expected = stranded.sent * (N_NODES - 1)
    assert stranded.delivered_remote > 0.5 * expected
    # Anti-entropy heals completely.
    assert healed.stuck_pending == 0
    assert healed.undelivered_messages == 0
    assert healed.recovery_repaired > 0
    # Healing costs ordering quality: the healed run errs more than the
    # unpartitioned control (backlog bursts cover in-flight entries).
    assert healed.counters.eps_max >= control.counters.eps_max
    # The control stays clean end to end.
    assert control.stuck_pending == 0
