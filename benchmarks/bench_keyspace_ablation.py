"""Section 4.1.3 ablation — how key-set distribution quality shapes the
error rate.

The paper proposes random ``set_id`` drawing as the churn-friendly
alternative to a coordinated *perfect distribution*, and argues the
distribution "heavily affects the accuracy of the resulting protocol".
This ablation runs the same traffic under six assignment policies:

* ``perfect``        — round tiling (coordinated): sets pairwise disjoint
  within each round, small spread intersections across rounds;
* ``balanced-load``  — greedy least-loaded entries (coordinated): exact
  per-entry load balance, but consecutive joiners receive near-duplicate
  sets;
* ``random``         — the paper's scheme, distinct set_ids;
* ``random-colliding`` — fully uncoordinated draw;
* ``hash``           — set_id from a stable hash of the identity;
* ``sequential``     — consecutive lexicographic set_ids.

Findings (asserted below, discussed in EXPERIMENTS.md):

* **Set intersection, not entry load, is what matters.**  The greedy
  balanced-load policy produces near-duplicate sets — a single concurrent
  message covers a missing one — and measures clearly worse than the
  paper's uncoordinated random draw.  The tiling policy, which minimises
  pairwise intersections, is at least as good as random.
* **Distinctness of set_ids is immaterial far from saturation.**  With
  N = 120 and C(100, 4) ≈ 3.9M the collision probability is ~0.2%, so
  ``random``, ``random-colliding`` and ``hash`` are statistically the
  same policy; runs are repeated over several assignment draws because
  the draw itself (did two nodes land on heavily overlapping sets?) is
  the dominant random variable.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import render_table
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 120
R = 100
K = 4
TARGET_X = 25.0
TARGET_DELIVERIES = 40_000.0
REPEATS = 4
ASSIGNERS = [
    "perfect",
    "balanced-load",
    "random",
    "random-colliding",
    "hash",
    "sequential",
]


def run_keyspace_ablation():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    base = SimulationConfig(
        n_nodes=N_NODES,
        r=R,
        k=K,
        workload=PoissonWorkload(lam),
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        duration_ms=duration,
        track_latency=False,
    )
    return sweep_parameter(
        base,
        values=ASSIGNERS,
        make_config=lambda cfg, assigner: dataclasses.replace(
            cfg, key_assigner=assigner
        ),
        repeats=REPEATS,
        seed_base=900,
    )


def test_keyspace_ablation(benchmark):
    points = benchmark.pedantic(run_keyspace_ablation, rounds=1, iterations=1)

    rows = [
        [
            p.value,
            p.eps_min.value,
            p.eps_min.low,
            p.eps_min.high,
            p.eps_max.value,
            p.deliveries,
        ]
        for p in points
    ]
    table = render_table(
        ["assigner", "eps_min", "lo", "hi", "eps_max", "deliveries"],
        rows,
        title=(
            f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}, "
            f"{REPEATS} assignment draws pooled per policy"
        ),
    )
    report("keyspace_ablation", table)

    by_name = {p.value: p for p in points}
    uniform_policies = ("random", "random-colliding", "hash")
    uniform_worst = max(by_name[n].eps_min.value for n in uniform_policies)

    # Finding 1 (deterministic policies, traffic noise only): among
    # coordinated assignments, minimising pairwise set intersections
    # (tiling) clearly beats balancing per-entry load — near-duplicate
    # sets are covered by a single concurrent message.
    assert (
        by_name["balanced-load"].eps_min.value
        > 1.5 * by_name["perfect"].eps_min.value
    )
    # Finding 2: the coordinated tiling is at least as good as any of the
    # uncoordinated uniform draws — the quality ceiling the paper's
    # random scheme approaches without coordination.
    assert by_name["perfect"].eps_min.value <= 1.2 * uniform_worst
    # Finding 3 (reported, not ranked): the three uniform draws are the
    # same policy statistically; their pooled estimates still scatter
    # because the assignment draw (a chance high-overlap pair) is the
    # dominant random variable.  Each must simply show the phenomenon.
    for name in uniform_policies:
        assert by_name[name].eps_min.value > 0, name
    # Every policy keeps the system live.
    for point in points:
        assert all(r.stuck_pending == 0 for r in point.results), point.value
