"""Section 4.2 end-to-end — the alert/recovery economics.

The paper's pitch for the alert: recovery (anti-entropy) is costly, so
run it only when a delivery *may* have violated causal order, instead of
on a blind timer.  This benchmark completes the loop the paper sketches
and measures the trade:

* **lossless, loaded** system: compare ``recovery="alert"`` against a
  blind ``recovery="periodic"`` timer at matching total session budgets —
  the alert trigger concentrates its sessions exactly around trouble;
* **lossy** system: loss produces *no alert* (dependent messages just
  wait forever), so the timer is the only repair — periodic recovery must
  drive stuck messages to zero where the no-recovery run strands
  thousands;
* the **burst effect**: a recovery session delivers a batch, and batch
  deliveries cover entries of messages still in flight, measurably
  raising ε over the loss-free baseline — the hidden cost of naive
  anti-entropy under probabilistic ordering.
"""

import dataclasses

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PoissonWorkload,
    SimulationConfig,
)

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 80
R = 50
K = 3
TARGET_X = 25.0
TARGET_DELIVERIES = 50_000.0
LOSS_RATE = 0.01


def run_recovery_matrix():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    delay = GaussianDelayModel(MEAN_DELAY_MS)

    def config(loss, recovery, **extra):
        return SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=delay,
            dissemination=DirectBroadcast(delay, loss_rate=loss),
            detector="basic",
            duration_ms=duration,
            recovery=recovery,
            track_latency=False,
            **extra,
        )

    scenarios = {
        "lossless/none": config(0.0, "none"),
        "lossless/alert": config(0.0, "alert", recovery_delay_ms=50.0),
        "lossless/periodic": config(0.0, "periodic", recovery_period_ms=1_000.0),
        "lossy/none": config(LOSS_RATE, "none"),
        "lossy/periodic": config(LOSS_RATE, "periodic", recovery_period_ms=1_000.0),
    }
    return {
        name: run_repeated(cfg, repeats=1, seed_base=1300)[0]
        for name, cfg in scenarios.items()
    }


def test_recovery(benchmark):
    results = benchmark.pedantic(run_recovery_matrix, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.counters.eps_min,
                result.counters.eps_max,
                result.recovery_sessions,
                result.recovery_repaired,
                result.stuck_pending,
                result.undelivered_messages,
                result.counters.deliveries,
            ]
        )
    table = render_table(
        [
            "scenario",
            "eps_min",
            "eps_max",
            "sessions",
            "repaired",
            "stuck",
            "undelivered",
            "deliveries",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}, loss={LOSS_RATE}",
    )
    report("recovery", table)

    lossless_none = results["lossless/none"]
    lossless_alert = results["lossless/alert"]
    lossy_none = results["lossy/none"]
    lossy_periodic = results["lossy/periodic"]

    # Loss strands messages without recovery; periodic recovery fixes it.
    assert lossy_none.stuck_pending > 0
    assert lossy_periodic.stuck_pending == 0
    assert lossy_periodic.undelivered_messages == 0
    assert lossy_periodic.recovery_repaired > 0
    # Alert-triggered sessions happen exactly when there is trouble: none
    # in a lossless run would be wrong (violations do occur under load),
    # but the count tracks the alert count, not the clock.
    assert lossless_alert.recovery_sessions > 0
    assert lossless_alert.recovery_sessions <= lossless_alert.alerts.alerts
    # Everything is eventually delivered in every lossless scenario.
    for name in ("lossless/none", "lossless/alert", "lossless/periodic"):
        assert results[name].stuck_pending == 0, name
