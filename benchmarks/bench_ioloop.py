"""I/O-loop benchmark: syscall-batched datagram RX/TX + zero-copy decode.

The PR-1..7 runtime drives UDP through asyncio's datagram endpoint: one
event-loop wakeup per datagram, one ``bytes`` object per datagram, and a
full copy of every payload on the way to the protocol.  The batched
transport (``io_mode="batched"``) drains up to ``rx_batch`` datagrams
per wakeup through ``recvfrom_into`` over a preallocated buffer ring,
hands the whole batch to the session in one callback, and gathers sends
into per-tick ``sendto`` bursts; the codec parses straight out of the
ring via ``memoryview`` slices and only materialises payload bytes at
the journal boundary (``retain()``).  This script measures both layers
together on real loopback UDP:

* two ``create_node()`` participants at R=100, K=2 exchanging
  bidirectional floods (the steady-UDP regime the ISSUE targets);
* the *same* workload run with ``io_mode="legacy"`` (the per-datagram
  asyncio endpoint) and ``io_mode="batched"``;
* with frame coalescing disabled (``flood`` — every frame is its own
  datagram, the worst case for per-datagram wakeups) and with the
  default MTU-budgeted coalescing (``steady``).

Headline metrics: **datagrams per wakeup** on the batched receive path
(the legacy endpoint is definitionally 1.0) and the end-to-end
throughput ratio batched/legacy within one run, so machine speed
cancels.  Results land in ``BENCH_ioloop.json`` at the repo root; the
committed copy is the baseline gated by ``check_regression.py
--ioloop-fresh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ioloop.py            # full
    PYTHONPATH=src python benchmarks/bench_ioloop.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time
from typing import Optional

from repro.api import NodeConfig, create_node

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ioloop.json"

HEADLINE = "flood_r100_k2"

# name -> (wire_kwargs, rounds, burst)
SCENARIOS = {
    # Coalescing off: every frame is its own datagram, so the socket
    # floods and per-datagram wakeups are the bottleneck being removed.
    "flood_r100_k2": (dict(coalesce_mtu=0), 30, 32),
    # The shipping defaults: MTU-budgeted BATCH frames on top of the
    # batched socket driver.
    "steady_r100_k2": ({}, 30, 32),
}
QUICK = {
    "flood_r100_k2": (dict(coalesce_mtu=0), 10, 32),
    "steady_r100_k2": ({}, 10, 32),
}


async def _wait_for(predicate, timeout=60.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def _merge_io(nodes) -> Optional[dict]:
    """Sum IoStats across nodes; None when the transport has none."""
    merged: Optional[dict] = None
    for node in nodes:
        stats = getattr(node.transport, "io_stats", None)
        if stats is None:
            return None
        snap = stats.snapshot()
        if merged is None:
            merged = dict(snap)
        else:
            for key, value in snap.items():
                if key.endswith("_max"):
                    merged[key] = max(merged[key], value)
                else:
                    merged[key] += value
    return merged


def _merge_codec(nodes) -> dict:
    """Sum zero-copy codec counters (frame + message level) across nodes."""
    merged: dict = {}
    for node in nodes:
        for counters in (node.session.codec_counters, node.codec_counters):
            for key, value in counters.snapshot().items():
                merged[key] = merged.get(key, 0) + value
    return merged


async def _run_case(io_mode: str, wire_kwargs: dict, rounds: int, burst: int) -> dict:
    config = NodeConfig(
        r=100,
        k=2,
        io_mode=io_mode,
        ack_timeout=0.05,
        anti_entropy_interval=0.2,
        heartbeat_interval=0.0,
        **wire_kwargs,
    )
    left = await create_node("left", config)
    right = await create_node("right", config)
    left.add_peer(right.local_address)
    right.add_peer(left.local_address)
    total = rounds * burst * 2
    try:
        start = time.perf_counter()
        for round_index in range(rounds):
            # Schedule the whole bidirectional burst as concurrent
            # tasks: the sends land on the sockets back-to-back, so the
            # receive side sees a genuine flood rather than a lockstep
            # one-datagram-per-loop-iteration trickle.
            await asyncio.gather(
                *(
                    node.broadcast((name, round_index, i))
                    for node, name in ((left, "left"), (right, "right"))
                    for i in range(burst)
                )
            )
            # Let the per-tick TX flush and the peers' RX drains run so
            # the next flood starts against an empty socket buffer.
            await asyncio.sleep(0.002)
        converged = await _wait_for(
            lambda: len(left.deliveries) == total and len(right.deliveries) == total
        )
        elapsed = time.perf_counter() - start
        if not converged:
            raise RuntimeError(
                f"no convergence: sent={total}, delivered="
                f"left={len(left.deliveries)} right={len(right.deliveries)}"
            )
        result = {
            "messages": total,
            "seconds": round(elapsed, 4),
            "msgs_per_sec": round(total / elapsed, 1),
        }
        io = _merge_io((left, right))
        if io is not None:
            wakeups = max(1, io["rx_wakeups"])
            result["datagrams_per_wakeup"] = round(io["rx_datagrams"] / wakeups, 2)
            result["rx_batch_max"] = io["rx_batch_max"]
            result["tx_batch_max"] = io["tx_batch_max"]
            result["rx_budget_exhausted"] = io["rx_budget_exhausted"]
            result["tx_flushes"] = io["tx_flushes"]
            result["tx_datagrams"] = io["tx_datagrams"]
        else:
            # The asyncio endpoint wakes the loop once per datagram.
            result["datagrams_per_wakeup"] = 1.0
        codec = _merge_codec((left, right))
        result["payload_views"] = codec.get("data_payload_views", 0)
        result["batch_inner_views"] = codec.get("batch_inner_views", 0)
        result["retain_copies"] = codec.get("retain_copies", 0)
        return result
    finally:
        await left.close()
        await right.close()


def run_scenario(name: str, wire_kwargs: dict, rounds: int, burst: int) -> dict:
    result = {
        "name": name,
        "params": {
            "r": 100, "k": 2, "rounds": rounds, "burst": burst,
            "wire": wire_kwargs,
        },
    }
    for label in ("legacy", "batched"):
        result[label] = asyncio.run(_run_case(label, wire_kwargs, rounds, burst))
    legacy, batched = result["legacy"], result["batched"]
    result["throughput_ratio"] = round(
        batched["msgs_per_sec"] / legacy["msgs_per_sec"], 2
    )
    result["datagrams_per_wakeup"] = batched["datagrams_per_wakeup"]
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer rounds per scenario",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result JSON path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    table = QUICK if args.quick else SCENARIOS
    scenarios = []
    for name, (wire_kwargs, rounds, burst) in table.items():
        result = run_scenario(name, wire_kwargs, rounds, burst)
        scenarios.append(result)
        legacy, batched = result["legacy"], result["batched"]
        print(
            f"{name:20s} msgs={legacy['messages']:4d}  "
            f"datagrams/wakeup {result['datagrams_per_wakeup']:.2f} "
            f"(peak {batched.get('rx_batch_max', 0)})  "
            f"throughput {legacy['msgs_per_sec']:.0f} -> "
            f"{batched['msgs_per_sec']:.0f} msg/s "
            f"({result['throughput_ratio']:.2f}x)"
        )
        print(
            f"{'':20s} zero-copy: payload views={batched['payload_views']}  "
            f"batch inner views={batched['batch_inner_views']}  "
            f"retain copies={batched['retain_copies']}"
        )

    headline: Optional[dict] = next(
        (s for s in scenarios if s["name"] == HEADLINE), None
    )
    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
        },
        "headline": {
            "name": HEADLINE,
            "datagrams_per_wakeup": (
                headline["datagrams_per_wakeup"] if headline else None
            ),
            "throughput_ratio": (
                headline["throughput_ratio"] if headline else None
            ),
        },
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    if headline is not None:
        print(
            f"headline {HEADLINE}: "
            f"{headline['datagrams_per_wakeup']:.2f} datagrams/wakeup, "
            f"{headline['throughput_ratio']:.2f}x throughput"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
