"""Shared infrastructure for the experiment benchmarks.

Every benchmark reproduces one table or figure of the paper: it runs the
parameter sweep, renders the same series the paper reports (as an aligned
table plus an ASCII chart), asserts the qualitative *shape* the paper
claims, and persists the rendered report under ``benchmarks/results/`` so
``EXPERIMENTS.md`` can reference it.

Scaling: defaults are sized for a laptop run of the whole suite; set
``REPRO_BENCH_SCALE=10`` (or higher) to lengthen every run tenfold and
tighten the confidence intervals toward the paper's >10⁸-message scale.

Population note (see DESIGN.md): the paper's error analysis depends on
the *concurrency* ``X`` (messages received during one network transit),
not on ``N`` directly — its own Figures 3 and 6 demonstrate exactly this.
We therefore run smaller populations at the paper's per-node receive
rates, which preserves every shape while keeping pure-Python runtimes
sane.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Tuple

from repro.analysis.sweep import SweepPoint, bench_scale
from repro.analysis.tables import ascii_chart, render_table

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

# The paper's headline network: N(100, 20) ms propagation, N(d, 20) skew.
MEAN_DELAY_MS = 100.0
DELAY_STD_MS = 20.0
SKEW_STD_MS = 20.0


def scaled_duration(base_ms: float) -> float:
    """Apply the REPRO_BENCH_SCALE multiplier to a run duration."""
    return base_ms * bench_scale()


def lambda_for_concurrency(n_nodes: int, x: float, delay_ms: float = MEAN_DELAY_MS) -> float:
    """Per-node mean send interval (ms) yielding concurrency ``x``.

    Each node receives from the other ``n-1`` nodes:
    ``X = (n-1)/λ · delay``  ⇒  ``λ = (n-1)·delay / X``.
    """
    return (n_nodes - 1) * delay_ms / x


def paper_equivalent_lambda(x: float, paper_n: int = 1000, delay_ms: float = MEAN_DELAY_MS) -> float:
    """The λ (ms) that would give concurrency ``x`` at the paper's N."""
    return (paper_n - 1) * delay_ms / x


def duration_for_deliveries(
    target_deliveries: float, n_nodes: int, lambda_ms: float
) -> float:
    """Sending horizon (ms) so the run produces ~``target_deliveries``.

    deliveries ≈ sends · (n-1) = n · duration/λ · (n-1).
    """
    return target_deliveries * lambda_ms / (n_nodes * (n_nodes - 1))


def run_duration(target_deliveries: float, n_nodes: int, lambda_ms: float) -> float:
    """Scaled sending horizon with a statistical-validity floor.

    The REPRO_BENCH_SCALE multiplier shrinks/stretches the horizon, but a
    run shorter than a handful of network transits and send intervals
    measures start-up transients, not steady state — so the horizon never
    drops below ``max(12 · delay, 3 · λ)`` regardless of scale.
    """
    scaled = scaled_duration(duration_for_deliveries(target_deliveries, n_nodes, lambda_ms))
    floor = max(12.0 * MEAN_DELAY_MS, 3.0 * lambda_ms)
    return max(scaled, floor)


def sweep_rows(points: Sequence[SweepPoint]) -> List[List[object]]:
    return [point.row() for point in points]


def report(
    name: str,
    body: str,
) -> None:
    """Print a reproduction report and persist it under results/."""
    banner = f"\n{'=' * 78}\n{name}\n{'=' * 78}\n"
    text = banner + body + "\n"
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")


def series_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str,
    log_y: bool = True,
) -> str:
    return ascii_chart(
        series,
        width=68,
        height=16,
        log_y=log_y,
        title=title,
        x_label=x_label,
        y_label="error rate",
    )


def points_table(title: str, points: Sequence[SweepPoint]) -> str:
    return render_table(SweepPoint.ROW_HEADERS, sweep_rows(points), title=title)
