"""Application-level impact — CRDT anomalies under probabilistic ordering.

The paper motivates causal broadcast with replicated data types (its
refs [10, 13, 14]): op-based CRDTs assume causal delivery.  This
benchmark closes the loop the paper opens: it runs a real replicated
OR-Set (causally sensitive) and a PN-Counter (order-insensitive control)
over the simulated probabilistic broadcast and measures how protocol
violations translate into application anomalies.

Expected shape:

* the counter shows **zero** anomalies at any violation rate — for
  commutative state the probabilistic relaxation is entirely free;
* the OR-Set shows anomalies, but far *fewer* than the protocol-level
  violation count: an anomaly needs a remove to overtake one of the adds
  it observed, while the bulk of mis-ordered deliveries involve adds,
  which commute.  The application-level error rate is therefore a small
  fraction of the paper's ε — the report prints the translation ratio;
* with the exact vector clock, the OR-Set shows zero anomalies on the
  same traffic.
"""

from repro.analysis.tables import render_table
from repro.crdt import ORSet, PNCounter
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig
from repro.sim.runner import NodeApplication, run_simulation

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 100
R = 40  # deliberately tight vector: high violation rate
K = 3
TARGET_X = 25.0
TARGET_DELIVERIES = 50_000.0
ELEMENTS = [f"item-{i}" for i in range(12)]


class OrSetApplication(NodeApplication):
    """Each node alternates adds and removes on a small shared catalogue."""

    instances = []

    def __init__(self, node_id):
        self.crdt = ORSet(node_id)
        self._step = 0
        OrSetApplication.instances.append(self)

    def make_payload(self, node_id, now):
        self._step += 1
        element = ELEMENTS[(hash(node_id) + self._step) % len(ELEMENTS)]
        if element in self.crdt and self._step % 2 == 0:
            return self.crdt.remove(element)
        return self.crdt.add(element)

    def on_deliver(self, node_id, record, verdict, now):
        self.crdt.apply_remote(record.message.payload)

    @classmethod
    def total_anomalies(cls):
        return sum(app.crdt.anomalies for app in cls.instances)


class CounterApplication(NodeApplication):
    instances = []

    def __init__(self, node_id):
        self.crdt = PNCounter(node_id)
        CounterApplication.instances.append(self)

    def make_payload(self, node_id, now):
        return self.crdt.increment(1)

    def on_deliver(self, node_id, record, verdict, now):
        self.crdt.apply_remote(record.message.payload)

    @classmethod
    def total_anomalies(cls):
        return sum(app.crdt.anomalies for app in cls.instances)


def run_crdt_experiment():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    scenarios = {}
    for label, clock, app_class in [
        ("orset/probabilistic", "probabilistic", OrSetApplication),
        ("orset/vector", "vector", OrSetApplication),
        ("counter/probabilistic", "probabilistic", CounterApplication),
    ]:
        app_class.instances = []
        config = SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            clock=clock,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector="none",
            duration_ms=duration,
            track_latency=False,
            application_factory=app_class,
        )
        result = run_simulation(config)
        scenarios[label] = (result, app_class.total_anomalies())
    return scenarios


def test_crdt_anomalies(benchmark):
    scenarios = benchmark.pedantic(run_crdt_experiment, rounds=1, iterations=1)

    rows = []
    for label, (result, anomalies) in scenarios.items():
        rows.append(
            [
                label,
                result.counters.violations,
                result.counters.ambiguous,
                anomalies,
                result.counters.eps_min,
                result.counters.deliveries,
            ]
        )
    table = render_table(
        ["scenario", "violations", "ambiguous", "crdt anomalies", "eps_min", "deliveries"],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}",
    )
    orset_result, orset_count = scenarios["orset/probabilistic"]
    mis_ordered = (
        orset_result.counters.violations + orset_result.counters.ambiguous
    )
    ratio = orset_count / mis_ordered if mis_ordered else float("nan")
    report(
        "crdt_anomalies",
        table
        + f"\n\ntranslation: {orset_count} application anomalies from "
        f"{mis_ordered} mis-ordered deliveries = {ratio:.3f}x\n"
        "(only remove-overtakes-its-add inversions hurt an OR-Set; "
        "mis-ordered adds commute, so most protocol-level violations are "
        "invisible to the application)",
    )

    orset_prob, orset_anomalies = scenarios["orset/probabilistic"]
    orset_vec, vec_anomalies = scenarios["orset/vector"]
    counter_prob, counter_anomalies = scenarios["counter/probabilistic"]

    # Ordering violations occurred and surfaced as OR-Set anomalies.
    assert orset_prob.counters.violations > 0
    assert orset_anomalies > 0
    # Most protocol-level violations are invisible to the data type.
    assert orset_anomalies < orset_prob.counters.violations
    # Exact ordering removes the anomalies entirely on the same traffic.
    assert orset_vec.counters.violations == 0
    assert vec_anomalies == 0
    # Commutative state never cares.
    assert counter_anomalies == 0
