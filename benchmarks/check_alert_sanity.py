"""CI sanity gate: the measured alert rate must track theory's P_err.

Algorithm 4's alert fires exactly when a delivered message's sender
entries were already covered by concurrent traffic — the event whose
probability the paper's closed form ``P_err(R, K, X)`` estimates.  The
two are not identical (the formula models a Poisson snapshot of X
concurrent messages; the simulator has churn-free but bursty reality),
and locally the observed ratio sits around 0.7–1.4x.  An order of
magnitude is therefore a *sanity* gate, not a precision claim: it
catches the failure modes that matter — a dead alert pipeline
(rate ~ 0 while theory predicts ~0.2) or a detector firing on
everything — without flaking on statistics.

The run exports its metrics snapshot as JSONL (the same format the live
runtime writes) and the gate reads the alert rate back **from the
export**, so this also end-to-end-checks the sim metrics pipeline:
observe → registry → JSONL → reader.

Exit 0 when ``p_err/tolerance <= alert_rate <= p_err*tolerance``,
exit 1 otherwise.
"""

import argparse
import pathlib
import sys
import tempfile

from repro.core.theory import p_error
from repro.obs import last_snapshot
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=30)
    parser.add_argument("--r", type=int, default=40)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--lambda-ms", type=float, default=250.0)
    parser.add_argument("--duration-ms", type=float, default=12_000.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed multiplicative deviation either way")
    parser.add_argument("--metrics-path", default=None,
                        help="where to write the JSONL export "
                             "(default: a temp file)")
    args = parser.parse_args()

    if args.metrics_path is None:
        metrics_path = pathlib.Path(tempfile.mkdtemp()) / "sim.metrics.jsonl"
    else:
        metrics_path = pathlib.Path(args.metrics_path)
        if metrics_path.exists():
            metrics_path.unlink()

    config = SimulationConfig(
        n_nodes=args.nodes, r=args.r, k=args.k,
        workload=PoissonWorkload(args.lambda_ms),
        duration_ms=args.duration_ms, seed=args.seed,
        detector="basic", metrics_path=str(metrics_path),
    )
    result = run_simulation(config)

    snapshot = last_snapshot(metrics_path)
    if snapshot is None:
        print("FAIL: simulation exported no metrics snapshot", file=sys.stderr)
        return 1
    alert_rate = snapshot["gauges"]["repro_sim_alert_rate"]
    if alert_rate != result.alerts.alert_rate:
        print(
            f"FAIL: exported alert rate {alert_rate} != in-memory "
            f"{result.alerts.alert_rate} (the export path corrupted it)",
            file=sys.stderr,
        )
        return 1

    x = result.measured_concurrency
    predicted = p_error(args.r, args.k, x)
    print(f"measured:  X={x:.2f}  alert_rate={alert_rate:.4e} "
          f"({snapshot['counters']['repro_sim_alerts_total']:.0f} alerts / "
          f"{snapshot['counters']['repro_sim_deliveries_total']:.0f} deliveries)")
    print(f"predicted: P_err(R={args.r}, K={args.k}, X={x:.2f}) = {predicted:.4e}")
    if predicted <= 0:
        print("FAIL: theory predicts a zero error rate; the gate cannot "
              "calibrate — choose a denser configuration", file=sys.stderr)
        return 1
    ratio = alert_rate / predicted
    print(f"ratio: {ratio:.2f}x (tolerance {args.tolerance:.0f}x either way)")
    if not (1.0 / args.tolerance <= ratio <= args.tolerance):
        print(
            f"FAIL: alert rate deviates {ratio:.2f}x from theory — the "
            f"alert pipeline is broken or the detector misfires",
            file=sys.stderr,
        )
        return 1
    print("alert-rate sanity gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
