"""Adaptive clock-sizing epochs under a 10x offered-concurrency ramp.

Section 5.3 dimensions K once, from a guess of the in-flight concurrency
X; Figures 4-5 show how P_err(R, K, X) takes off when traffic outgrows
that guess.  This benchmark replays exactly that failure mode and shows
the runtime controller (``repro.net.adaptive``, DESIGN.md §11) closing
the loop:

* **static arm** — K frozen at the geometry that was optimal at the
  bottom of the ramp (the paper's provision-once deployment);
* **adaptive arm** — after each segment the *same* decision core the
  live node runs (:class:`ConcurrencyEstimator` +
  :class:`EpochPlanner`) folds the segment's cumulative telemetry into
  a Little's-law X̂ and, when the measured alert rate breaches the
  target band, re-tiles K to ``optimal_k_int(R, X̂)`` — modelling the
  coordinator's epoch bump.  A level that triggered a re-tile is run
  again at the corrected geometry (the controller converging at the new
  operating point); only the settled run is scored.

Offered concurrency ramps 10x (X = 1 → 10 at the paper's 100 ms
delay).  The claim under test: the adaptive arm's settled alert rate
stays inside the band across the whole ramp while the static arm leaves
it — the acceptance criterion of the self-tuning issue.  Results land
in ``BENCH_adaptive.json`` at the repo root; ``check_adaptive.py``
gates the same run in CI.

Usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_adaptive.py           # full
    PYTHONPATH=src:benchmarks python benchmarks/bench_adaptive.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Dict, List, Sequence, Tuple

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
    series_chart,
)
from repro.analysis.tables import render_table
from repro.core.theory import optimal_k_int, p_error
from repro.net.adaptive import (
    AdaptivePolicy,
    ConcurrencyEstimator,
    EpochPlanner,
    TelemetrySample,
)
from repro.sim import PoissonWorkload, SimulationConfig, run_simulation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_adaptive.json"

N_NODES = 24
R = 40
K_MAX = 12
BAND = (0.0, 0.15)
X_START = 1.0

# Offered-concurrency levels (X at the paper's 100 ms mean delay) and
# the per-segment delivery budget.  The top of the ramp is chosen so the
# *optimal* geometry still fits the band (P_err at the optimum ~2^-K_opt):
# any higher and no controller could satisfy the target.
FULL = ((1.0, 2.0, 4.0, 7.0, 10.0), 5000)
QUICK = ((1.0, 4.0, 10.0), 2000)

# A level re-runs after an accepted re-tile so the settled geometry is
# what gets scored; the hysteresis guard converges this in one step.
MAX_ATTEMPTS = 3


def _segment(x: float, k: int, target_deliveries: int, seed: int) -> "SimulationResult":
    lam = lambda_for_concurrency(N_NODES, x)
    config = SimulationConfig(
        n_nodes=N_NODES,
        r=R,
        k=k,
        workload=PoissonWorkload(lam),
        duration_ms=run_duration(target_deliveries, N_NODES, lam),
        seed=seed,
        detector="basic",
    )
    return run_simulation(config)


def run_arm(
    adaptive: bool,
    levels: Sequence[float],
    target_deliveries: int,
    seed: int,
    band: Tuple[float, float] = BAND,
) -> List[Dict[str, object]]:
    """Run one arm of the ramp; returns one dict per executed segment.

    The adaptive arm drives the exact decision core a live node runs:
    segment telemetry is folded into cumulative per-node counters (the
    shape a node's own registry exports), sampled, differenced by the
    estimator, and judged by the planner.  ``settled=True`` marks the
    run that scores a level (the last attempt at it).
    """
    k = optimal_k_int(R, X_START, k_max=K_MAX)
    policy = AdaptivePolicy(
        interval=1.0, band=band, k_max=K_MAX, cooldown=0.0, min_window=20
    )
    estimator = ConcurrencyEstimator(min_window=policy.min_window)
    planner = EpochPlanner(R, policy)
    # Prime the estimator so the very first segment already yields a window.
    estimator.update(TelemetrySample(now=0.0, delivered_total=0.0, wait_sum=0.0, wait_count=0.0))
    # Cumulative per-node telemetry, counter semantics — what one node's
    # registry would show (the sim aggregates the group, so divide by N).
    t_cum = delivered_cum = wait_cum = alerts_cum = checks_cum = 0.0

    segments: List[Dict[str, object]] = []
    for level_index, x in enumerate(levels):
        for attempt in range(MAX_ATTEMPTS):
            result = _segment(x, k, target_deliveries, seed + 31 * level_index + attempt)
            t_cum += result.sim_time_ms / 1000.0
            delivered_cum += result.delivered_remote
            wait_cum += result.latency.get("mean", 0.0) / 1000.0 * result.delivered_remote
            alerts_cum += result.alerts.alerts
            checks_cum += result.alerts.total
            window = estimator.update(
                TelemetrySample(
                    now=t_cum,
                    delivered_total=delivered_cum / N_NODES,
                    wait_sum=wait_cum / N_NODES,
                    wait_count=delivered_cum / N_NODES,
                    alerts_total=alerts_cum / N_NODES,
                    checks_total=checks_cum / N_NODES,
                )
            )
            verdict = planner.decide(k, window, t_cum) if adaptive else None
            segments.append(
                {
                    "x_offered": x,
                    "x_measured": round(result.measured_concurrency, 2),
                    "x_estimate": round(window.x_estimate, 2) if window else None,
                    "k": k,
                    "deliveries": result.delivered_remote,
                    "alert_rate": round(result.alerts.alert_rate, 6),
                    "predicted_p_err": round(p_error(R, k, result.measured_concurrency), 6),
                    "eps_max": round(result.eps_max, 6),
                    "retiled_to": verdict,
                    "settled": verdict is None,
                }
            )
            if verdict is None:
                break
            planner.record_bump(t_cum)
            k = verdict
    return segments


def settled(segments: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [segment for segment in segments if segment["settled"]]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 3 ramp levels and a smaller delivery budget",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result JSON path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    levels, target = QUICK if args.quick else FULL
    started = time.perf_counter()
    adaptive_segments = run_arm(True, levels, target, args.seed)
    static_segments = run_arm(False, levels, target, args.seed)
    wall = time.perf_counter() - started

    adaptive_settled = settled(adaptive_segments)
    band_high = BAND[1]
    adaptive_max = max(s["alert_rate"] for s in adaptive_settled)
    static_max = max(s["alert_rate"] for s in static_segments)
    retiles = sum(1 for s in adaptive_segments if s["retiled_to"] is not None)
    final_k = adaptive_settled[-1]["k"]

    headers = ["arm", "X offered", "X meas", "K", "deliveries",
               "alert rate", "P_err(R,K,X)", "in band"]
    rows = []
    for arm, segs in (("adaptive", adaptive_settled), ("static", static_segments)):
        for s in segs:
            rows.append([
                arm, f"{s['x_offered']:.1f}", f"{s['x_measured']:.1f}",
                s["k"], s["deliveries"], f"{s['alert_rate']:.4f}",
                f"{s['predicted_p_err']:.4f}",
                "yes" if s["alert_rate"] <= band_high else "NO",
            ])
    table = render_table(
        headers, rows,
        title=f"10x concurrency ramp, R={R}, N={N_NODES}, "
              f"band high={band_high} (settled segments)",
    )
    chart = series_chart(
        "measured alert rate vs offered concurrency",
        {
            "adaptive": [(s["x_offered"], s["alert_rate"]) for s in adaptive_settled],
            "static": [(s["x_offered"], s["alert_rate"]) for s in static_segments],
            "band high": [(x, band_high) for x in levels],
        },
        x_label="offered concurrency X",
        log_y=False,
    )
    verdict = (
        f"adaptive max settled alert rate: {adaptive_max:.4f} "
        f"({'inside' if adaptive_max <= band_high else 'OUTSIDE'} the band)\n"
        f"static   max alert rate:         {static_max:.4f} "
        f"({static_max / band_high:.1f}x the band ceiling)\n"
        f"re-tiles: {retiles} (K {optimal_k_int(R, X_START, k_max=K_MAX)} -> {final_k}), "
        f"wall {wall:.1f}s"
    )
    report("bench_adaptive", table + "\n\n" + chart + "\n\n" + verdict)

    payload = {
        "meta": {
            "quick": args.quick,
            "seed": args.seed,
            "python": platform.python_version(),
            "n_nodes": N_NODES,
            "r": R,
            "k_max": K_MAX,
            "band": list(BAND),
            "mean_delay_ms": MEAN_DELAY_MS,
            "levels": list(levels),
            "target_deliveries": target,
            "wall_seconds": round(wall, 2),
        },
        "headline": {
            "adaptive_max_settled_alert_rate": adaptive_max,
            "static_max_alert_rate": static_max,
            "band_high": band_high,
            "adaptive_within_band": adaptive_max <= band_high,
            "static_within_band": static_max <= band_high,
            "retiles": retiles,
            "final_k": final_k,
        },
        "adaptive": adaptive_segments,
        "static": static_segments,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
