"""CI gate: the adaptive controller must hold the alert-rate band.

Runs the ``bench_adaptive`` ramp (quick by default) — offered
concurrency climbing 10x past the geometry the group was provisioned
for — and gates three properties of the self-tuning loop
(``repro.net.adaptive``, DESIGN.md §11):

1. **band**: every settled adaptive segment's measured alert rate stays
   at or under the band ceiling — the controller's whole contract;
2. **stress**: the static arm *leaves* the band somewhere on the ramp —
   otherwise the fixture stopped exercising the failure mode the
   controller exists for and the band check above is vacuous;
3. **theory**: at the top of the ramp the settled alert rate tracks
   ``P_err(R, K, X)`` within an order of magnitude (the same sanity
   tolerance as ``check_alert_sanity.py``) — catching a dead alert
   pipeline (controller blind) or a detector firing on everything
   (controller thrashing) without flaking on statistics.

Exit 0 when all three hold, 1 otherwise.
"""

import argparse
import sys

import bench_adaptive
from repro.core.theory import p_error


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="run the full 5-level ramp instead of the quick one")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="allowed multiplicative deviation from theory "
                             "at the top of the ramp")
    args = parser.parse_args()

    levels, target = bench_adaptive.FULL if args.full else bench_adaptive.QUICK
    band_high = bench_adaptive.BAND[1]
    adaptive = bench_adaptive.settled(
        bench_adaptive.run_arm(True, levels, target, args.seed)
    )
    static = bench_adaptive.run_arm(False, levels, target, args.seed)

    failures = []

    for segment in adaptive:
        flag = "" if segment["alert_rate"] <= band_high else "  <-- out of band"
        print(f"adaptive X={segment['x_offered']:5.1f}  K={segment['k']:2d}  "
              f"alert_rate={segment['alert_rate']:.4f}  "
              f"(band high {band_high}){flag}")
        if segment["alert_rate"] > band_high:
            failures.append(
                f"settled adaptive segment at X={segment['x_offered']} "
                f"has alert rate {segment['alert_rate']:.4f} > {band_high}"
            )

    static_max = max(s["alert_rate"] for s in static)
    print(f"static  max alert_rate={static_max:.4f} "
          f"({static_max / band_high:.1f}x the band ceiling)")
    if static_max <= band_high:
        failures.append(
            f"static arm never left the band (max {static_max:.4f} <= "
            f"{band_high}) — the ramp no longer stresses the geometry"
        )

    top = adaptive[-1]
    predicted = p_error(bench_adaptive.R, top["k"], top["x_measured"])
    if predicted <= 0:
        failures.append("theory predicts zero error at the top of the ramp; "
                        "the gate cannot calibrate")
    else:
        ratio = top["alert_rate"] / predicted
        print(f"top of ramp: alert_rate={top['alert_rate']:.4f} vs "
              f"P_err(R={bench_adaptive.R}, K={top['k']}, "
              f"X={top['x_measured']:.1f})={predicted:.4f} -> ratio "
              f"{ratio:.2f}x (tolerance {args.tolerance:.0f}x)")
        if not (1.0 / args.tolerance <= ratio <= args.tolerance):
            failures.append(
                f"settled alert rate deviates {ratio:.2f}x from theory — "
                f"the alert pipeline is broken or the detector misfires"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("adaptive sizing gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
