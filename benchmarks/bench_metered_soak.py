"""Metered chaos soak: four lossy UDP nodes exporting metrics JSONL.

The observability acceptance scenario, runnable standalone and in CI's
bench-smoke job: four real ``create_node()`` participants under 20%
datagram loss (plus duplication and reordering) broadcast on disjoint
key sets until full convergence, each exporting periodic registry
snapshots to ``results/metered_soak/<name>.metrics.jsonl``.  The script
then merges the per-node exports fleet-wide and **fails (exit 1)** if
the pipeline was dead anywhere:

* ``repro_detector_checks_total`` must be nonzero (the alert pipeline
  ran on every delivery);
* the wire counters must show real traffic and real repair
  (``datagrams_sent``, ``retransmits``);
* the pending-depth gauge must have been exported;
* the delivery-latency histogram must have observed every delivery.

The merged snapshot is written to ``results/metered_soak/merged.json``
and the JSONL files are what CI uploads as the run artifact.  Render
them interactively with ``python -m repro stats results/metered_soak/*.jsonl``.

``--profile`` additionally runs the soak under :mod:`cProfile` (the
sampling profilers aren't installable here) and drops both the raw
``soak.prof`` dump and a cumulative-time text summary into the output
directory, so every CI run ships a hot-path profile in its artifact.
"""

import argparse
import asyncio
import cProfile
import io
import json
import pathlib
import pstats
import shutil
import sys

from repro.api import NodeConfig, create_node
from repro.analysis.tables import render_table
from repro.net import BatchedUdpTransport, FaultyTransport
from repro.obs import Histogram, last_snapshot, merge_snapshots
from repro.util.rng import RandomSource

from _common import RESULTS_DIR

NAMES = ("a", "b", "c", "d")
FAULTS = dict(drop_rate=0.20, duplicate_rate=0.10, reorder_rate=0.10)


async def wait_for(predicate, timeout=60.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def run_soak(out_dir, rounds):
    config = NodeConfig(
        r=64, k=3, ack_timeout=0.02, anti_entropy_interval=0.1,
        heartbeat_interval=0.05, quarantine_after=1.0,
        metrics_interval=0.2,
    )
    keys = {name: tuple(range(3 * i, 3 * i + 3)) for i, name in enumerate(NAMES)}
    nodes = {}
    for name in NAMES:
        # The batched driver is the shipping default; soak (and profile)
        # the path production nodes actually run.
        udp = await BatchedUdpTransport.create()
        transport = FaultyTransport(
            udp, rng=RandomSource(seed=13).spawn(f"soak-{name}"), **FAULTS
        )
        nodes[name] = await create_node(
            name,
            config.replace(
                keys=keys[name],
                metrics_path=str(out_dir / f"{name}.metrics.jsonl"),
            ),
            transport=transport,
        )
    for name, node in nodes.items():
        for other in NAMES:
            if other != name:
                node.add_peer(nodes[other].local_address)

    sent = 0
    for _ in range(rounds):
        for node in nodes.values():
            await node.broadcast(("payload", sent))
            sent += 1
        await asyncio.sleep(0.05)

    def converged():
        # delivered_payloads() includes a node's own broadcasts, so full
        # convergence is every node holding every message sent.
        return all(
            len(node.delivered_payloads()) == sent for node in nodes.values()
        )

    ok = await wait_for(converged)
    for node in nodes.values():
        await node.close()
    if not ok:
        delivered = {n: len(node.delivered_payloads()) for n, node in nodes.items()}
        raise SystemExit(f"soak never converged: sent={sent}, delivered={delivered}")
    return sent


def check_merged(out_dir):
    snapshots = []
    for name in NAMES:
        snapshot = last_snapshot(out_dir / f"{name}.metrics.jsonl")
        if snapshot is None:
            raise SystemExit(f"{name} exported no metrics snapshot")
        snapshots.append(snapshot)
    fleet = merge_snapshots(snapshots)
    counters = fleet["counters"]
    waits = Histogram.from_dict(fleet["histograms"]["repro_delivery_wait_seconds"])
    gates = [
        ("detector checks > 0", counters["repro_detector_checks_total"] > 0),
        ("deliveries > 0", counters["repro_endpoint_delivered_total"] > 0),
        ("datagrams sent > 0", counters["repro_wire_datagrams_sent_total"] > 0),
        ("retransmits > 0 (loss was repaired)",
         counters["repro_wire_retransmits_total"] > 0),
        ("pending-depth gauge exported", "repro_pending_depth" in fleet["gauges"]),
        ("delivery-wait histogram populated", waits.count > 0),
    ]
    failed = [label for label, passed in gates if not passed]
    rows = [
        ["deliveries", counters["repro_endpoint_delivered_total"]],
        ["detector checks", counters["repro_detector_checks_total"]],
        ["detector alerts", counters["repro_detector_alerts_total"]],
        ["datagrams sent", counters["repro_wire_datagrams_sent_total"]],
        ["retransmits", counters["repro_wire_retransmits_total"]],
        ["delivery wait p95 (s)", f"{waits.quantile(0.95):.4f}"],
        ["delivery wait mean (s)", f"{waits.mean:.4f}"],
    ]
    print(render_table(["fleet metric", "value"], rows, title="metered soak"))
    with open(out_dir / "merged.json", "w", encoding="utf-8") as handle:
        json.dump(fleet, handle, indent=2, sort_keys=True)
    if failed:
        for label in failed:
            print(f"GATE FAILED: {label}", file=sys.stderr)
        return 1
    print("all observability gates passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=12,
                        help="broadcast rounds (4 messages per round)")
    parser.add_argument("--quick", action="store_true",
                        help="short CI-sized run (6 rounds)")
    parser.add_argument("--out-dir", default=str(RESULTS_DIR / "metered_soak"))
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; write soak.prof + "
                             "soak.profile.txt into --out-dir")
    args = parser.parse_args()
    out_dir = pathlib.Path(args.out_dir)
    if out_dir.exists():
        shutil.rmtree(out_dir)
    out_dir.mkdir(parents=True)
    rounds = 6 if args.quick else args.rounds
    if args.profile:
        profiler = cProfile.Profile()
        profiler.enable()
        sent = asyncio.run(run_soak(out_dir, rounds))
        profiler.disable()
        profiler.dump_stats(out_dir / "soak.prof")
        text = io.StringIO()
        stats = pstats.Stats(profiler, stream=text)
        stats.strip_dirs().sort_stats("cumulative").print_stats(40)
        (out_dir / "soak.profile.txt").write_text(
            text.getvalue(), encoding="utf-8"
        )
        print(f"profile written to {out_dir}/soak.prof (+ .profile.txt)")
    else:
        sent = asyncio.run(run_soak(out_dir, rounds))
    print(f"converged: {sent} messages, metrics in {out_dir}/")
    return check_merged(out_dir)


if __name__ == "__main__":
    sys.exit(main())
