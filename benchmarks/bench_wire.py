"""Wire-path benchmark: coalescing + delayed ACKs + delta timestamps.

The tentpole claim of the batched wire path is a constant-factor one —
the PR-1 runtime ships every frame in its own datagram, acks every DATA
frame with a standalone ACK datagram, and carries the full R-entry
timestamp on every message, so a steady bidirectional stream costs
~2 datagrams and a full vector per message.  The batched path coalesces
frames into MTU-budgeted BATCH datagrams, holds cumulative ACKs briefly
so they piggyback on reverse traffic, and delta-encodes timestamps
against the last acked full encoding.  This script measures all three
together on real loopback UDP:

* two ``create_node()`` participants at R=100, K=2 exchanging
  bidirectional bursts (the steady-state regime the ISSUE targets);
* the *same* workload run against the legacy configuration
  (``coalesce_mtu=0, ack_delay=0, wire_delta=False`` — byte-for-byte
  the PR-1 wire behaviour) and the batched defaults;
* at 0% and 25% injected datagram loss (loss forces retransmissions
  and the delta path's full-encoding fallback).

Headline metrics are *ratios within one run* — datagrams per delivered
message and wire bytes per delivered message, legacy over batched — so
machine speed cancels.  Results land in ``BENCH_wire.json`` at the repo
root; the committed copy is the baseline gated by
``check_regression.py --wire-fresh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wire.py            # full
    PYTHONPATH=src python benchmarks/bench_wire.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time
from typing import Optional

from repro.api import NodeConfig, create_node
from repro.net import FaultyTransport, UdpTransport
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_wire.json"

HEADLINE = "steady_r100_k2_loss0"

# The legacy wire configuration: one datagram per frame, one standalone
# ACK per DATA frame, full timestamps always — PR-1's observable wire
# behaviour, kept reachable through the same knobs the batched path uses.
LEGACY = dict(coalesce_mtu=0, ack_delay=0.0, wire_delta=False)
BATCHED: dict = {}  # the NodeConfig defaults

# name -> (loss, rounds, burst)
SCENARIOS = {
    "steady_r100_k2_loss0": (0.0, 30, 8),
    "steady_r100_k2_loss25": (0.25, 30, 8),
}
QUICK = {
    "steady_r100_k2_loss0": (0.0, 10, 8),
    "steady_r100_k2_loss25": (0.25, 10, 8),
}


async def _wait_for(predicate, timeout=60.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def _boot(name: str, config: NodeConfig, loss: float, seed: int):
    transport = await UdpTransport.create()
    if loss > 0:
        transport = FaultyTransport(
            transport,
            drop_rate=loss,
            rng=RandomSource(seed=seed).spawn(f"wire-{name}"),
        )
    return await create_node(name, config, transport=transport)


async def _run_case(wire_kwargs: dict, loss: float, rounds: int, burst: int) -> dict:
    """One workload run; returns per-message wire metrics."""
    config = NodeConfig(
        r=100,
        k=2,
        ack_timeout=0.05,
        anti_entropy_interval=0.2,
        heartbeat_interval=0.0,
        **wire_kwargs,
    )
    left = await _boot("left", config, loss, seed=11)
    right = await _boot("right", config, loss, seed=12)
    left.add_peer(right.local_address)
    right.add_peer(left.local_address)
    total = rounds * burst * 2
    try:
        start = time.perf_counter()
        for round_index in range(rounds):
            for node, name in ((left, "left"), (right, "right")):
                for i in range(burst):
                    await node.broadcast((name, round_index, i))
            # One ack-delay's worth of gap between bursts: long enough
            # for held ACKs to either piggyback on the reverse burst or
            # flush, short enough that the stream is genuinely steady.
            await asyncio.sleep(0.005)
        converged = await _wait_for(
            lambda: len(left.deliveries) == total and len(right.deliveries) == total
        )
        elapsed = time.perf_counter() - start
        if not converged:
            raise RuntimeError(
                f"no convergence: sent={total}, delivered="
                f"left={len(left.deliveries)} right={len(right.deliveries)}"
            )
        stats = left.transport_stats().merge(right.transport_stats())
        return {
            "messages": total,
            "seconds": round(elapsed, 4),
            "msgs_per_sec": round(total / elapsed, 1),
            "datagrams_per_msg": round(stats.datagrams_sent / total, 3),
            "bytes_per_msg": round(stats.bytes_sent / total, 1),
            "datagrams_sent": stats.datagrams_sent,
            "bytes_sent": stats.bytes_sent,
            "frames_per_datagram": round(
                stats.frames_sent / stats.datagrams_sent, 2
            ) if stats.datagrams_sent else 0.0,
            "batches_sent": stats.batches_sent,
            "acks_sent": stats.acks_sent,
            "acks_piggybacked": stats.acks_piggybacked,
            "delta_sent": stats.delta_sent,
            "full_sent": stats.full_sent,
            "retransmits": stats.retransmits,
        }
    finally:
        await left.close()
        await right.close()


def run_scenario(name: str, loss: float, rounds: int, burst: int) -> dict:
    result = {
        "name": name,
        "params": {"r": 100, "k": 2, "loss": loss, "rounds": rounds, "burst": burst},
    }
    for label, kwargs in (("legacy", LEGACY), ("batched", BATCHED)):
        result[label] = asyncio.run(_run_case(kwargs, loss, rounds, burst))
    legacy, batched = result["legacy"], result["batched"]
    result["datagrams_ratio"] = round(
        legacy["datagrams_per_msg"] / batched["datagrams_per_msg"], 2
    )
    result["bytes_ratio"] = round(
        legacy["bytes_per_msg"] / batched["bytes_per_msg"], 2
    )
    result["throughput_ratio"] = round(
        batched["msgs_per_sec"] / legacy["msgs_per_sec"], 2
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: fewer rounds per scenario",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result JSON path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    table = QUICK if args.quick else SCENARIOS
    scenarios = []
    for name, (loss, rounds, burst) in table.items():
        result = run_scenario(name, loss, rounds, burst)
        scenarios.append(result)
        legacy, batched = result["legacy"], result["batched"]
        print(
            f"{name:24s} msgs={legacy['messages']:4d}  "
            f"datagrams/msg {legacy['datagrams_per_msg']:.2f} -> "
            f"{batched['datagrams_per_msg']:.2f} ({result['datagrams_ratio']:.1f}x)  "
            f"bytes/msg {legacy['bytes_per_msg']:.0f} -> "
            f"{batched['bytes_per_msg']:.0f} ({result['bytes_ratio']:.1f}x)  "
            f"throughput {result['throughput_ratio']:.2f}x"
        )
        print(
            f"{'':24s} batched: frames/datagram={batched['frames_per_datagram']:.2f}  "
            f"acks piggybacked={batched['acks_piggybacked']}/{batched['acks_sent']}  "
            f"delta/full={batched['delta_sent']}/{batched['full_sent']}"
        )

    headline: Optional[dict] = next(
        (s for s in scenarios if s["name"] == HEADLINE), None
    )
    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
        },
        "headline": {
            "name": HEADLINE,
            "datagrams_ratio": headline["datagrams_ratio"] if headline else None,
            "bytes_ratio": headline["bytes_ratio"] if headline else None,
            "throughput_ratio": headline["throughput_ratio"] if headline else None,
        },
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    if headline is not None:
        print(
            f"headline {HEADLINE}: {headline['datagrams_ratio']:.2f}x fewer "
            f"datagrams/msg, {headline['bytes_ratio']:.2f}x fewer bytes/msg"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
