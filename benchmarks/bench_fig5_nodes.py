"""Figure 5 — error rate against N at fixed per-node send rate.

Paper setup: λ = 5000 ms fixed, R = 100, K = 4, protocol dimensioned for
N = 1000; the error rate grows quickly as soon as N exceeds the estimate
("1000 should be considered as the maximum number of nodes in this
case").  More nodes at the same per-node rate means proportionally more
concurrency: X = (N−1)·delay/λ.

Our reproduction fixes λ so the estimate population N_est = 150 gives
X = 20, then sweeps N across 2/3·N_est … 2·N_est — the same X range the
paper's 500…2000 sweep covers around its N = 1000 estimate.  The table
reports the paper-equivalent N (scaled by 1000/150).

Shape assertion: the error rate at 2·N_est exceeds the estimate point by
a wide margin, and the curve is (weakly) increasing from the estimate up.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import render_table
from repro.core.theory import p_error
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    run_duration,
    points_table,
    report,
    scaled_duration,
    series_chart,
)

N_ESTIMATE = 150
R = 100
K = 4
ESTIMATE_X = 20.0
POPULATIONS = [100, 125, 150, 200, 250, 300]
TARGET_DELIVERIES = 70_000.0
PAPER_N_ESTIMATE = 1000


def run_figure5():
    lam = lambda_for_concurrency(N_ESTIMATE, ESTIMATE_X)

    def config_for(base, n_nodes):
        duration = run_duration(TARGET_DELIVERIES, n_nodes, lam)
        return dataclasses.replace(base, n_nodes=n_nodes, duration_ms=duration)

    base = SimulationConfig(
        n_nodes=N_ESTIMATE,
        r=R,
        k=K,
        key_assigner="random-colliding",
        workload=PoissonWorkload(lam),
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        track_latency=False,
    )
    return sweep_parameter(
        base,
        values=POPULATIONS,
        make_config=config_for,
        repeats=1,
        seed_base=500,
    )


def test_fig5_nodes(benchmark):
    points = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    rows = []
    for point in points:
        x_nominal = (point.value - 1) * MEAN_DELAY_MS / (
            lambda_for_concurrency(N_ESTIMATE, ESTIMATE_X)
        )
        rows.append(
            [
                point.value,
                point.value * PAPER_N_ESTIMATE // N_ESTIMATE,
                point.eps_min.value,
                point.eps_max.value,
                point.concurrency.value,
                p_error(R, K, max(x_nominal, 0.1)),
                point.deliveries,
            ]
        )
    table = render_table(
        [
            "N",
            "paper-equiv N",
            "eps_min",
            "eps_max",
            "X measured",
            "P_err theory",
            "deliveries",
        ],
        rows,
        title=f"fixed lambda (estimate N={N_ESTIMATE} -> X={ESTIMATE_X}), R={R}, K={K}",
    )
    chart = series_chart(
        "error rate vs N (eps_min)",
        {"measured": [(p.value, max(p.eps_min.value, 1e-7)) for p in points]},
        x_label="N",
    )
    report("fig5_nodes", table + "\n\n" + chart)

    by_n = {p.value: p for p in points}
    # Past the estimate the error rate takes off.
    assert by_n[300].eps_min.value > 5 * max(by_n[150].eps_min.value, 1e-6)
    # Weak monotonicity above the estimate (allow small-sample noise).
    assert by_n[300].eps_min.value >= by_n[200].eps_min.value * 0.8
    assert by_n[250].eps_min.value >= by_n[150].eps_min.value * 0.8
