"""Figure 6 — error rate against N at constant aggregate receive rate.

Paper setup: the per-node *receive* rate is held constant while N varies
(λ scales with N), protocol dimensioned for N = 1000.  Result: the error
rate stays flat as N grows past the estimate — demonstrating that the
mechanism's error is governed by the concurrency X, not by N itself —
but *increases* when N shrinks below the estimate, because the same
aggregate traffic concentrated on fewer senders makes each sender bursty:
consecutive (causally ordered!) messages of one sender leave within a
transit time and get reordered, raising P_nc.

We reproduce with the estimate at N = 150 (X = 20) and sweep N from far
below to above.  Shape assertions: flat (within noise) above the
estimate; clearly elevated at the small-N end.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import render_table
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    run_duration,
    report,
    scaled_duration,
    series_chart,
)

N_ESTIMATE = 150
R = 100
K = 4
TARGET_X = 20.0
POPULATIONS = [25, 50, 100, 150, 200, 250]
TARGET_DELIVERIES = 70_000.0


def run_figure6():
    def config_for(base, n_nodes):
        lam = lambda_for_concurrency(n_nodes, TARGET_X)
        duration = run_duration(TARGET_DELIVERIES, n_nodes, lam)
        return dataclasses.replace(
            base,
            n_nodes=n_nodes,
            workload=PoissonWorkload(lam),
            duration_ms=duration,
        )

    base = SimulationConfig(
        n_nodes=N_ESTIMATE,
        r=R,
        k=K,
        key_assigner="random-colliding",
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        track_latency=False,
        track_reception_order=True,
    )
    return sweep_parameter(
        base,
        values=POPULATIONS,
        make_config=config_for,
        repeats=1,
        seed_base=600,
    )


def test_fig6_constant_rate(benchmark):
    points = benchmark.pedantic(run_figure6, rounds=1, iterations=1)

    rows = []
    for point in points:
        result = point.results[0]
        lam = lambda_for_concurrency(point.value, TARGET_X)
        rows.append(
            [
                point.value,
                lam,
                point.eps_min.value,
                point.eps_max.value,
                result.measured_p_nc,
                point.concurrency.value,
                point.deliveries,
            ]
        )
    table = render_table(
        ["N", "lambda (ms)", "eps_min", "eps_max", "P_nc", "X measured", "deliveries"],
        rows,
        title=f"constant receive rate (X={TARGET_X}), R={R}, K={K}, estimate N={N_ESTIMATE}",
    )
    chart = series_chart(
        "error rate vs N at constant rate (eps_min)",
        {
            "eps_min": [(p.value, max(p.eps_min.value, 1e-7)) for p in points],
            "P_nc/10": [
                (p.value, max(p.results[0].measured_p_nc / 10.0, 1e-7))
                for p in points
            ],
        },
        x_label="N",
    )
    report("fig6_constant_rate", table + "\n\n" + chart)

    by_n = {p.value: p for p in points}
    # The paper attributes the small-N rise to each node sending more
    # often; that driver — the network reordering rate P_nc — must rise
    # monotonically as N shrinks.  (At laptop scale the resulting eps
    # elevation is partially offset by the reduced key-set diversity of
    # concurrent traffic: the same few senders repeat, covering fewer
    # distinct entries.  EXPERIMENTS.md discusses the offset.)
    p_nc = {n: by_n[n].results[0].measured_p_nc for n in POPULATIONS}
    assert p_nc[25] > p_nc[100] > p_nc[250]
    # Bursty senders at the small-N end do produce errors.
    assert by_n[25].eps_max.value > 0
    # The headline contrast with Figure 5: growing N at constant receive
    # rate does NOT grow the error rate (X stays put) — the curve above
    # the estimate is flat within noise rather than taking off.
    assert by_n[250].eps_min.value <= 4 * max(by_n[150].eps_min.value, 1e-4)
