"""Wire overhead — what the timestamps actually cost on the network.

The paper's core economic argument is "few integer timestamps" against
the vector clock's N counters.  The static table (§2) counts abstract
entries; this benchmark measures *encoded bytes* with the real wire
codec, in realistic clock states (counters grown by traffic), across the
clock family and across R:

* varint (LEB128) entries shrink young vectors dramatically and keep a
  2-3x advantage even after millions of increments (counters grow
  logarithmically in bytes);
* the (R, K) timestamp's size is independent of both N and the traffic
  history's *origin* — only total volume matters;
* the vector clock's encoded size crosses the (R=100) timestamp as soon
  as N > ~R, exactly the regime the paper targets.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.clocks import EntryVectorClock, VectorCausalClock
from repro.core.codec import MessageCodec
from repro.core.protocol import CausalBroadcastEndpoint
from repro.util.rng import RandomSource

from _common import report

TRAFFIC_STEPS = [0, 1_000, 100_000]  # messages the system has seen
SYSTEM_SIZES = [50, 100, 1_000, 10_000]
R = 100
K = 4


def grown_clock(clock_factory, traffic, rng):
    """A clock whose entries reflect ``traffic`` prior messages."""
    clock = clock_factory()
    if traffic:
        # Simulate history: spread `traffic` increments over the entries
        # via the bootstrap path (cheaper than delivering one by one).
        r = clock.r
        base = traffic * clock.k // r
        vector = [max(0, base + rng.integer(-base // 2 - 1, base // 2 + 1)) for _ in range(r)]
        clock.initialize_from(vector)
    return clock


def encoded_sizes():
    rng = RandomSource(seed=77).spawn("wire")
    varint_codec = MessageCodec(varint_entries=True)
    fixed_codec = MessageCodec(varint_entries=False)
    rows = []

    for traffic in TRAFFIC_STEPS:
        # (R, K) clock — size independent of N by construction.
        rk_clock = grown_clock(lambda: EntryVectorClock(R, (3, 17, 42, 88)), traffic, rng)
        endpoint = CausalBroadcastEndpoint("rk", rk_clock)
        message = endpoint.broadcast(None)
        rk_varint = varint_codec.encoded_size(message)
        rk_fixed = fixed_codec.encoded_size(message)

        vector_sizes = {}
        for n in SYSTEM_SIZES:
            vc = grown_clock(lambda n=n: VectorCausalClock(n, 0), traffic, rng)
            vc_endpoint = CausalBroadcastEndpoint("vc", vc)
            vc_message = vc_endpoint.broadcast(None)
            vector_sizes[n] = varint_codec.encoded_size(vc_message)

        rows.append(
            [
                traffic,
                rk_varint,
                rk_fixed,
                vector_sizes[50],
                vector_sizes[100],
                vector_sizes[1_000],
                vector_sizes[10_000],
            ]
        )
    return rows


def test_wire_overhead(benchmark):
    rows = benchmark.pedantic(encoded_sizes, rounds=1, iterations=1)

    table = render_table(
        [
            "prior msgs",
            f"(R={R},K={K}) varint B",
            f"(R={R},K={K}) fixed B",
            "VC n=50 B",
            "VC n=100 B",
            "VC n=1000 B",
            "VC n=10000 B",
        ],
        rows,
        title="encoded message size (empty payload), real wire codec",
    )
    report("wire_overhead", table)

    young, mid, old = rows
    # Varint beats fixed encoding at every age; hugely when young.
    assert young[1] < young[2] / 2
    assert old[1] < old[2]
    # The (R, K) timestamp is independent of N; the vector clock is not:
    # at n = 1000 (the paper's population) it already dwarfs (R, K).
    for row in rows:
        assert row[5] > 3 * row[1]
        assert row[6] > 30 * row[1]
    # Below R the vector clock is naturally smaller — the paper's scheme
    # is a large-system play.
    assert young[3] <= young[1]
    # Growth with traffic is logarithmic-ish: 100x more messages must not
    # double the varint size more than a few times over.
    assert old[1] < young[1] * 8
