"""Section 4.2 — the delivery-error detectors (Algorithms 4 and 5).

The paper makes three qualitative claims:

1. Algorithm 4 is *sound one way*: "In case there is no alert, we are
   sure there is no error" — so it must catch every bypassed (late)
   delivery: recall = 1.
2. Algorithm 4 "greatly over-estimates the number of errors" — most of
   its alerts are false (low precision).
3. Algorithm 5's recent-messages list "limit[s] the number of false
   detections" — fewer alerts, higher precision, at the cost of
   potentially missing some bypasses when the list/window is too small.

This benchmark runs the same loaded configuration under the three
detector settings and cross-tabulates the alerts against the oracle.
"""

import dataclasses

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 150
R = 100
K = 4
TARGET_X = 25.0  # slightly above the dimensioning point: violations frequent
TARGET_DELIVERIES = 70_000.0
DETECTORS = ["none", "basic", "refined"]


def run_detector_ablation():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    results = {}
    for detector in DETECTORS:
        config = SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector=detector,
            duration_ms=duration,
            track_latency=False,
        )
        (results[detector],) = run_repeated(config, repeats=1, seed_base=800)
    return results


def test_detector_ablation(benchmark):
    results = benchmark.pedantic(run_detector_ablation, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        alerts = result.alerts
        rows.append(
            [
                name,
                alerts.alerts,
                alerts.alert_rate,
                alerts.precision,
                alerts.recall_late,
                alerts.late_caught,
                alerts.late_missed,
                alerts.false_positives,
                result.counters.violations,
                result.counters.ambiguous,
                result.wall_seconds,
            ]
        )
    table = render_table(
        [
            "detector",
            "alerts",
            "alert_rate",
            "precision",
            "recall_late",
            "late_caught",
            "late_missed",
            "false_pos",
            "violations",
            "ambiguous",
            "wall_s",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}",
    )
    report("detector_ablation", table)

    basic = results["basic"].alerts
    refined = results["refined"].alerts
    none = results["none"].alerts

    # Claim 1: Algorithm 4 never misses a bypassed delivery.
    assert basic.late_missed == 0
    assert basic.recall_late == 1.0
    # Claim 2: it heavily over-alerts (precision far below 1).
    assert basic.false_positives > basic.late_caught
    assert basic.precision < 0.5
    # Claim 3: Algorithm 5 fires fewer alerts and is more precise.
    assert refined.alerts < basic.alerts
    assert refined.precision >= basic.precision
    # The null detector is silent.
    assert none.alerts == 0
    # All three configurations saw comparable violation counts (the
    # detector is an observer, not an actor).
    violations = [r.counters.violations for r in results.values()]
    assert max(violations) <= 3 * max(min(violations), 1)
