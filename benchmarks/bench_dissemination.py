"""Dissemination ablation — direct broadcast vs push gossip (Definition 2).

The paper positions its mechanism for large systems whose transport is a
*probabilistic broadcast* (gossip): redundant, duplicate-heavy, and only
probabilistically complete.  This benchmark runs identical traffic over
the reliable direct broadcast and over infect-and-die push gossip at
several fanouts, and measures what the transport choice costs the causal
layer:

* **redundancy** — gossip transmissions per delivered message (the
  duplicate factor the endpoint's filter absorbs);
* **coverage** — deliveries achieved vs expected (low fanout leaves
  nodes uncovered, which also strands their causal successors);
* **latency** — gossip's multi-hop paths stretch the delivery time;
* **ordering** — gossip's extra path-length variance raises P_nc and
  with it the violation rate.
"""

import dataclasses

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.sim import (
    DirectBroadcast,
    GaussianDelayModel,
    PartialViewGossip,
    PoissonWorkload,
    PushGossip,
    SimulationConfig,
)

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 80
R = 100
K = 4
TARGET_X = 20.0
TARGET_DELIVERIES = 50_000.0
GOSSIP_FANOUTS = [3, 5, 8]


def run_dissemination_matrix():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    delay = GaussianDelayModel(MEAN_DELAY_MS)

    def config(dissemination):
        return SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=delay,
            dissemination=dissemination,
            detector="none",
            duration_ms=duration,
            track_reception_order=True,
        )

    scenarios = {"direct": config(DirectBroadcast(delay))}
    for fanout in GOSSIP_FANOUTS:
        scenarios[f"gossip(f={fanout})"] = config(PushGossip(delay, fanout=fanout))
    # lpbcast regime: nobody knows the membership, pushes use bounded
    # partial views with throttled membership piggybacking.
    scenarios["partial-view(f=8,v=15)"] = config(
        PartialViewGossip(
            delay, fanout=8, view_size=15, piggyback_size=3, merge_probability=0.02
        )
    )
    # The full stack: probabilistic dissemination + anti-entropy completes
    # the coverage, exactly the pairing the paper's context assumes.
    top_fanout = GOSSIP_FANOUTS[-1]
    repaired = config(PushGossip(delay, fanout=top_fanout))
    scenarios[f"gossip(f={top_fanout})+recovery"] = dataclasses.replace(
        repaired, recovery="periodic", recovery_period_ms=1_000.0
    )
    return {
        name: run_repeated(cfg, repeats=1, seed_base=1400)[0]
        for name, cfg in scenarios.items()
    }


def test_dissemination(benchmark):
    results = benchmark.pedantic(run_dissemination_matrix, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        expected = result.sent * (N_NODES - 1)
        coverage = result.delivered_remote / expected if expected else 0.0
        redundancy = (
            (result.delivered_remote + result.duplicates) / result.delivered_remote
            if result.delivered_remote
            else 0.0
        )
        rows.append(
            [
                name,
                coverage,
                redundancy,
                result.latency["mean"],
                result.latency["p99"],
                result.measured_p_nc,
                result.counters.eps_min,
                result.counters.eps_max,
                result.stuck_pending,
            ]
        )
    table = render_table(
        [
            "transport",
            "coverage",
            "redundancy",
            "lat mean (ms)",
            "lat p99 (ms)",
            "P_nc",
            "eps_min",
            "eps_max",
            "stuck",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X}",
    )
    report("dissemination", table)

    direct = results["direct"]
    low_fanout = results[f"gossip(f={GOSSIP_FANOUTS[0]})"]
    high_fanout = results[f"gossip(f={GOSSIP_FANOUTS[-1]})"]

    # Direct broadcast: complete, duplicate-free, single-hop latency.
    assert direct.duplicates == 0
    assert direct.delivered_remote == direct.sent * (N_NODES - 1)
    # Gossip pays redundancy for its robustness...
    assert high_fanout.duplicates > 0
    # ...and multi-hop paths stretch latency beyond the single hop.
    assert high_fanout.latency["mean"] > direct.latency["mean"] * 1.3
    # Higher fanout buys coverage: the high-fanout run reaches at least
    # as much of the membership as the low-fanout run, and most of it.
    high_coverage = high_fanout.delivered_remote / (high_fanout.sent * (N_NODES - 1))
    low_coverage = low_fanout.delivered_remote / (low_fanout.sent * (N_NODES - 1))
    assert high_coverage >= low_coverage
    assert high_coverage > 0.9
    # Gossip's path-length variance raises the reordering rate.
    assert high_fanout.measured_p_nc > direct.measured_p_nc
    # Partial views (no membership knowledge at all) still reach most of
    # the system, at a further coverage discount vs full-view gossip.
    partial = results["partial-view(f=8,v=15)"]
    partial_coverage = partial.delivered_remote / (partial.sent * (N_NODES - 1))
    assert partial_coverage > 0.6
    # Coverage gaps strand causal successors; pairing gossip with
    # anti-entropy (the paper's assumed recovery) completes delivery.
    composed = results[f"gossip(f={GOSSIP_FANOUTS[-1]})+recovery"]
    assert high_fanout.stuck_pending > 0
    assert composed.stuck_pending == 0
    assert composed.undelivered_messages == 0
