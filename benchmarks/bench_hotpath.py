"""Hot-path microbenchmark: the entry-indexed drain vs the reference drain.

The tentpole claim of the vectorized delivery engine is an asymptotic
one — the naive drain re-checks every pending message against the local
vector on every delivery (O(P·R) work per delivery), while the
entry-indexed :class:`~repro.core.pending.PendingBuffer` only rechecks
the pending messages registered under the entries a delivery actually
incremented (amortized O(K + unblocked·R)).  This script measures it:

* a shared, pre-generated, causally-entangled trace per scenario
  (N senders, R-entry clocks, a fraction of arrivals delayed to build a
  deep pending queue — the retransmission regime of a 25 %-loss link);
* the *same* arrival sequence fed to ``engine="indexed"``,
  ``engine="naive"``, and ``engine="auto"`` endpoints, timing
  full-trace ingestion (``auto`` starts naive and promotes to the
  indexed buffer at the pending-depth threshold — the default engine);
* a micro-measurement of the vectorized ``Timestamp.dominates_on``
  against the per-entry Python-loop reference it replaced (the
  Algorithm 5 detector hot check).

Results land in ``BENCH_hotpath.json`` at the repo root — the committed
copy is the regression baseline checked by ``check_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.clocks import ProbabilisticCausalClock, Timestamp
from repro.core.keyspace import HashKeyAssigner
from repro.core.protocol import CausalBroadcastEndpoint, Message

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hotpath.json"

HEADLINE = "drain_n64_r100_loss25"

# name -> (senders, r, delayed_fraction, rounds)
SCENARIOS: Dict[str, Tuple[int, int, float, int]] = {
    "drain_n8_r100_loss25": (8, 100, 0.25, 160),
    "drain_n32_r100_loss25": (32, 100, 0.25, 48),
    "drain_n64_r100_loss25": (64, 100, 0.25, 48),
    "drain_n32_r32_loss25": (32, 32, 0.25, 48),
    "drain_n32_r256_loss25": (32, 256, 0.25, 48),
    "drain_n32_r100_loss0": (32, 100, 0.0, 48),
    "drain_n32_r100_loss10": (32, 100, 0.10, 48),
}

# Quick mode runs a subset at IDENTICAL sizes (so deliveries/sec stays
# comparable to the committed full-run baseline), with fewer repeats.
QUICK_SCENARIOS = (HEADLINE, "drain_n8_r100_loss25", "drain_n32_r100_loss0")


def build_trace(
    senders: int, r: int, k: int, rounds: int, seed: int
) -> List[Message]:
    """A causally-entangled broadcast history shared by both engines.

    Every sender broadcasts each round; each broadcast is applied (in
    order) at a random ~60 % of the other senders, so later timestamps
    causally chain across processes.
    """
    rng = random.Random(seed)
    assigner = HashKeyAssigner(r=r, k=k)
    endpoints = [
        CausalBroadcastEndpoint(
            f"s{i}", ProbabilisticCausalClock(r, assigner.assign(f"s{i}").keys)
        )
        for i in range(senders)
    ]
    trace: List[Message] = []
    order = list(range(senders))
    for _ in range(rounds):
        rng.shuffle(order)
        for index in order:
            message = endpoints[index].broadcast(None)
            trace.append(message)
            for other, endpoint in enumerate(endpoints):
                if other != index and rng.random() < 0.6:
                    endpoint.on_receive(message)
    return trace


def arrival_sequence(
    trace: List[Message], delayed_fraction: float, seed: int
) -> List[Message]:
    """Delay a fraction of arrivals by a random window.

    Models the retransmission regime of a lossy link: the dropped copy
    arrives one retransmit round later, behind a window of fresher
    traffic — exactly what builds a deep pending queue at the receiver.
    """
    rng = random.Random(seed)
    window = max(8, len(trace) // 4)
    keyed = []
    for position, message in enumerate(trace):
        if rng.random() < delayed_fraction:
            position += rng.uniform(1, window)
        keyed.append((position, rng.random(), message))
    keyed.sort(key=lambda t: (t[0], t[1]))
    return [message for _, _, message in keyed]


def time_engine(
    engine: str, r: int, k: int, arrivals: List[Message]
) -> Tuple[float, int, str]:
    assigner = HashKeyAssigner(r=r, k=k)
    endpoint = CausalBroadcastEndpoint(
        "rx",
        ProbabilisticCausalClock(r, assigner.assign("rx").keys),
        engine=engine,
    )
    deliver = endpoint.on_receive
    start = time.perf_counter()
    now = 0.0
    for message in arrivals:
        deliver(message, now)
        now += 1.0
    elapsed = time.perf_counter() - start
    if endpoint.pending_count != 0:
        raise RuntimeError(
            f"{engine} engine left {endpoint.pending_count} messages pending "
            "— the trace must fully drain for deliveries/sec to be comparable"
        )
    return elapsed, endpoint.stats.delivered, endpoint.active_engine


def run_scenario(name: str, repeats: int, k: int = 2, seed: int = 11) -> dict:
    senders, r, delayed, rounds = SCENARIOS[name]
    trace = build_trace(senders, r, k, rounds, seed)
    arrivals = arrival_sequence(trace, delayed, seed + 1)
    result = {
        "name": name,
        "params": {
            "senders": senders,
            "r": r,
            "k": k,
            "delayed_fraction": delayed,
            "rounds": rounds,
            "messages": len(trace),
        },
    }
    for engine in ("indexed", "naive", "auto"):
        best_seconds = None
        delivered = 0
        final = engine
        for _ in range(repeats):
            seconds, delivered, final = time_engine(engine, r, k, arrivals)
            if best_seconds is None or seconds < best_seconds:
                best_seconds = seconds
        result[engine] = {
            "seconds": round(best_seconds, 6),
            "delivered": delivered,
            "deliveries_per_sec": round(delivered / best_seconds, 1),
        }
        if engine == "auto":
            # Whether the pending-depth heuristic promoted to the
            # indexed buffer during this trace, or naive stayed cheaper.
            result[engine]["final_engine"] = final
    result["speedup"] = round(
        result["indexed"]["deliveries_per_sec"]
        / result["naive"]["deliveries_per_sec"],
        2,
    )
    result["auto_speedup"] = round(
        result["auto"]["deliveries_per_sec"]
        / result["naive"]["deliveries_per_sec"],
        2,
    )
    return result


def bench_dominates_on(repeats: int, r: int = 100, samples: int = 2000) -> dict:
    """The reworked ``dominates_on`` vs the int()-loop it replaced.

    Two regimes: the K sender keys of the detector check (tiny index
    set — served by the scalar fast path) and a wide entry set (served
    by the vectorised comparison).  The old implementation ran the
    per-entry ``int()`` loop in both.
    """
    rng = np.random.default_rng(5)
    # Domination HOLDS between the vectors: the short-circuiting loop
    # must scan every entry, which is both its worst case and the common
    # case in the detector (recent-list entries usually dominate).
    vec_b = rng.integers(0, 1000, size=r).astype(np.int64)
    vec_a = vec_b + rng.integers(0, 5, size=r).astype(np.int64)
    vec_a.flags.writeable = False
    vec_b.flags.writeable = False

    def timed(fn) -> float:
        best = None
        for _ in range(max(2, repeats)):
            start = time.perf_counter()
            for _ in range(samples):
                fn()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best / samples * 1e6  # µs per call

    result = {"r": r}
    for label, size in (("small_k3", 3), ("wide_k64", 64)):
        keys = tuple(sorted(rng.choice(r, size=size, replace=False).tolist()))
        ts_a = Timestamp(vector=vec_a, sender_keys=keys, seq=1)
        ts_b = Timestamp(vector=vec_b, sender_keys=keys, seq=1)
        entries = ts_b.sender_keys_array

        def old_loop(keys=keys):
            return all(int(vec_a[e]) >= int(vec_b[e]) for e in keys)

        loop_us = timed(old_loop)
        new_us = timed(lambda: ts_a.dominates_on(ts_b, entries))
        result[label] = {
            "entries": size,
            "old_loop_us": round(loop_us, 3),
            "new_us": round(new_us, 3),
            "speedup": round(loop_us / new_us, 2),
        }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: a scenario subset at identical sizes",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"result JSON path (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else 3
    names = QUICK_SCENARIOS if args.quick else tuple(SCENARIOS)

    scenarios = []
    for name in names:
        result = run_scenario(name, repeats)
        scenarios.append(result)
        print(
            f"{name:28s} messages={result['params']['messages']:5d}  "
            f"indexed={result['indexed']['deliveries_per_sec']:>10.1f}/s  "
            f"naive={result['naive']['deliveries_per_sec']:>10.1f}/s  "
            f"speedup={result['speedup']:.2f}x  "
            f"auto={result['auto_speedup']:.2f}x "
            f"({result['auto']['final_engine']})"
        )

    dominates = bench_dominates_on(repeats)
    for label, data in (("dominates_on K=3", dominates["small_k3"]),
                        ("dominates_on 64 entries", dominates["wide_k64"])):
        print(
            f"{label:28s} old_loop={data['old_loop_us']:.2f}us  "
            f"new={data['new_us']:.2f}us  speedup={data['speedup']:.2f}x"
        )

    headline = next((s for s in scenarios if s["name"] == HEADLINE), None)
    payload = {
        "meta": {
            "quick": args.quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "headline": {
            "name": HEADLINE,
            "speedup": headline["speedup"] if headline else None,
        },
        "scenarios": scenarios,
        "dominates_on": dominates,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    if headline is not None:
        print(f"headline {HEADLINE}: {headline['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
