"""Overlay dissemination benchmark: per-node wire cost vs swarm size.

The tentpole claim of the relay overlay is a *scaling* one: in mesh
mode the broadcasting node pays N−1 unicast datagrams per message, so
its per-message wire cost grows linearly with the swarm; in overlay
mode every node — origin and relayers alike — pays at most ``fanout``
relay datagrams per message (plus anti-entropy digests to a bounded
view), so the worst per-node cost stays flat as N doubles.

This script measures exactly that, on a process-local swarm over the
in-process bus (no UDP sockets — 128 nodes in one event loop):

* a **single-source workload** — one node broadcasts M messages, the
  other N−1 deliver.  The single source is deliberate: total
  datagrams/(N·M) is ~flat in *both* modes (the mesh's linear cost
  concentrates at the origin), so the honest metric is the **max
  per-node** datagrams and bytes per message, which the single source
  pins to the origin in mesh mode and to the busiest relayer in
  overlay mode;
* N ∈ {32, 64, 128} at fixed ``fanout=3, view_size=12``, both modes;
* overlay nodes bootstrap from a 4-peer ring — the piggybacked view
  gossip spreads the rest, as in production;
* an uncounted **warm-up phase** precedes the measurement and the
  per-node counters are snapshot-subtracted around the measured
  window, so view bootstrap and first-contact full-timestamp traffic
  do not pollute the steady-state numbers;
* the bus injects no loss, so the mesh runs retransmission-only
  (``anti_entropy_interval=0`` — its O(N) digest rounds would only
  blur the linear dissemination story) while the overlay keeps its
  1 s anti-entropy backstop, which relay dissemination *needs* for
  the probabilistic tail — that overhead is charged to the overlay.

Headline metrics are **growth ratios across N within one run** (max
per-node datagrams/msg at the largest N over the smallest), so machine
speed cancels: mesh must grow ~linearly (≥2x per quadrupling), overlay
must stay flat (≤1.5x).  Results land in ``BENCH_overlay.json`` at the
repo root; the committed copy is the baseline gated by
``check_regression.py --overlay-fresh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlay.py            # full
    PYTHONPATH=src python benchmarks/bench_overlay.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time

from repro.api import NodeConfig, create_node
from repro.net import LocalAsyncBus
from repro.sim.network import GaussianDelayModel
from repro.util.rng import RandomSource

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_overlay.json"

FANOUT = 3
VIEW_SIZE = 12
SEED_PEERS = 4

# (sizes, messages per measured run)
FULL = ((32, 64, 128), 40)
QUICK = ((32, 64), 12)
WARMUP_MESSAGES = 8


async def _wait_for(predicate, timeout=120.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


async def _run_case(mode: str, n_nodes: int, messages: int) -> dict:
    """One single-source run; returns per-node wire-cost metrics."""
    names = [f"n{i:03d}" for i in range(n_nodes)]
    bus = LocalAsyncBus(
        delay_model=GaussianDelayModel(5.0, 1.0, 0.0),
        rng=RandomSource(seed=29).spawn(f"bench-{mode}-{n_nodes}"),
        time_scale=0.001,
    )
    config = NodeConfig(
        r=64,
        k=3,
        # The bus injects no loss; a short timeout would read event-loop
        # lag at N=128 as loss and spiral into retransmission storms.
        ack_timeout=0.5,
        # The overlay's coverage backstop.  The mesh runs without it:
        # its reliable unicasts need no healing here, and charging it
        # O(N) digests per round would overstate the linear growth.
        anti_entropy_interval=(1.0 if mode == "overlay" else 0.0),
        dissemination=("overlay" if mode == "overlay" else "mesh"),
        fanout=FANOUT,
        view_size=VIEW_SIZE,
    )
    delivered = {name: 0 for name in names}

    def on_delivery(name):
        def callback(record):
            if not record.local:
                delivered[name] += 1

        return callback

    nodes = {}
    for name in names:
        nodes[name] = await create_node(
            name, config, transport=bus.attach(name),
            on_delivery=on_delivery(name),
        )
    if mode == "overlay":
        # Sparse bootstrap; view gossip does the rest.
        for i, name in enumerate(names):
            for step in range(1, SEED_PEERS + 1):
                nodes[name].add_peer(names[(i + step) % n_nodes])
    else:
        for name in names:
            for other in names:
                if other != name:
                    nodes[name].add_peer(other)

    source = names[0]
    receivers = [name for name in names if name != source]
    try:
        # Warm-up (uncounted): spreads the gossip views past the seed
        # ring and gets every link past its first-contact full
        # encodings, so the measured window is steady state.
        for i in range(WARMUP_MESSAGES):
            await nodes[source].broadcast(("warmup", i))
            await asyncio.sleep(0.02)
        warmed = await _wait_for(
            lambda: all(
                delivered[name] >= WARMUP_MESSAGES for name in receivers
            )
        )
        if not warmed:
            raise RuntimeError(f"{mode} n={n_nodes}: warm-up never converged")
        before = {name: nodes[name].transport_stats() for name in names}
        baseline = {name: delivered[name] for name in names}

        start = time.perf_counter()
        for i in range(messages):
            await nodes[source].broadcast(("msg", i))
            await asyncio.sleep(0.02)
        converged = await _wait_for(
            lambda: all(
                delivered[name] - baseline[name] == messages
                for name in receivers
            )
        )
        elapsed = time.perf_counter() - start
        if not converged:
            missing = sum(
                messages - (delivered[name] - baseline[name])
                for name in receivers
            )
            raise RuntimeError(
                f"{mode} n={n_nodes}: no convergence, "
                f"{missing} deliveries outstanding"
            )
        datagrams = [
            (nodes[name].transport_stats().datagrams_sent
             - before[name].datagrams_sent) / messages
            for name in names
        ]
        wire_bytes = [
            (nodes[name].transport_stats().bytes_sent
             - before[name].bytes_sent) / messages
            for name in names
        ]
        return {
            "nodes": n_nodes,
            "messages": messages,
            "seconds": round(elapsed, 4),
            "datagrams_per_msg_max": round(max(datagrams), 3),
            "datagrams_per_msg_mean": round(sum(datagrams) / n_nodes, 3),
            "bytes_per_msg_max": round(max(wire_bytes), 1),
            "bytes_per_msg_mean": round(sum(wire_bytes) / n_nodes, 1),
            "bus_datagrams_total": bus.sent,
        }
    finally:
        await asyncio.gather(*(node.close() for node in nodes.values()))


def run_scenarios(sizes, messages) -> list:
    scenarios = []
    for mode in ("mesh", "overlay"):
        for n_nodes in sizes:
            result = _result_with_name(mode, n_nodes, messages)
            scenarios.append(result)
            print(
                f"{result['name']:16s} datagrams/msg "
                f"max={result['datagrams_per_msg_max']:8.2f} "
                f"mean={result['datagrams_per_msg_mean']:6.2f}  "
                f"bytes/msg max={result['bytes_per_msg_max']:9.0f}  "
                f"({result['seconds']:.2f}s)"
            )
    return scenarios


def _result_with_name(mode: str, n_nodes: int, messages: int) -> dict:
    result = asyncio.run(_run_case(mode, n_nodes, messages))
    result["name"] = f"{mode}_n{n_nodes}"
    result["mode"] = mode
    return result


def growth(scenarios, mode: str) -> dict:
    """Max-per-node datagrams/msg at the largest N over the smallest."""
    runs = sorted(
        (s for s in scenarios if s["mode"] == mode), key=lambda s: s["nodes"]
    )
    low, high = runs[0], runs[-1]
    return {
        "mode": mode,
        "n_low": low["nodes"],
        "n_high": high["nodes"],
        "datagrams_growth": round(
            high["datagrams_per_msg_max"] / low["datagrams_per_msg_max"], 2
        ),
        "bytes_growth": round(
            high["bytes_per_msg_max"] / low["bytes_per_msg_max"], 2
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller swarms, fewer messages",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
        help=f"result JSON path (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    sizes, messages = QUICK if args.quick else FULL
    scenarios = run_scenarios(sizes, messages)
    mesh_growth = growth(scenarios, "mesh")
    overlay_growth = growth(scenarios, "overlay")
    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "fanout": FANOUT,
            "view_size": VIEW_SIZE,
        },
        "headline": {
            "mesh_growth": mesh_growth,
            "overlay_growth": overlay_growth,
        },
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")
    print(
        f"headline: {mesh_growth['n_low']}->{mesh_growth['n_high']} nodes, "
        f"max per-node datagrams/msg grew "
        f"{mesh_growth['datagrams_growth']:.2f}x (mesh) vs "
        f"{overlay_growth['datagrams_growth']:.2f}x (overlay, fanout {FANOUT})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
