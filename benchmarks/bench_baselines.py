"""The (n, r, k) family head-to-head — Sections 2 and 5.3.

The paper situates its mechanism between the known extremes:

* vector clock (n, n, 1): exact causal order, O(N) timestamps;
* plausible clock (n, r, 1): fixed small timestamps, entry sharing
  causes errors;
* Lamport clock (n, 1, 1): one shared counter — every message "covers"
  every other (P_err = 1), so nearly every network reordering of
  causally related messages becomes a violation;
* this paper (n, r, k): fixed small timestamps, interior K minimising
  the error;
* Bloom clock (m, h per event): the same covering analysis with keys
  drawn fresh per event instead of statically per process.

This benchmark runs identical traffic under all five and reports error
bounds, delivery latency, and wire overhead per message.  Shape
assertions: the vector clock never errs but pays O(N) overhead; the
(R, K) clock beats the plausible clock on errors at equal overhead; the
Lamport clock's delivery latency dwarfs everyone's; the Bloom clock's
measured error tracks its ``p_fp`` curve within the same order-of-
magnitude tolerance ``check_alert_sanity.py`` uses for ``P_err``.  A
sixth run repeats the probabilistic row on the hybrid per-sender
delivery engine and must be counter-identical (the engines are pure
performance reworks of Algorithm 2).
"""

import dataclasses

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.core.theory import p_fp, timestamp_overhead_bits
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 150
R = 100
K = 4
TARGET_X = 25.0
TARGET_DELIVERIES = 60_000.0
CLOCKS = ["vector", "probabilistic", "plausible", "lamport", "bloom"]
FP_TOLERANCE = 10.0  # same order-of-magnitude gate as check_alert_sanity


def run_baselines():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    results = {}
    for clock in CLOCKS:
        config = SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            clock=clock,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector="none",
            duration_ms=duration,
            track_reception_order=True,
        )
        (results[clock],) = run_repeated(config, repeats=1, seed_base=1000)
        if clock == "probabilistic":
            # The engine-identity pair: the reference drain and the
            # hybrid per-sender drain on the very same traffic.
            for engine in ("naive", "hybrid"):
                engine_config = dataclasses.replace(config, engine=engine)
                (results[f"probabilistic/{engine}"],) = run_repeated(
                    engine_config, repeats=1, seed_base=1000
                )
    return results


def overhead_bits_for(clock: str) -> int:
    if clock == "vector":
        return timestamp_overhead_bits(N_NODES, 1)
    if clock.startswith("probabilistic") or clock == "bloom":
        return timestamp_overhead_bits(R, K)
    if clock == "plausible":
        return timestamp_overhead_bits(R, 1)
    return timestamp_overhead_bits(1, 1)  # lamport


def test_baselines(benchmark):
    results = benchmark.pedantic(run_baselines, rounds=1, iterations=1)

    rows = []
    for clock, result in results.items():
        rows.append(
            [
                clock,
                result.counters.eps_min,
                result.counters.eps_max,
                result.latency["mean"],
                result.latency["p99"],
                overhead_bits_for(clock) // 8,
                result.counters.deliveries,
                result.stuck_pending,
            ]
        )
    table = render_table(
        [
            "clock",
            "eps_min",
            "eps_max",
            "latency mean (ms)",
            "latency p99 (ms)",
            "timestamp bytes",
            "deliveries",
            "stuck",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X} — identical traffic",
    )
    report("baselines_clock_family", table)

    vector = results["vector"]
    probabilistic = results["probabilistic"]
    plausible = results["plausible"]
    lamport = results["lamport"]
    bloom = results["bloom"]
    naive_ref = results["probabilistic/naive"]
    hybrid = results["probabilistic/hybrid"]

    # Exactness of the vector-clock baseline.
    assert vector.counters.violations == 0
    assert vector.counters.ambiguous == 0
    # The paper's mechanism strictly improves on plausible clocks at the
    # same R (and the same wire size up to the K key indices).
    assert probabilistic.counters.eps_max < plausible.counters.eps_max
    # The Lamport extreme: one shared entry means every concurrent
    # message "covers" every other (P_err = 1), so essentially every
    # network reordering becomes a causal violation — by far the highest
    # error rate in the family.
    assert lamport.counters.eps_max > 3 * probabilistic.counters.eps_max
    assert lamport.counters.eps_max > plausible.counters.eps_max
    # Wire overhead ordering: lamport < probabilistic ~ plausible < vector
    # at these sizes (vector grows with N, the others are fixed).
    assert overhead_bits_for("lamport") < overhead_bits_for("plausible")
    assert overhead_bits_for("plausible") <= overhead_bits_for("probabilistic")
    assert overhead_bits_for("probabilistic") < overhead_bits_for("vector")
    # The Bloom clock's measured error must track its false-positive
    # curve p_fp(m, h, X) — the paper's P_err with per-event keys —
    # scaled by the measured network reordering probability P_nc, to the
    # same order-of-magnitude tolerance check_alert_sanity.py applies.
    predicted = bloom.measured_p_nc * p_fp(R, K, bloom.measured_concurrency)
    assert predicted / FP_TOLERANCE <= bloom.counters.eps_max, (
        f"bloom eps_max {bloom.counters.eps_max:.3e} implausibly below "
        f"theory {predicted:.3e} (dead oracle?)"
    )
    assert bloom.counters.eps_max <= predicted * FP_TOLERANCE, (
        f"bloom eps_max {bloom.counters.eps_max:.3e} more than "
        f"{FP_TOLERANCE}x theory {predicted:.3e}"
    )
    # The hybrid engine is a drain-strategy rework, not a protocol
    # change: same seed, same traffic, bit-identical outcome against
    # the reference (naive) drain.
    assert hybrid.counters == naive_ref.counters
    assert hybrid.latency == naive_ref.latency
    assert hybrid.sent == naive_ref.sent
    assert hybrid.delivered_remote == naive_ref.delivered_remote
    # The default-engine row delivers the same message set either way.
    assert hybrid.counters.deliveries == probabilistic.counters.deliveries
    assert hybrid.sent == probabilistic.sent
    # Everyone stays live.
    for clock, result in results.items():
        assert result.stuck_pending == 0, clock
        assert result.undelivered_messages == 0, clock
