"""The (n, r, k) family head-to-head — Sections 2 and 5.3.

The paper situates its mechanism between the known extremes:

* vector clock (n, n, 1): exact causal order, O(N) timestamps;
* plausible clock (n, r, 1): fixed small timestamps, entry sharing
  causes errors;
* Lamport clock (n, 1, 1): one shared counter — every message "covers"
  every other (P_err = 1), so nearly every network reordering of
  causally related messages becomes a violation;
* this paper (n, r, k): fixed small timestamps, interior K minimising
  the error.

This benchmark runs identical traffic under all four and reports error
bounds, delivery latency, and wire overhead per message.  Shape
assertions: the vector clock never errs but pays O(N) overhead; the
(R, K) clock beats the plausible clock on errors at equal overhead; the
Lamport clock's delivery latency dwarfs everyone's.
"""

import dataclasses

from repro.analysis.sweep import run_repeated
from repro.analysis.tables import render_table
from repro.core.theory import timestamp_overhead_bits
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 150
R = 100
K = 4
TARGET_X = 25.0
TARGET_DELIVERIES = 60_000.0
CLOCKS = ["vector", "probabilistic", "plausible", "lamport"]


def run_baselines():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
    results = {}
    for clock in CLOCKS:
        config = SimulationConfig(
            n_nodes=N_NODES,
            r=R,
            k=K,
            clock=clock,
            key_assigner="random-colliding",
            workload=PoissonWorkload(lam),
            delay_model=GaussianDelayModel(MEAN_DELAY_MS),
            detector="none",
            duration_ms=duration,
        )
        (results[clock],) = run_repeated(config, repeats=1, seed_base=1000)
    return results


def overhead_bits_for(clock: str) -> int:
    if clock == "vector":
        return timestamp_overhead_bits(N_NODES, 1)
    if clock == "probabilistic":
        return timestamp_overhead_bits(R, K)
    if clock == "plausible":
        return timestamp_overhead_bits(R, 1)
    return timestamp_overhead_bits(1, 1)  # lamport


def test_baselines(benchmark):
    results = benchmark.pedantic(run_baselines, rounds=1, iterations=1)

    rows = []
    for clock, result in results.items():
        rows.append(
            [
                clock,
                result.counters.eps_min,
                result.counters.eps_max,
                result.latency["mean"],
                result.latency["p99"],
                overhead_bits_for(clock) // 8,
                result.counters.deliveries,
                result.stuck_pending,
            ]
        )
    table = render_table(
        [
            "clock",
            "eps_min",
            "eps_max",
            "latency mean (ms)",
            "latency p99 (ms)",
            "timestamp bytes",
            "deliveries",
            "stuck",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, X={TARGET_X} — identical traffic",
    )
    report("baselines_clock_family", table)

    vector = results["vector"]
    probabilistic = results["probabilistic"]
    plausible = results["plausible"]
    lamport = results["lamport"]

    # Exactness of the vector-clock baseline.
    assert vector.counters.violations == 0
    assert vector.counters.ambiguous == 0
    # The paper's mechanism strictly improves on plausible clocks at the
    # same R (and the same wire size up to the K key indices).
    assert probabilistic.counters.eps_max < plausible.counters.eps_max
    # The Lamport extreme: one shared entry means every concurrent
    # message "covers" every other (P_err = 1), so essentially every
    # network reordering becomes a causal violation — by far the highest
    # error rate in the family.
    assert lamport.counters.eps_max > 3 * probabilistic.counters.eps_max
    assert lamport.counters.eps_max > plausible.counters.eps_max
    # Wire overhead ordering: lamport < probabilistic ~ plausible < vector
    # at these sizes (vector grows with N, the others are fixed).
    assert overhead_bits_for("lamport") < overhead_bits_for("plausible")
    assert overhead_bits_for("plausible") <= overhead_bits_for("probabilistic")
    assert overhead_bits_for("probabilistic") < overhead_bits_for("vector")
    # Everyone stays live.
    for clock, result in results.items():
        assert result.stuck_pending == 0, clock
        assert result.undelivered_messages == 0, clock
