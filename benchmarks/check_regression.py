"""Perf regression gate for the delivery engine and the wire path.

Compares a fresh ``bench_hotpath.py`` run against the committed
``BENCH_hotpath.json`` baseline and fails (exit 1) when the indexed
engine regressed by more than ``--max-drop`` (default 30 %).

The gated metric is the *speedup* — the indexed engine's deliveries/sec
relative to the reference (naive) engine measured back-to-back in the
same run.  Raw deliveries/sec depends on the machine (a CI runner is not
the laptop that produced the baseline), while the within-run ratio
cancels machine speed and load; a genuine engine regression (extra
allocation, a lost fast path, index bookkeeping creep) lowers the ratio
wherever it runs.  ``--absolute`` additionally gates raw deliveries/sec
for same-machine comparisons.

The small-N crossover gets its own assertion: on the n8 retransmission
scenario neither pure engine clearly wins, so ``engine="auto"`` (the
default) must track the *better* of the two — a fresh run where auto
falls more than ``--max-drop`` below the best single engine means the
promotion threshold has drifted off the crossover.

``--wire-fresh`` additionally gates a fresh ``bench_wire.py`` run
against the committed ``BENCH_wire.json``: the batched wire path's
datagrams-per-message and bytes-per-message *ratios* over the legacy
path (within-run again, so machine-independent — both are counters, not
timings) must not fall more than ``--max-drop`` below the baseline, and
the 0 %-loss headline must hold the acceptance floors (>= 3x fewer
datagrams/msg, >= 2.5x fewer bytes/msg).

``--ioloop-fresh`` gates a fresh ``bench_ioloop.py`` run against the
committed ``BENCH_ioloop.json``: the batched transport's
datagrams-per-wakeup (a within-run counter ratio — the legacy endpoint
is definitionally 1.0/wakeup) must not fall more than ``--max-drop``
below the baseline, and the flood headline must hold the ISSUE floor
(>= 2x datagrams/wakeup, or >= 1.3x end-to-end throughput).

``--overlay-fresh`` gates a fresh ``bench_overlay.py`` run against the
committed ``BENCH_overlay.json``: the overlay's max per-node
datagrams/msg must stay flat (within 1.5x per doubling of N) while the
mesh's grows near-linearly (>= 1.6x per doubling) — both within-run
counter ratios, machine-independent — and per-scenario overlay costs
must not exceed the baseline by more than ``--max-drop``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick --output /tmp/fresh.json
    PYTHONPATH=src python benchmarks/bench_wire.py --quick --output /tmp/wire.json
    PYTHONPATH=src python benchmarks/bench_ioloop.py --quick --output /tmp/ioloop.json
    python benchmarks/check_regression.py --fresh /tmp/fresh.json \
        --wire-fresh /tmp/wire.json --ioloop-fresh /tmp/ioloop.json
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_hotpath.json"
DEFAULT_WIRE_BASELINE = REPO_ROOT / "BENCH_wire.json"
DEFAULT_IOLOOP_BASELINE = REPO_ROOT / "BENCH_ioloop.json"
DEFAULT_OVERLAY_BASELINE = REPO_ROOT / "BENCH_overlay.json"

# Scenarios whose baseline speedup is below this are dominated by
# fixed overheads, not the indexed drain; their ratio is noise-bound
# and only sanity-checked loosely (2x the tolerance).
GATE_SPEEDUP_FLOOR = 1.5

# The ISSUE acceptance floors for the batched wire path at 0% loss:
# hard minimums regardless of what the committed baseline says.
WIRE_HEADLINE = "steady_r100_k2_loss0"
WIRE_DATAGRAMS_FLOOR = 3.0
WIRE_BYTES_FLOOR = 2.5

# The small-N crossover scenario: auto (the default engine) must track
# the better single engine here, or the promotion threshold drifted.
AUTO_CROSSOVER = "drain_n8_r100_loss25"

# The ISSUE acceptance floor for the batched I/O loop on the flood
# headline: >= 2x datagrams per wakeup, or failing that >= 1.3x
# end-to-end throughput over the per-datagram endpoint.
IOLOOP_HEADLINE = "flood_r100_k2"
IOLOOP_WAKEUP_FLOOR = 2.0
IOLOOP_THROUGHPUT_FLOOR = 1.3

# The overlay ISSUE acceptance: as N doubles at fixed fanout, the
# overlay's max per-node datagrams/msg stays within this factor per
# doubling, while the mesh's (definitionally N-1 at the origin) grows
# by at least the linear floor per doubling.
OVERLAY_FLAT_CEILING = 1.5
MESH_LINEAR_FLOOR = 1.6


def load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--fresh", type=pathlib.Path, required=True,
        help="freshly produced bench_hotpath.py output",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30,
        help="maximum tolerated fractional drop (default 0.30)",
    )
    parser.add_argument(
        "--absolute", action="store_true",
        help="also gate raw deliveries/sec (same-machine runs only)",
    )
    parser.add_argument(
        "--wire-baseline", type=pathlib.Path, default=DEFAULT_WIRE_BASELINE,
        help=f"committed wire baseline JSON (default {DEFAULT_WIRE_BASELINE})",
    )
    parser.add_argument(
        "--wire-fresh", type=pathlib.Path, default=None,
        help="freshly produced bench_wire.py output (enables the wire gate)",
    )
    parser.add_argument(
        "--ioloop-baseline", type=pathlib.Path, default=DEFAULT_IOLOOP_BASELINE,
        help=f"committed ioloop baseline JSON (default {DEFAULT_IOLOOP_BASELINE})",
    )
    parser.add_argument(
        "--ioloop-fresh", type=pathlib.Path, default=None,
        help="freshly produced bench_ioloop.py output (enables the ioloop gate)",
    )
    parser.add_argument(
        "--overlay-baseline", type=pathlib.Path, default=DEFAULT_OVERLAY_BASELINE,
        help=f"committed overlay baseline JSON (default {DEFAULT_OVERLAY_BASELINE})",
    )
    parser.add_argument(
        "--overlay-fresh", type=pathlib.Path, default=None,
        help="freshly produced bench_overlay.py output (enables the overlay gate)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.max_drop < 1:
        sys.exit(f"error: --max-drop must be in (0, 1), got {args.max_drop}")

    baseline = {s["name"]: s for s in load(args.baseline)["scenarios"]}
    fresh = {s["name"]: s for s in load(args.fresh)["scenarios"]}
    shared = [name for name in fresh if name in baseline]
    if not shared:
        sys.exit("error: no scenarios in common between baseline and fresh run")

    failures = []
    for name in shared:
        base_speedup = baseline[name]["speedup"]
        fresh_speedup = fresh[name]["speedup"]
        tolerance = args.max_drop
        if base_speedup < GATE_SPEEDUP_FLOOR:
            tolerance = min(0.95, 2 * args.max_drop)
        floor = base_speedup * (1 - tolerance)
        verdict = "ok" if fresh_speedup >= floor else "REGRESSED"
        print(
            f"{name:28s} speedup {base_speedup:6.2f}x -> {fresh_speedup:6.2f}x "
            f"(floor {floor:.2f}x)  {verdict}"
        )
        if fresh_speedup < floor:
            failures.append(
                f"{name}: speedup {fresh_speedup:.2f}x fell below "
                f"{floor:.2f}x ({base_speedup:.2f}x baseline, "
                f"-{tolerance:.0%} tolerance)"
            )
        if args.absolute:
            base_dps = baseline[name]["indexed"]["deliveries_per_sec"]
            fresh_dps = fresh[name]["indexed"]["deliveries_per_sec"]
            dps_floor = base_dps * (1 - args.max_drop)
            print(
                f"{'':28s} indexed {base_dps:10.1f}/s -> {fresh_dps:10.1f}/s "
                f"(floor {dps_floor:.1f}/s)"
            )
            if fresh_dps < dps_floor:
                failures.append(
                    f"{name}: deliveries/sec {fresh_dps:.1f} fell below "
                    f"{dps_floor:.1f} ({base_dps:.1f} baseline)"
                )

    if AUTO_CROSSOVER in fresh:
        # Auto vs best single engine at the small-N crossover.  Both
        # speedups are vs naive within the same run, so their ratio is
        # auto-time over best-single-engine-time, machine-independent.
        crossover = fresh[AUTO_CROSSOVER]
        auto = crossover["auto_speedup"]
        best = max(1.0, crossover["speedup"])
        floor = best * (1 - args.max_drop)
        verdict = "ok" if auto >= floor else "REGRESSED"
        print(
            f"{AUTO_CROSSOVER:28s} auto {auto:6.2f}x vs best engine "
            f"{best:6.2f}x (floor {floor:.2f}x)  {verdict}"
        )
        if auto < floor:
            failures.append(
                f"{AUTO_CROSSOVER}: auto engine {auto:.2f}x fell below "
                f"{floor:.2f}x — promotion threshold off the crossover "
                f"(best single engine {best:.2f}x)"
            )

    checked = len(shared)
    if args.wire_fresh is not None:
        wire_baseline = {
            s["name"]: s for s in load(args.wire_baseline)["scenarios"]
        }
        wire_fresh = {s["name"]: s for s in load(args.wire_fresh)["scenarios"]}
        wire_shared = [name for name in wire_fresh if name in wire_baseline]
        if not wire_shared:
            sys.exit("error: no wire scenarios in common between baseline and fresh run")
        for name in wire_shared:
            # Lossy scenarios are noise-bound in --quick runs: far fewer
            # messages amortize the delta reference warm-up, and the
            # realized drop pattern shifts the full/delta mix run to
            # run.  Only the 0%-loss headline is stable enough for the
            # tight tolerance; the rest get the loose one.
            tolerance = args.max_drop
            if name != WIRE_HEADLINE:
                tolerance = min(0.95, 2 * args.max_drop)
            for metric in ("datagrams_ratio", "bytes_ratio"):
                base = wire_baseline[name][metric]
                got = wire_fresh[name][metric]
                floor = base * (1 - tolerance)
                if name == WIRE_HEADLINE:
                    hard = (
                        WIRE_DATAGRAMS_FLOOR if metric == "datagrams_ratio"
                        else WIRE_BYTES_FLOOR
                    )
                    floor = max(floor, hard)
                verdict = "ok" if got >= floor else "REGRESSED"
                print(
                    f"{name:28s} {metric:15s} {base:6.2f}x -> {got:6.2f}x "
                    f"(floor {floor:.2f}x)  {verdict}"
                )
                if got < floor:
                    failures.append(
                        f"{name}: {metric} {got:.2f}x fell below {floor:.2f}x "
                        f"({base:.2f}x baseline)"
                    )
        checked += len(wire_shared)

    if args.ioloop_fresh is not None:
        ioloop_baseline = {
            s["name"]: s for s in load(args.ioloop_baseline)["scenarios"]
        }
        ioloop_fresh = {s["name"]: s for s in load(args.ioloop_fresh)["scenarios"]}
        ioloop_shared = [n for n in ioloop_fresh if n in ioloop_baseline]
        if not ioloop_shared:
            sys.exit(
                "error: no ioloop scenarios in common between baseline and fresh run"
            )
        for name in ioloop_shared:
            # The coalesced scenario barely floods (BATCH frames soak
            # up the datagram count), so its per-wakeup ratio hovers
            # near 1 and is noise-bound; only the flood headline gets
            # the tight tolerance.
            tolerance = args.max_drop
            if name != IOLOOP_HEADLINE:
                tolerance = min(0.95, 2 * args.max_drop)
            base = ioloop_baseline[name]["datagrams_per_wakeup"]
            got = ioloop_fresh[name]["datagrams_per_wakeup"]
            floor = base * (1 - tolerance)
            if name == IOLOOP_HEADLINE:
                floor = max(floor, IOLOOP_WAKEUP_FLOOR)
            ok = got >= floor
            if name == IOLOOP_HEADLINE and not ok:
                # The ISSUE floor is an either/or: a flood where the
                # receiver keeps pace datagram-for-datagram can still
                # pass on raw end-to-end throughput.
                throughput = ioloop_fresh[name]["throughput_ratio"]
                ok = throughput >= IOLOOP_THROUGHPUT_FLOOR
                if ok:
                    print(
                        f"{name:28s} datagrams/wakeup {got:.2f} below "
                        f"{floor:.2f}, rescued by throughput "
                        f"{throughput:.2f}x >= {IOLOOP_THROUGHPUT_FLOOR}x"
                    )
            verdict = "ok" if ok else "REGRESSED"
            print(
                f"{name:28s} datagrams/wakeup {base:6.2f} -> {got:6.2f} "
                f"(floor {floor:.2f})  {verdict}"
            )
            if not ok:
                failures.append(
                    f"{name}: datagrams/wakeup {got:.2f} fell below "
                    f"{floor:.2f} ({base:.2f} baseline)"
                )
        checked += len(ioloop_shared)

    if args.overlay_fresh is not None:
        overlay_fresh = load(args.overlay_fresh)
        overlay_baseline = {
            s["name"]: s for s in load(args.overlay_baseline)["scenarios"]
        }

        def per_doubling(growth_entry):
            """Growth per doubling of N (the run may span 1+ doublings)."""
            doublings = math.log2(
                growth_entry["n_high"] / growth_entry["n_low"]
            )
            if doublings <= 0:
                return None
            return growth_entry["datagrams_growth"] ** (1 / doublings)

        for mode, check in (
            ("overlay", lambda g: g <= OVERLAY_FLAT_CEILING),
            ("mesh", lambda g: g >= MESH_LINEAR_FLOOR),
        ):
            entry = overlay_fresh["headline"][f"{mode}_growth"]
            rate = per_doubling(entry)
            if rate is None:
                failures.append(
                    f"overlay bench: {mode} run spans a single swarm size "
                    f"(n={entry['n_low']}); cannot gate scaling"
                )
                continue
            bound = (
                f"<= {OVERLAY_FLAT_CEILING}x" if mode == "overlay"
                else f">= {MESH_LINEAR_FLOOR}x"
            )
            verdict = "ok" if check(rate) else "REGRESSED"
            print(
                f"{mode + '_scaling':28s} datagrams/msg x{rate:.2f} per "
                f"doubling over n={entry['n_low']}..{entry['n_high']} "
                f"({bound})  {verdict}"
            )
            if not check(rate):
                failures.append(
                    f"overlay bench: {mode} max per-node datagrams/msg grew "
                    f"{rate:.2f}x per doubling of N "
                    f"(n={entry['n_low']}..{entry['n_high']}, bound {bound})"
                )
        # Baseline comparison: lower is better for a cost metric, so the
        # gate is an upper bound.  Only overlay scenarios are gated this
        # way — the mesh's cost is definitionally N-1 and already pinned
        # by the linear-floor check above.  A --quick fresh run against a
        # full baseline amortizes the per-run digest overhead over fewer
        # messages, so mismatched run lengths get the loose tolerance
        # (the wire gate's convention for noise-bound comparisons).
        overlay_tolerance = args.max_drop
        baseline_meta = load(args.overlay_baseline).get("meta", {})
        if overlay_fresh.get("meta", {}).get("quick") != baseline_meta.get("quick"):
            overlay_tolerance = min(0.95, 2 * args.max_drop)
        overlay_checked = 2
        for name, scenario in (
            (s["name"], s) for s in overlay_fresh["scenarios"]
        ):
            if scenario["mode"] != "overlay" or name not in overlay_baseline:
                continue
            base = overlay_baseline[name]["datagrams_per_msg_max"]
            got = scenario["datagrams_per_msg_max"]
            ceiling = base * (1 + overlay_tolerance)
            verdict = "ok" if got <= ceiling else "REGRESSED"
            print(
                f"{name:28s} datagrams/msg max {base:6.2f} -> {got:6.2f} "
                f"(ceiling {ceiling:.2f})  {verdict}"
            )
            if got > ceiling:
                failures.append(
                    f"{name}: max per-node datagrams/msg {got:.2f} exceeded "
                    f"{ceiling:.2f} ({base:.2f} baseline, "
                    f"+{args.max_drop:.0%} tolerance)"
                )
            overlay_checked += 1
        checked += overlay_checked

    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf regression gate passed ({checked} scenarios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
