"""Section 2's design-space table — the (a, b, c) triplet family.

The paper summarises the landscape with triplets (system size, vector
size, entries per process):

    Lamport clock    (n, 1, 1)
    vector clock     (n, n, 1)
    plausible clock  (n, r, 1)
    this paper       (n, r, k)
    Bloom clock      (n, m, h per event)

This benchmark regenerates that table augmented with the quantities the
triplet implies: timestamp wire size (the cost axis) and the theoretical
covering probability P_err at a reference concurrency (the quality axis),
for several system sizes.  It asserts the scaling facts the paper builds
its case on: only the vector clock's timestamp grows with n; only the
vector clock has zero error; among the fixed-size schemes, the (n, r, k)
point dominates the plausible clock at the optimum K.  The Bloom-clock
column uses the family's shared covering curve (``p_fp`` == ``P_err``
at equal parameters), making the "Bloom clock with static keys"
reading of the paper's mechanism a checkable table identity.
"""

from repro.analysis.tables import render_table
from repro.core.theory import optimal_k_int, p_error, p_fp, timestamp_overhead_bits

from _common import report

REFERENCE_X = 20.0
R = 100
SYSTEM_SIZES = [100, 1_000, 10_000, 100_000]


def build_table():
    rows = []
    for n in SYSTEM_SIZES:
        k_opt = optimal_k_int(R, REFERENCE_X)
        rows.append(
            [
                n,
                # Lamport (n, 1, 1)
                timestamp_overhead_bits(1, 1) // 8,
                1.0,  # P_err: the single entry is always covered
                # vector (n, n, 1)
                timestamp_overhead_bits(n, 1) // 8,
                0.0,
                # plausible (n, r, 1)
                timestamp_overhead_bits(R, 1) // 8,
                p_error(R, 1, REFERENCE_X),
                # this paper (n, r, k)
                timestamp_overhead_bits(R, k_opt) // 8,
                p_error(R, k_opt, REFERENCE_X),
                # Bloom clock (n, m, h per event), at m = R, h = k_opt:
                # same wire size (m counters + h cell indices), same
                # covering curve — only the key-draw schedule differs.
                timestamp_overhead_bits(R, k_opt) // 8,
                p_fp(R, k_opt, REFERENCE_X),
            ]
        )
    return rows


def test_table_clock_family(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    k_opt = optimal_k_int(R, REFERENCE_X)
    table = render_table(
        [
            "n",
            "lamport B",
            "lamport P_err",
            "vector B",
            "vector P_err",
            f"plausible(r={R}) B",
            "plausible P_err",
            f"(r={R},k={k_opt}) B",
            "(r,k) P_err",
            f"bloom(m={R},h={k_opt}) B",
            "bloom p_fp",
        ],
        rows,
        title=f"clock family at X={REFERENCE_X} (B = timestamp bytes)",
    )
    report("table_clock_family", table)

    by_n = {row[0]: row for row in rows}
    # Vector clock timestamps grow linearly with n; the others are flat.
    # (Up to the sender-key index, which grows only logarithmically.)
    assert 990 <= by_n[100_000][3] / by_n[100][3] <= 1010
    assert by_n[100_000][1] == by_n[100][1]
    assert by_n[100_000][5] == by_n[100][5]
    assert by_n[100_000][7] == by_n[100][7]
    # Quality ordering at fixed wire size: (r, k) beats plausible beats
    # Lamport; the vector clock is exact.
    row = by_n[1_000]
    assert row[4] == 0.0
    assert row[8] < row[6] < row[2]
    # The paper's headline: at n = 100k the (r, k) timestamp is ~1000x
    # smaller than the vector clock's while keeping P_err ~ 9%.
    assert by_n[100_000][3] / by_n[100_000][7] > 900
    assert by_n[100_000][8] < 0.1
    # The Bloom clock at (m, h) = (R, k_opt) sits at the identical point
    # of the cost/quality plane: one covering formula predicts both
    # families, the key-draw schedule being the only difference.
    for row in rows:
        assert row[9] == row[7]
        assert row[10] == row[8]
