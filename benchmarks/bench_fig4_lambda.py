"""Figure 4 — error rate against λ (mean send interval per node).

Paper setup: N = 1000, R = 100, K = 4, network N(100, 20); the protocol
was *dimensioned* for λ = 5000 ms (⇒ X = 20).  The figure shows the error
rate stable for λ at or above the estimate and growing quickly once λ
drops below ~3000 ms (higher concurrency than planned for).

We run N = 150 and sweep λ over the same *ratios to the estimate* the
paper covers (λ/λ_est from 0.2 to 2.0), which preserves the swept X range
exactly (X = 20/ratio, i.e. 100 down to 10).  The table reports the
paper-equivalent λ at N = 1000 for each point.

Shape assertions: error explodes below the estimate (ratio 0.2 at least
5x the estimate point) and stays within a small factor above it.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.core.theory import p_error
from repro.sim import GaussianDelayModel, PoissonWorkload, SimulationConfig

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    run_duration,
    paper_equivalent_lambda,
    points_table,
    report,
    scaled_duration,
    series_chart,
)

N_NODES = 150
R = 100
K = 4
ESTIMATE_X = 20.0
RATIOS = [0.2, 0.4, 0.6, 1.0, 1.5, 2.0]
TARGET_DELIVERIES = 70_000.0


def run_figure4():
    lam_est = lambda_for_concurrency(N_NODES, ESTIMATE_X)

    def config_for(base, ratio):
        lam = lam_est * ratio
        duration = run_duration(TARGET_DELIVERIES, N_NODES, lam)
        return dataclasses.replace(
            base, workload=PoissonWorkload(lam), duration_ms=duration
        )

    base = SimulationConfig(
        n_nodes=N_NODES,
        r=R,
        k=K,
        key_assigner="random-colliding",
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        track_latency=False,
        duration_ms=1.0,  # replaced per point
    )
    return sweep_parameter(
        base,
        values=RATIOS,
        make_config=config_for,
        repeats=1,
        seed_base=400,
    )


def test_fig4_lambda(benchmark):
    points = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    rows = []
    for point in points:
        x_nominal = ESTIMATE_X / point.value
        rows.append(
            [
                point.value,
                paper_equivalent_lambda(x_nominal),
                point.eps_min.value,
                point.eps_max.value,
                point.concurrency.value,
                p_error(R, K, x_nominal),
                point.deliveries,
            ]
        )
    from repro.analysis.tables import render_table

    table = render_table(
        [
            "lambda/est",
            "paper-equiv lambda (ms)",
            "eps_min",
            "eps_max",
            "X measured",
            "P_err theory",
            "deliveries",
        ],
        rows,
        title=f"N={N_NODES}, R={R}, K={K}, estimate X={ESTIMATE_X}",
    )
    chart = series_chart(
        "error rate vs lambda ratio (eps_min)",
        {"measured": [(p.value, max(p.eps_min.value, 1e-7)) for p in points]},
        x_label="lambda/estimate",
    )
    report("fig4_lambda", table + "\n\n" + chart)

    by_ratio = {p.value: p for p in points}
    at_estimate = by_ratio[1.0].eps_min.value
    overloaded = by_ratio[0.2].eps_min.value
    relaxed = by_ratio[2.0].eps_min.value
    # Sharp growth below the estimate (paper: "increases quickly when
    # lambda is lower than 3000"):
    assert overloaded > 5 * max(at_estimate, 1e-6)
    # Stability at or above the estimate: the relaxed point does not
    # exceed the estimate point.
    assert relaxed <= at_estimate * 1.5 + 1e-4
