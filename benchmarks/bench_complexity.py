"""Section 5.2 — operation complexity of the three algorithms.

The paper's claims:

* Algorithm 1 (timestamp a send)      — O(R)
* Algorithm 2 (delivery condition)    — O(R)
* Algorithm 3 (set_id → key set)      — O(R·K)

These are genuine micro-benchmarks (pytest-benchmark timing loops), plus
cross-size scaling checks: growing R by 16x may not grow the measured
per-operation cost by more than ~64x (linear with generous slack for
allocator noise), and unranking stays polynomial, not combinatorial —
the set_id space grows by *orders of magnitude* while the unranking cost
stays within small factors.
"""

import time

import pytest

from repro.core.clocks import EntryVectorClock
from repro.core.combinatorics import num_key_sets, unrank_lex
from repro.util.rng import RandomSource

SIZES = [100, 400, 1600]


def make_pair(r, k=4, seed=1):
    rng = RandomSource(seed=seed)
    sender_keys = sorted(rng.sample(list(range(r)), k))
    receiver_keys = sorted(rng.sample(list(range(r)), k))
    return EntryVectorClock(r, sender_keys), EntryVectorClock(r, receiver_keys)


@pytest.mark.parametrize("r", SIZES)
def test_algorithm1_prepare_send(benchmark, r):
    sender, _ = make_pair(r)
    benchmark(sender.prepare_send)


@pytest.mark.parametrize("r", SIZES)
def test_algorithm2_delivery_condition(benchmark, r):
    sender, receiver = make_pair(r)
    timestamp = sender.prepare_send()
    result = benchmark(receiver.is_deliverable, timestamp)
    assert result is True


@pytest.mark.parametrize("r,k", [(100, 4), (400, 8), (1600, 16)])
def test_algorithm3_unrank(benchmark, r, k):
    rank = num_key_sets(r, k) // 2
    keys = benchmark(unrank_lex, rank, r, k)
    assert len(keys) == k


def _time_per_op(function, *args, repeat=2000):
    start = time.perf_counter()
    for _ in range(repeat):
        function(*args)
    return (time.perf_counter() - start) / repeat


def test_scaling_is_polynomial(benchmark):
    """Cross-size check: 16x R must not exceed ~64x cost (O(R) claim with
    constant-overhead slack), and unranking must not blow up with the
    combinatorial size of the set_id space."""

    def measure():
        send_costs = {}
        deliver_costs = {}
        for r in SIZES:
            sender, receiver = make_pair(r)
            timestamp = sender.prepare_send()
            send_costs[r] = _time_per_op(sender.prepare_send)
            deliver_costs[r] = _time_per_op(receiver.is_deliverable, timestamp)
        unrank_costs = {
            (r, k): _time_per_op(unrank_lex, num_key_sets(r, k) // 2, r, k, repeat=300)
            for r, k in [(100, 4), (400, 8), (1600, 16)]
        }
        return send_costs, deliver_costs, unrank_costs

    send_costs, deliver_costs, unrank_costs = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert send_costs[1600] < 64 * send_costs[100]
    assert deliver_costs[1600] < 64 * deliver_costs[100]
    # set_id space grows from C(100,4)≈3.9e6 to C(1600,16)≈1e38 — about
    # 31 orders of magnitude — while the unranking cost stays within a
    # few hundred x (the O(R·K) claim, with bigint arithmetic slack).
    assert unrank_costs[(1600, 16)] < 500 * unrank_costs[(100, 4)]
