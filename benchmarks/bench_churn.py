"""Churn experiment — the paper's motivating scenario.

The paper's case for small fixed-size timestamps is "very large systems
with changing membership": a joining process draws a fresh ``set_id``
locally and participates immediately, while a vector clock would need a
global re-dimensioning.  The measured sections of the paper use static
membership; this benchmark supplies the missing experiment:

* sweep the churn rate (Poisson joins + leaves) from none to aggressive;
* verify the ordering machinery stays live (nothing stuck, everything
  in-flight accounted);
* verify the error rate stays in the static ballpark — churn perturbs
  membership, not the concurrency that drives the error;
* contrast the wire cost: the (R, K) timestamp is unchanged by churn,
  while a vector clock sized for peak membership keeps growing.
"""

import dataclasses

from repro.analysis.sweep import sweep_parameter
from repro.analysis.tables import render_table
from repro.core.theory import timestamp_overhead_bits
from repro.sim import (
    GaussianDelayModel,
    PoissonChurn,
    PoissonWorkload,
    SimulationConfig,
)

from _common import (
    MEAN_DELAY_MS,
    lambda_for_concurrency,
    report,
    run_duration,
)

N_NODES = 60
R = 100
K = 4
TARGET_X = 20.0
TARGET_DELIVERIES = 50_000.0
MIN_HORIZON_MS = 8_000.0  # enough room for ~20 churn events at the aggressive end
# Mean ms between churn events (both joins and leaves); None = static.
CHURN_INTERVALS = [None, 4000.0, 1000.0, 400.0]


def run_churn_sweep():
    lam = lambda_for_concurrency(N_NODES, TARGET_X)
    duration = max(run_duration(TARGET_DELIVERIES, N_NODES, lam), MIN_HORIZON_MS)

    def config_for(base, interval):
        churn = (
            None
            if interval is None
            else PoissonChurn(
                join_interval_ms=interval,
                leave_interval_ms=interval,
                min_population=max(10, N_NODES // 2),
            )
        )
        return dataclasses.replace(base, churn=churn)

    base = SimulationConfig(
        n_nodes=N_NODES,
        r=R,
        k=K,
        key_assigner="random-colliding",
        workload=PoissonWorkload(lam),
        delay_model=GaussianDelayModel(MEAN_DELAY_MS),
        detector="none",
        duration_ms=duration,
        track_latency=False,
    )
    return sweep_parameter(
        base,
        values=CHURN_INTERVALS,
        make_config=config_for,
        repeats=2,
        seed_base=1100,
    )


def test_churn(benchmark):
    points = benchmark.pedantic(run_churn_sweep, rounds=1, iterations=1)

    rows = []
    for point in points:
        joins = sum(r.joins for r in point.results)
        leaves = sum(r.leaves for r in point.results)
        stuck = sum(r.stuck_pending for r in point.results)
        peak_members = max(
            r.config.n_nodes + r.joins for r in point.results
        )
        rows.append(
            [
                "static" if point.value is None else point.value,
                joins,
                leaves,
                point.eps_min.value,
                point.eps_max.value,
                stuck,
                timestamp_overhead_bits(R, K) // 8,
                timestamp_overhead_bits(max(peak_members, 2), 1) // 8,
                point.deliveries,
            ]
        )
    table = render_table(
        [
            "churn interval (ms)",
            "joins",
            "leaves",
            "eps_min",
            "eps_max",
            "stuck",
            "(R,K) ts bytes",
            "vector ts bytes @peak",
            "deliveries",
        ],
        rows,
        title=f"N0={N_NODES}, R={R}, K={K}, X={TARGET_X}",
    )
    report("churn", table)

    static = points[0]
    most_aggressive = points[-1]
    # Churn actually happened at the aggressive end.
    assert sum(r.joins for r in most_aggressive.results) > 10
    assert sum(r.leaves for r in most_aggressive.results) > 10
    # Liveness under churn: no endpoint left with undeliverable messages.
    for point in points:
        assert all(r.stuck_pending == 0 for r in point.results), point.value
    # The error rate stays within a small factor of the static baseline.
    baseline = max(static.eps_max.value, 1e-4)
    assert most_aggressive.eps_max.value <= 6 * baseline
    # The (R, K) timestamp is churn-invariant; the vector clock's grows
    # with every join (it can never shrink safely).
    assert rows[-1][6] == rows[0][6]
    assert rows[-1][7] > rows[0][7]
