"""Setup shim: enables `python setup.py develop` / legacy editable installs
in offline environments lacking the `wheel` package (PEP 660 backend needs
it).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
