"""Command-line interface: ``python -m repro <command>``.

Seven subcommands cover the common workflows without writing code:

* ``simulate``  — run one experiment and print the measurements;
* ``sweep``     — sweep K, λ, or N and print the resulting series;
* ``dimension`` — the §5.3 recipe: given your rates, delay, and a
  timestamp byte budget, pick R and K and predict the error;
* ``theory``    — print the closed-form P_err(K) curve for an (R, X);
* ``node``      — run a real networked node (reliable UDP runtime),
  assembled by the :mod:`repro.api` factory;
* ``stats``     — render metrics JSONL exports (from ``node
  --metrics-path``, the simulator, or the metered soak) as tables;
* ``engines``   — list the registered clock schemes, delivery engines,
  and detectors with their capability descriptors.

The ``--clock``/``--engine``/``--detector`` choices are read from
:mod:`repro.core.registry` at parser-build time, so schemes registered
by plugins (imported before :func:`build_parser` runs) are selectable
here without touching this module.

Every command prints plain text; ``simulate --json`` emits a
machine-readable result instead.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.persistence import result_to_dict
from repro.core.registry import (
    clock_schemes,
    detector_names,
    engine_names,
    get_clock_spec,
    get_detector_spec,
    get_engine_spec,
)
from repro.analysis.sweep import SweepPoint, sweep_parameter
from repro.analysis.tables import render_table
from repro.core.theory import (
    expected_concurrency,
    optimal_k,
    optimal_k_int,
    p_error,
    timestamp_overhead_bits,
)
from repro.sim import (
    GaussianDelayModel,
    PoissonChurn,
    PoissonWorkload,
    SimulationConfig,
    run_simulation,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic causal message ordering (PaCT 2017) toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="run one simulated experiment")
    _add_simulation_arguments(simulate)
    simulate.add_argument("--json", action="store_true", help="emit JSON")
    simulate.add_argument(
        "--metrics-path", default=None, metavar="FILE",
        help="append one end-of-run metrics snapshot (JSONL) to FILE",
    )

    sweep = commands.add_parser("sweep", help="sweep one parameter")
    _add_simulation_arguments(sweep)
    sweep.add_argument(
        "--parameter", choices=("k", "lambda", "nodes"), required=True,
        help="which knob to sweep",
    )
    sweep.add_argument(
        "--values", required=True,
        help="comma-separated values, e.g. 1,2,4,8",
    )
    sweep.add_argument("--repeats", type=int, default=2, help="seeds per point")

    dimension = commands.add_parser(
        "dimension", help="pick R and K for a deployment (Section 5.3)"
    )
    dimension.add_argument("--nodes", type=int, required=True)
    dimension.add_argument(
        "--send-rate", type=float, required=True,
        help="broadcasts per second per node",
    )
    dimension.add_argument("--delay-ms", type=float, default=100.0)
    dimension.add_argument(
        "--budget-bytes", type=int, default=512,
        help="timestamp wire budget per message",
    )

    theory = commands.add_parser("theory", help="print the P_err(K) curve")
    theory.add_argument("--r", type=int, default=100)
    theory.add_argument("--x", type=float, default=20.0, help="concurrency X")
    theory.add_argument("--k-max", type=int, default=12)

    node = commands.add_parser(
        "node", help="run one networked node over the reliable UDP runtime"
    )
    node.add_argument("--id", default="node", help="this node's identity")
    node.add_argument("--listen", default="127.0.0.1:0", help="bind host:port")
    node.add_argument(
        "--peer", action="append", default=[], metavar="HOST:PORT",
        help="peer address to broadcast to (repeatable)",
    )
    node.add_argument("--r", type=int, default=128)
    node.add_argument("--k", type=int, default=3)
    node.add_argument(
        "--clock", choices=clock_schemes(), default="probabilistic"
    )
    node.add_argument(
        "--detector", choices=detector_names(), default="basic"
    )
    node.add_argument(
        "--send", default="hello", help="payload prefix for the broadcasts"
    )
    node.add_argument("--count", type=int, default=5, help="broadcasts to send")
    node.add_argument(
        "--interval", type=float, default=0.2, help="seconds between broadcasts"
    )
    node.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds to keep listening after the last broadcast",
    )
    node.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="crash-journal directory; restarting with the same DIR "
             "resumes the pre-crash causal state",
    )
    node.add_argument(
        "--heartbeat-interval", type=float, default=0.0, metavar="SECONDS",
        help="seconds between liveness heartbeats (0 disables the "
             "failure detector)",
    )
    node.add_argument(
        "--quarantine-after", type=float, default=2.0, metavar="SECONDS",
        help="peer silence after which it is quarantined",
    )
    node.add_argument(
        "--bootstrap", action="store_true",
        help="found a new group of one (the first node; later nodes "
             "--join it)",
    )
    node.add_argument(
        "--join", action="append", default=[], metavar="HOST:PORT",
        help="join the group through this running member (repeatable; "
             "enables the dynamic-membership layer)",
    )
    node.add_argument(
        "--join-timeout", type=float, default=1.0, metavar="SECONDS",
        help="seconds to wait for a JOIN_ACK before retrying",
    )
    node.add_argument(
        "--join-retries", type=int, default=5, metavar="N",
        help="JOIN retransmissions after the first attempt",
    )
    node.add_argument(
        "--evict-after", type=float, default=10.0, metavar="SECONDS",
        help="quarantine age after which the coordinator evicts a member "
             "from the view (0 disables; needs --heartbeat-interval)",
    )
    node.add_argument(
        "--adaptive", action="store_true",
        help="self-tune K at runtime: re-estimate the in-flight "
             "concurrency X from live telemetry and let the acting "
             "coordinator renegotiate the group's clock geometry via "
             "epoch bumps (needs --bootstrap or --join)",
    )
    node.add_argument(
        "--adaptive-band", default="0:0.05", metavar="LOW:HIGH",
        help="target alert-rate band (alerts per delivery); the "
             "controller re-tiles K only when the measured rate "
             "leaves it",
    )
    node.add_argument(
        "--adaptive-interval", type=float, default=5.0, metavar="SECONDS",
        help="seconds between adaptive-controller decisions",
    )
    node.add_argument(
        "--adaptive-k-max", type=int, default=16, metavar="K",
        help="upper bound on the renegotiated K",
    )
    node.add_argument(
        "--coalesce-mtu", type=int, default=1400, metavar="BYTES",
        help="datagram budget for frame coalescing (0 sends every frame "
             "in its own datagram)",
    )
    node.add_argument(
        "--ack-delay", type=float, default=0.005, metavar="SECONDS",
        help="how long to hold a cumulative ACK hoping to piggyback it "
             "(0 acks every data frame immediately)",
    )
    node.add_argument(
        "--no-wire-delta", action="store_true",
        help="always send full timestamp encodings (disable the "
             "delta-compressed wire path)",
    )
    node.add_argument(
        "--io-mode", choices=("batched", "legacy", "mmsg"), default="batched",
        help="UDP socket driver: 'batched' drains many datagrams per "
             "event-loop wakeup, 'legacy' uses the per-datagram asyncio "
             "endpoint, 'mmsg' adds a sendmmsg(2) burst path where "
             "available",
    )
    node.add_argument(
        "--rx-batch", type=int, default=32, metavar="N",
        help="max datagrams drained per wakeup (batched/mmsg modes)",
    )
    node.add_argument(
        "--tx-batch", type=int, default=32, metavar="N",
        help="max datagrams written per send burst (batched/mmsg modes)",
    )
    node.add_argument(
        "--dissemination", choices=("mesh", "overlay"), default="mesh",
        help="how broadcasts spread: 'mesh' unicasts to every peer, "
             "'overlay' pushes to --fanout targets drawn from a bounded "
             "partial view and lets receivers relay (scales past the "
             "mesh; anti-entropy heals the probabilistic tail)",
    )
    node.add_argument(
        "--fanout", type=int, default=3, metavar="N",
        help="relay targets per push (overlay dissemination only)",
    )
    node.add_argument(
        "--view-size", type=int, default=12, metavar="N",
        help="bound on the gossip-maintained partial view (overlay "
             "dissemination only; must be >= --fanout)",
    )
    node.add_argument(
        "--metrics-path", default=None, metavar="FILE",
        help="append periodic metrics snapshots (JSONL) to FILE; "
             "render later with `repro stats FILE`",
    )
    node.add_argument(
        "--metrics-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between JSONL snapshots",
    )
    node.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text metrics on http://127.0.0.1:PORT/metrics "
             "(0 picks a free port)",
    )

    stats = commands.add_parser(
        "stats", help="render a metrics JSONL export as tables"
    )
    stats.add_argument(
        "paths", nargs="+", metavar="FILE",
        help="metrics JSONL file(s); several files (e.g. one per node) "
             "are merged into one fleet-wide view",
    )
    stats.add_argument("--json", action="store_true", help="emit the snapshot as JSON")
    stats.add_argument(
        "--prometheus", action="store_true",
        help="emit Prometheus text exposition format instead of tables",
    )

    commands.add_parser(
        "engines",
        help="list registered clock schemes, delivery engines, and detectors",
    )

    return parser


def _parse_host_port(value: str) -> tuple:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {value!r}")
    return (host, int(port))


def _add_simulation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=60)
    parser.add_argument("--r", type=int, default=100)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument(
        "--clock", choices=clock_schemes(), default="probabilistic"
    )
    parser.add_argument(
        "--assigner",
        choices=("random", "random-colliding", "perfect", "balanced-load",
                 "sequential", "hash"),
        default="random-colliding",
    )
    parser.add_argument(
        "--lambda-ms", type=float, default=1000.0,
        help="mean interval between one node's broadcasts",
    )
    parser.add_argument("--duration-ms", type=float, default=30_000.0)
    parser.add_argument("--delay-mean-ms", type=float, default=100.0)
    parser.add_argument("--delay-std-ms", type=float, default=20.0)
    parser.add_argument("--skew-std-ms", type=float, default=20.0)
    parser.add_argument(
        "--detector", choices=detector_names(), default="basic"
    )
    parser.add_argument(
        "--engine", choices=engine_names(), default="auto",
        help="pending-buffer drain engine for every simulated endpoint",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--churn-interval-ms", type=float, default=None,
        help="mean ms between joins (and between leaves); omit for static",
    )


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    churn = None
    if args.churn_interval_ms is not None:
        churn = PoissonChurn(
            join_interval_ms=args.churn_interval_ms,
            leave_interval_ms=args.churn_interval_ms,
            min_population=max(2, args.nodes // 2),
        )
    return SimulationConfig(
        n_nodes=args.nodes,
        r=args.r,
        k=args.k,
        clock=args.clock,
        key_assigner=args.assigner,
        workload=PoissonWorkload(args.lambda_ms),
        delay_model=GaussianDelayModel(
            args.delay_mean_ms, args.delay_std_ms, args.skew_std_ms
        ),
        detector=args.detector,
        engine=args.engine,
        duration_ms=args.duration_ms,
        churn=churn,
        seed=args.seed,
        metrics_path=getattr(args, "metrics_path", None),
    )


def _command_simulate(args: argparse.Namespace) -> int:
    result = run_simulation(_config_from_args(args))
    if args.json:
        print(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(result.summary())
    rows = [
        ["sent", result.sent],
        ["delivered (remote)", result.delivered_remote],
        ["eps_min", result.eps_min],
        ["eps_max", result.eps_max],
        ["alert rate", result.alerts.alert_rate],
        ["alert recall (late)", result.alerts.recall_late],
        ["latency mean (ms)", result.latency["mean"]],
        ["latency p99 (ms)", result.latency["p99"]],
        ["measured X", result.measured_concurrency],
        ["joins / leaves", f"{result.joins} / {result.leaves}"],
        ["stuck pending", result.stuck_pending],
    ]
    print(render_table(["metric", "value"], rows))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    base = _config_from_args(args)
    raw_values = [value.strip() for value in args.values.split(",") if value.strip()]

    if args.parameter == "k":
        values: List = [int(v) for v in raw_values]
        make = lambda cfg, v: dataclasses.replace(cfg, k=v)  # noqa: E731
    elif args.parameter == "nodes":
        values = [int(v) for v in raw_values]
        make = lambda cfg, v: dataclasses.replace(cfg, n_nodes=v)  # noqa: E731
    else:
        values = [float(v) for v in raw_values]
        make = lambda cfg, v: dataclasses.replace(  # noqa: E731
            cfg, workload=PoissonWorkload(v)
        )

    points = sweep_parameter(
        base, values, make, repeats=args.repeats, seed_base=args.seed + 1000
    )
    print(
        render_table(
            SweepPoint.ROW_HEADERS,
            [point.row() for point in points],
            title=f"sweep of {args.parameter}",
        )
    )
    return 0


def _command_dimension(args: argparse.Namespace) -> int:
    receive_rate = (args.nodes - 1) * args.send_rate
    x = expected_concurrency(receive_rate, args.delay_ms)
    r = max(1, (args.budget_bytes * 8) // 33)
    x_effective = max(x, 0.1)
    k = optimal_k_int(r, x_effective, k_max=min(r, 32))
    rows = [
        ["nodes", args.nodes],
        ["receive rate (msg/s)", receive_rate],
        ["concurrency X", x],
        ["vector size R", r],
        ["keys per process K", k],
        ["continuous K (ln2*R/X)", optimal_k(r, x_effective)],
        ["timestamp bytes", timestamp_overhead_bits(r, k) // 8],
        ["vector-clock bytes (for comparison)",
         timestamp_overhead_bits(max(args.nodes, 2), 1) // 8],
        ["predicted P_err", p_error(r, k, x_effective)],
    ]
    print(render_table(["quantity", "value"], rows, title="dimensioning"))
    return 0


def _command_theory(args: argparse.Namespace) -> int:
    rows = [
        [k, p_error(args.r, k, args.x)]
        for k in range(1, min(args.k_max, args.r) + 1)
    ]
    print(
        render_table(
            ["K", "P_err"],
            rows,
            title=f"P_err(R={args.r}, K, X={args.x}); "
            f"optimum ~ {optimal_k(args.r, args.x):.2f}",
        )
    )
    return 0


def _command_node(args: argparse.Namespace) -> int:
    # Imported here so the simulation-only commands stay import-light.
    from repro.api import NodeConfig, create_node
    from repro.core.errors import MembershipError

    host, port = _parse_host_port(args.listen)
    peer_addresses = [_parse_host_port(peer) for peer in args.peer]
    seed_addresses = [_parse_host_port(seed) for seed in args.join]
    if args.bootstrap and seed_addresses:
        print("--bootstrap and --join are mutually exclusive", file=sys.stderr)
        return 1
    try:
        band_low, band_high = (float(v) for v in args.adaptive_band.split(":"))
    except ValueError:
        print(f"--adaptive-band must be LOW:HIGH, got {args.adaptive_band!r}",
              file=sys.stderr)
        return 1
    dense = get_clock_spec(args.clock).needs_dense_index
    config = NodeConfig(
        r=args.r,
        k=args.k,
        scheme=args.clock,
        n=args.r if dense else None,
        detector=args.detector,
        host=host,
        port=port,
        data_dir=args.data_dir,
        heartbeat_interval=args.heartbeat_interval,
        quarantine_after=args.quarantine_after,
        membership=args.bootstrap or bool(seed_addresses),
        seed_peers=tuple(seed_addresses),
        join_timeout=args.join_timeout,
        join_retries=args.join_retries,
        evict_after=args.evict_after,
        adaptive=args.adaptive,
        adaptive_interval=args.adaptive_interval,
        adaptive_band=(band_low, band_high),
        adaptive_k_max=args.adaptive_k_max,
        coalesce_mtu=args.coalesce_mtu,
        ack_delay=args.ack_delay,
        wire_delta=not args.no_wire_delta,
        io_mode=args.io_mode,
        rx_batch=args.rx_batch,
        tx_batch=args.tx_batch,
        dissemination=args.dissemination,
        fanout=args.fanout,
        view_size=args.view_size,
        metrics_path=args.metrics_path,
        metrics_interval=args.metrics_interval,
        metrics_port=args.metrics_port,
    )

    async def run() -> int:
        try:
            node = await create_node(
                args.id,
                config,
                on_delivery=lambda record: print(
                    f"<- {record.message.sender}: {record.message.payload!r}"
                    + ("  [ALERT]" if record.alert else "")
                ),
                index=0 if dense else None,
            )
        except OSError as exc:
            print(f"cannot bind {host}:{port}: {exc}", file=sys.stderr)
            return 1
        except MembershipError as exc:
            print(f"cannot join the group: {exc}", file=sys.stderr)
            return 1
        print(f"listening on {node.local_address[0]}:{node.local_address[1]} "
              f"as {args.id!r} (R={config.r}, K={config.k}, {config.scheme})")
        if node.recovered is not None:
            print(f"recovered journal: send_seq={node.recovered.send_seq} "
                  f"({node.recovered.wal_records} WAL records replayed, "
                  f"detector checks={node.recovered.detector_checks} "
                  f"alerts={node.recovered.detector_alerts})")
        if node.metrics_server is not None:
            print(f"metrics: http://{node.metrics_server.host}:"
                  f"{node.metrics_server.port}/metrics")
        if node.membership is not None and node.membership.view is not None:
            view = node.membership.view
            print(f"group view {view.view_id}: "
                  f"{sorted(view.member_ids())} "
                  f"(keys={list(node.endpoint.clock.own_keys)})")
        for peer in peer_addresses:
            node.add_peer(peer)
        try:
            for i in range(args.count):
                await node.broadcast(f"{args.send}-{i}")
                await asyncio.sleep(args.interval)
            await asyncio.sleep(args.duration)
        finally:
            node_stats = node.stats()
            detector = node_stats.detector
            print(
                f"delivered={node_stats.endpoint.delivered} "
                f"pending={node_stats.pending} "
                f"detector: checks={detector.checks} alerts={detector.alerts} "
                f"alert_rate={detector.alert_rate:.3e}"
            )
            stats = node.transport_stats()
            print(
                f"sent={stats.data_sent} received={stats.data_received} "
                f"retransmits={stats.retransmits} nacks={stats.nacks_sent} "
                f"drops={stats.drops} digests={stats.digests_sent} "
                f"heartbeats={stats.heartbeats_sent} "
                f"rtt={'%.4fs' % stats.rtt if stats.rtt is not None else 'n/a'}"
            )
            frames_per_datagram = (
                stats.frames_sent / stats.datagrams_sent
                if stats.datagrams_sent else 0.0
            )
            print(
                f"wire: datagrams={stats.datagrams_sent} "
                f"bytes={stats.bytes_sent} "
                f"frames/datagram={frames_per_datagram:.2f} "
                f"batches={stats.batches_sent} "
                f"acks piggybacked={stats.acks_piggybacked}"
                f"/{stats.acks_sent} "
                f"timestamps delta={stats.delta_sent}"
                f"/full={stats.full_sent}"
            )
            if node.overlay is not None:
                overlay = node.overlay
                print(
                    f"overlay: pushes={overlay.stats.relay_pushes} "
                    f"first-intake={overlay.stats.relay_first_intake} "
                    f"duplicates={overlay.stats.relay_duplicates} "
                    f"forwarded={overlay.stats.relay_forwarded} "
                    f"view={len(overlay)}/{overlay.view_size} "
                    f"diversity={overlay.sample_diversity():.2f}"
                )
            if node.membership is not None and node.membership.joined:
                # Graceful goodbye; a lost LEAVE is healed by eviction.
                await node.membership.leave()
            await node.close()
        return 0

    return asyncio.run(run())


def _command_stats(args: argparse.Namespace) -> int:
    from repro.obs import merge_snapshots, render_prometheus
    from repro.obs.registry import Histogram
    from repro.obs.export import last_snapshot

    snapshots = []
    for path in args.paths:
        try:
            snapshot = last_snapshot(path)
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 1
        if snapshot is None:
            print(f"no complete snapshot in {path}", file=sys.stderr)
            return 1
        snapshots.append(snapshot)
    merged = snapshots[0] if len(snapshots) == 1 else merge_snapshots(snapshots)

    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
        return 0
    if args.prometheus:
        sys.stdout.write(render_prometheus(merged))
        return 0

    labels = ", ".join(
        f"{key}={value}" for key, value in sorted(merged.get("labels", {}).items())
    )
    source = f"{len(args.paths)} file(s)" if len(args.paths) > 1 else args.paths[0]
    header = f"metrics from {source}"
    if labels:
        header += f"  [{labels}]"
    if "ts" in merged:
        header += f"  (ts={merged['ts']:.3f})"
    print(header)

    counters = merged.get("counters", {})
    gauges = merged.get("gauges", {})
    scalar_rows = [[name, value] for name, value in counters.items()]
    scalar_rows += [[name, value] for name, value in gauges.items()]
    if scalar_rows:
        print(render_table(["series", "value"], scalar_rows))
    histograms = merged.get("histograms", {})
    if histograms:
        rows = []
        for name, payload in histograms.items():
            histogram = Histogram.from_dict(payload)
            rows.append([
                name,
                histogram.count,
                f"{histogram.mean:.4g}",
                f"{histogram.quantile(0.50):.4g}",
                f"{histogram.quantile(0.95):.4g}",
                f"{histogram.quantile(0.99):.4g}",
            ])
        print(render_table(
            ["histogram", "count", "mean", "p50", "p95", "p99"], rows,
            title="quantiles are bucket-resolution estimates",
        ))
    return 0


def _command_engines(args: argparse.Namespace) -> int:
    def flags(capabilities: dict) -> str:
        on = [name for name, value in sorted(capabilities.items())
              if value is True]
        return ", ".join(on) if on else "-"

    clock_rows = []
    for name in clock_schemes():
        spec = get_clock_spec(name)
        caps = spec.capabilities()
        clock_rows.append([
            name,
            caps["wire_scheme_id"],
            caps["fixed_r"] if caps["fixed_r"] is not None else "free",
            caps["fixed_k"] if caps["fixed_k"] is not None else "free",
            flags({key: caps[key] for key in
                   ("needs_dense_index", "needs_key_assignment",
                    "per_message_keys")}),
            spec.description,
        ])
    print(render_table(
        ["clock", "wire id", "R", "K", "capabilities", "description"],
        clock_rows, title="registered clock schemes",
    ))

    engine_rows = []
    for name in engine_names():
        spec = get_engine_spec(name)
        caps = spec.capabilities()
        engine_rows.append([
            name,
            "yes" if caps["buffered"] else "no",
            "yes" if caps["auto_promote"] else "no",
            spec.description,
        ])
    print(render_table(
        ["engine", "buffered", "auto-promote", "description"],
        engine_rows, title="registered delivery engines",
    ))

    detector_rows = [
        [name, get_detector_spec(name).description]
        for name in detector_names()
    ]
    print(render_table(
        ["detector", "description"],
        detector_rows, title="registered detectors",
    ))
    return 0


_COMMANDS = {
    "simulate": _command_simulate,
    "sweep": _command_sweep,
    "dimension": _command_dimension,
    "theory": _command_theory,
    "node": _command_node,
    "stats": _command_stats,
    "engines": _command_engines,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (| head):
        # normal shell usage, not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
