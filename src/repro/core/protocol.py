"""The causal broadcast endpoint: Algorithms 1 and 2 wired together.

A :class:`CausalBroadcastEndpoint` is the per-process protocol state a real
deployment would embed: the logical clock (any member of the (n, r, k)
family), duplicate suppression, the pending queue of received-but-not-yet-
deliverable messages, an optional delivery-error detector (Algorithms 4/5)
and the callback into the application layer.

The endpoint is transport-agnostic.  Feeding it is the job of either a
real network layer or the discrete-event simulator (:mod:`repro.sim`):

* :meth:`broadcast` timestamps an outgoing message (Algorithm 1) and
  returns it; the caller disseminates it.
* :meth:`on_receive` accepts an incoming message (the ``rec(m)`` event of
  the paper), applies Algorithm 2's wait condition, and returns the list
  of messages *delivered* as a consequence — the head message and any
  pending messages it unblocked, in delivery order.

Deliveries at the sender: Algorithm 1's increment of ``f(p_i)`` already
records the sender's own message in its vector, so the sender never runs
Algorithm 2 on its own message.  :meth:`broadcast` reports the payload to
the local application immediately (self-delivery), matching the usual
broadcast semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.clocks import EntryVectorClock, Timestamp
from repro.core.detector import DeliveryErrorDetector, NullDetector
from repro.core.errors import ConfigurationError
from repro.core.pending import Frontiers, PendingBuffer, SeenFilter
from repro.core.registry import engine_names, get_engine_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import TraceRing

__all__ = [
    "Message",
    "DeliveryRecord",
    "EndpointStats",
    "CausalBroadcastEndpoint",
    "ENGINE_MODES",
]

# Snapshot of the engines registered at import time (the built-ins:
# indexed, naive, auto, hybrid).  Validation resolves through the live
# registry, so engines registered later work too — this tuple exists for
# display and backwards compatibility.
ENGINE_MODES = engine_names()

# Pending depth at which engine="auto" promotes the naive drain to the
# entry-indexed buffer.  Re-profiled after the hot dataclasses grew
# __slots__ (which cheapened the indexed path's attribute traffic): on
# the n8 retransmission trace a threshold of 32 lets auto beat BOTH
# pure engines (~1.3x vs naive — shallow phases stay on the cheap
# drain, the deep mid-trace queue gets the index), while at n32/n64
# the queue blows past any threshold in this range immediately, so the
# 3.5-6.5x deep-queue speedups are unaffected.  24 sat on the noisy
# edge of the crossover; check_regression.py now asserts auto >= best
# single engine on the n8 scenario.
AUTO_PROMOTE_PENDING = 32

ProcessId = Hashable
MessageId = Tuple[ProcessId, int]


@dataclass(frozen=True, slots=True)
class Message:
    """A broadcast message: payload plus the paper's control information.

    Attributes:
        sender: identity of the broadcasting process.
        seq: per-sender sequence number (1-based), assigned by the
            endpoint; together with ``sender`` it forms the unique id.
        timestamp: the attached (R, K) timestamp (``m.V`` + ``f(p_j)``).
        payload: opaque application data.
    """

    sender: ProcessId
    seq: int
    timestamp: Timestamp
    payload: Any = None

    @property
    def message_id(self) -> MessageId:
        """Globally unique identifier ``(sender, seq)``."""
        return (self.sender, self.seq)


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One delivery handed to the application layer.

    Attributes:
        message: the delivered message.
        alert: whether the configured detector flagged this delivery as a
            possible causal-order violation (Algorithm 4/5).
        local: True for the sender's immediate self-delivery.
    """

    message: Message
    alert: bool = False
    local: bool = False


@dataclass
class EndpointStats:
    """Operational counters of one endpoint."""

    sent: int = 0
    received: int = 0
    duplicates: int = 0
    delivered: int = 0
    alerts: int = 0
    pending_peak: int = 0

    def observe_pending(self, size: int) -> None:
        """Track the pending-queue high-water mark."""
        if size > self.pending_peak:
            self.pending_peak = size


class CausalBroadcastEndpoint:
    """Per-process protocol machine for (probabilistic) causal broadcast.

    Args:
        process_id: this process's identity.
        clock: its logical clock (owns the entry set ``f(p_i)``).
        detector: pre-delivery alert check; defaults to the silent
            :class:`NullDetector`.
        deliver_callback: invoked with a :class:`DeliveryRecord` for each
            delivery, including the local self-delivery on broadcast.
        max_pending: optional safety bound on the pending queue; exceeded
            means the configuration is pathological (e.g. a partitioned
            sender) and raises :class:`ConfigurationError` rather than
            accumulating unbounded state.
        engine: pending-queue drain strategy, resolved through
            :mod:`repro.core.registry` — ``"indexed"`` (default) uses
            the vectorised, entry-indexed
            :class:`~repro.core.pending.PendingBuffer`; ``"naive"`` keeps
            the original full-rescan Python loop as a reference
            implementation for differential testing; ``"auto"`` starts
            naive and promotes to the indexed buffer once the pending
            queue deepens past :data:`AUTO_PROMOTE_PENDING` (shallow
            queues are faster without the index bookkeeping; deep ones
            need it); ``"hybrid"`` keeps per-sender seq-sorted queues
            and probes only their fronts
            (:class:`~repro.core.pending.HybridBuffer`).  Delivery
            order is identical across all of them.
    """

    def __init__(
        self,
        process_id: ProcessId,
        clock: EntryVectorClock,
        detector: Optional[DeliveryErrorDetector] = None,
        deliver_callback: Optional[Callable[[DeliveryRecord], None]] = None,
        max_pending: Optional[int] = None,
        engine: str = "indexed",
    ) -> None:
        if max_pending is not None and max_pending <= 0:
            raise ConfigurationError(f"max_pending must be positive, got {max_pending}")
        spec = get_engine_spec(engine)
        self._process_id = process_id
        self._clock = clock
        self._detector = detector if detector is not None else NullDetector()
        self._callback = deliver_callback
        self._max_pending = max_pending
        self._engine = engine
        self._auto_promote = spec.auto_promote
        self._pending: List[Message] = []
        self._buffer: Optional[Any] = (
            spec.buffer_factory(clock.r) if spec.buffer_factory is not None else None
        )
        self._active_engine = engine if self._buffer is not None else "naive"
        self._seen = SeenFilter()
        self.stats = EndpointStats()
        # Observability is opt-in: the hot path pays one None check until
        # bind_metrics() wires a registry in.
        self._wait_histogram = None
        self._trace: Optional["TraceRing"] = None
        self._arrival_time: Dict[MessageId, float] = {}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def bind_metrics(
        self,
        registry: "MetricsRegistry",
        trace: Optional["TraceRing"] = None,
    ) -> None:
        """Attach a metrics registry (and optionally a trace ring).

        Counters stay pull-style: :class:`EndpointStats` and the
        detector's :class:`~repro.core.detector.DetectorStats` remain
        the source of truth, synced into registry instruments by a
        collector at snapshot time — the delivery hot path is untouched.
        Only the delivery-wait histogram is push-style (a distribution
        cannot be reconstructed after the fact), which costs one dict
        pop and one bisect per remote delivery.
        """
        self._wait_histogram = registry.histogram("repro_delivery_wait_seconds")
        self._trace = trace
        sent = registry.counter("repro_endpoint_sent_total")
        received = registry.counter("repro_endpoint_received_total")
        duplicates = registry.counter("repro_endpoint_duplicates_total")
        delivered = registry.counter("repro_endpoint_delivered_total")
        alerts = registry.counter("repro_endpoint_alerts_total")
        checks = registry.counter("repro_detector_checks_total")
        detector_alerts = registry.counter("repro_detector_alerts_total")
        depth = registry.gauge("repro_pending_depth")
        peak = registry.gauge("repro_pending_peak")
        recent = registry.gauge("repro_detector_recent_size")
        wakeups = registry.counter("repro_pending_wakeups_total")
        spurious = registry.counter("repro_pending_spurious_wakeups_total")

        def collect() -> None:
            sent.set(self.stats.sent)
            received.set(self.stats.received)
            duplicates.set(self.stats.duplicates)
            delivered.set(self.stats.delivered)
            alerts.set(self.stats.alerts)
            checks.set(self._detector.stats.checks)
            detector_alerts.set(self._detector.stats.alerts)
            depth.set(self.pending_count)
            peak.set(self.stats.pending_peak)
            recent.set(getattr(self._detector, "recent_size", 0))
            if self._buffer is not None:
                wakeups.set(self._buffer.wakeups)
                spurious.set(self._buffer.spurious_wakeups)

        registry.register_collector(collect)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def process_id(self) -> ProcessId:
        """This endpoint's process identity."""
        return self._process_id

    @property
    def clock(self) -> EntryVectorClock:
        """The logical clock driving the delivery condition."""
        return self._clock

    @property
    def detector(self) -> DeliveryErrorDetector:
        """The configured pre-delivery alert check."""
        return self._detector

    @property
    def engine(self) -> str:
        """The configured drain strategy (a registered engine name)."""
        return self._engine

    @property
    def active_engine(self) -> str:
        """The drain strategy currently executing — for ``auto``, which
        side of the promotion threshold the endpoint is on."""
        return self._active_engine

    @property
    def pending_count(self) -> int:
        """Messages received but still failing the delivery condition."""
        if self._buffer is not None:
            return len(self._buffer)
        return len(self._pending)

    def pending_messages(self) -> Tuple[Message, ...]:
        """Snapshot of the pending queue (receive order)."""
        if self._buffer is not None:
            return tuple(self._buffer.items())
        return tuple(self._pending)

    def has_seen(self, message_id: MessageId) -> bool:
        """Whether a message id was already received (duplicate filter)."""
        return message_id in self._seen

    def mark_seen(self, message_id: MessageId) -> bool:
        """Record a message id as seen without processing it.

        Used by hosts that sink traffic addressed to a retired endpoint
        (e.g. the simulator, for copies arriving after a node left) and
        still need exactly-once accounting.  Returns True when the id was
        new.
        """
        return self._seen.add(message_id)

    def seen_frontiers(self) -> Frontiers:
        """Per-sender ``(watermark, sorted tail)`` duplicate-filter state.

        The same shape the journal and anti-entropy digests use, so
        persistence layers can snapshot the filter without enumerating
        every historical id.
        """
        return self._seen.frontiers()

    def restore_seen(self, frontiers: Frontiers) -> None:
        """Adopt recovered duplicate-filter coverage wholesale.

        O(senders + out-of-order tail) instead of one :meth:`mark_seen`
        per historical message; only valid before any traffic was
        processed (the crash-recovery path runs first).
        """
        self._seen.restore(frontiers)

    # ------------------------------------------------------------------
    # sending (Algorithm 1)
    # ------------------------------------------------------------------

    def broadcast(self, payload: Any = None, now: float = 0.0) -> Message:
        """Timestamp a new message and hand it back for dissemination.

        Also performs the local self-delivery (application callback with
        ``local=True``); the clock increment of Algorithm 1 is the
        sender-side bookkeeping for it.
        """
        timestamp = self._clock.prepare_send()
        if self._buffer is not None:
            # Algorithm 1 just incremented this node's own keys; pending
            # messages whose unsatisfied entries overlap them can become
            # deliverable without any delivery touching those entries.
            # The naive rescan sees this for free at its next drain; the
            # entry-indexed buffer must be told (see pending.py).
            self._buffer.notify_increment(timestamp.sender_keys)
        message = Message(
            sender=self._process_id,
            seq=timestamp.seq,
            timestamp=timestamp,
            payload=payload,
        )
        self._seen.add(message.message_id)
        self.stats.sent += 1
        self._emit(DeliveryRecord(message=message, alert=False, local=True))
        return message

    # ------------------------------------------------------------------
    # receiving (Algorithm 2 + cascade)
    # ------------------------------------------------------------------

    def on_receive(self, message: Message, now: float = 0.0) -> List[DeliveryRecord]:
        """Process the arrival of ``message`` (the paper's ``rec(m)``).

        Returns the deliveries it triggered, in order: possibly none (the
        message joined the pending queue, or was a duplicate), possibly
        several (it unblocked queued messages).
        """
        self.stats.received += 1
        if not self._seen.add(message.message_id):
            self.stats.duplicates += 1
            return []

        delivered: List[DeliveryRecord] = []
        if self._clock.is_deliverable(message.timestamp):
            delivered.append(self._deliver(message, now))
            if self._buffer is not None:
                self._drain_indexed(now, message.timestamp.sender_keys, delivered)
            else:
                delivered.extend(self._drain_pending(now))
        else:
            if self._wait_histogram is not None:
                self._arrival_time[message.message_id] = now
            if self._buffer is not None:
                self._buffer.add(
                    message, message.timestamp.adjusted, self._clock.vector_view()
                )
                size = len(self._buffer)
            else:
                self._pending.append(message)
                size = len(self._pending)
                if self._auto_promote and size >= AUTO_PROMOTE_PENDING:
                    self._promote()
            if self._max_pending is not None and size > self._max_pending:
                raise ConfigurationError(
                    f"pending queue of {self._process_id!r} exceeded "
                    f"max_pending={self._max_pending}"
                )
            self.stats.observe_pending(size)
        return delivered

    def _promote(self) -> None:
        """One-way switch from the naive drain to the indexed buffer.

        Safe at this point by construction: the naive drain just ran to
        a fixpoint, so everything in ``_pending`` is genuinely
        non-deliverable against the current clock — exactly the state
        :meth:`PendingBuffer.add` indexes.  Never demoted: a queue that
        got this deep once is paying rescan costs that dwarf the index
        bookkeeping, and an empty indexed buffer early-outs anyway.
        """
        buffer = PendingBuffer(self._clock.r)
        vector = self._clock.vector_view()
        for queued in self._pending:
            buffer.add(queued, queued.timestamp.adjusted, vector)
        self._pending = []
        self._buffer = buffer
        self._active_engine = "indexed"

    def _drain_indexed(
        self, now: float, touched_keys: Sequence[int], delivered: List[DeliveryRecord]
    ) -> None:
        """Entry-indexed drain: recheck only messages whose unsatisfied
        entries intersect the keys each delivery incremented."""
        if not len(self._buffer):
            return

        def deliver(message: Message) -> Sequence[int]:
            delivered.append(self._deliver(message, now))
            return message.timestamp.sender_keys

        self._buffer.drain(self._clock.vector_view(), touched_keys, deliver)

    def _drain_pending(self, now: float) -> List[DeliveryRecord]:
        """Reference drain: full passes until one makes no progress."""
        delivered: List[DeliveryRecord] = []
        progressed = True
        while progressed and self._pending:
            progressed = False
            still_pending: List[Message] = []
            for queued in self._pending:
                if self._clock.is_deliverable(queued.timestamp):
                    delivered.append(self._deliver(queued, now))
                    progressed = True
                else:
                    still_pending.append(queued)
            self._pending = still_pending
        return delivered

    def _deliver(self, message: Message, now: float) -> DeliveryRecord:
        alert = self._detector.check(self._clock, message.timestamp, now)
        self._clock.record_delivery(message.timestamp)
        self._detector.on_delivered(message.timestamp, now)
        record = DeliveryRecord(message=message, alert=alert, local=False)
        self.stats.delivered += 1
        if alert:
            self.stats.alerts += 1
        if self._wait_histogram is not None:
            # Wait = time spent failing the delivery condition; a message
            # delivered on arrival waited zero.
            arrived = self._arrival_time.pop(message.message_id, now)
            self._wait_histogram.observe(max(0.0, now - arrived))
            if alert and self._trace is not None:
                self._trace.emit(
                    "alert", ts=now,
                    sender=str(message.sender), seq=message.seq,
                )
        self._emit(record)
        return record

    def _emit(self, record: DeliveryRecord) -> None:
        if self._callback is not None:
            self._callback(record)
