"""Pluggable clock / engine / detector registries: the plugin API.

The factory layer (:mod:`repro.api`, :mod:`repro.sim.runner`, the CLI and
the wire codec) used to hard-code ``if scheme == ...`` chains, which meant
every new clock family or pending-queue engine had to edit four modules.
This module replaces those chains with three name-keyed registries:

* **clocks** — members of the (n, r, k) design space *and* foreign
  families (the Bloom clock).  A :class:`ClockSpec` couples the factory
  with *capability descriptors* the assembly layers consult instead of
  matching on names: does the clock need a dense process index
  (``vector``)?  a keyspace assignment (``probabilistic``/``plausible``)?
  does it draw a fresh key set per message (``bloom`` — which rules out
  the static-key delta wire path)?  Each spec also owns a
  ``wire_scheme_id`` byte so timestamps of different families are
  distinguishable on the wire (:mod:`repro.core.codec`).
* **engines** — pending-queue drain strategies for the protocol
  endpoint.  An :class:`EngineSpec` names a buffer factory (or ``None``
  for the reference full-rescan drain) plus the ``auto``-promotion flag.
* **detectors** — pre-delivery alert checks (Algorithms 4/5).

Registration is global and import-time cheap; the built-ins below are
registered when this module is imported.  Third parties register their
own::

    from repro.core.registry import ClockBuildContext, register_clock

    register_clock(
        "myclock",
        lambda ctx: MyClock(ctx.r, ctx.keys),
        needs_key_assignment=True,
        description="my experimental clock",
    )
    config = NodeConfig(scheme="myclock")       # resolves via the registry

Lookups of unknown names raise :class:`ConfigurationError` listing the
registered names — never a silent fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.core.clocks import (
    EntryVectorClock,
    BloomCausalClock,
    LamportCausalClock,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    VectorCausalClock,
)
from repro.core.detector import (
    BasicAlertDetector,
    DeliveryErrorDetector,
    NullDetector,
    RefinedAlertDetector,
)
from repro.core.errors import ConfigurationError
from repro.core.pending import HybridBuffer, PendingBuffer

__all__ = [
    "ClockBuildContext",
    "ClockSpec",
    "EngineSpec",
    "DetectorSpec",
    "register_clock",
    "register_engine",
    "register_detector",
    "unregister_clock",
    "unregister_engine",
    "unregister_detector",
    "get_clock_spec",
    "get_engine_spec",
    "get_detector_spec",
    "clock_schemes",
    "engine_names",
    "detector_names",
    "scheme_id_of",
    "scheme_name_of",
]


@dataclass(frozen=True)
class ClockBuildContext:
    """Everything a clock factory may consume, assembled by the caller.

    The factory layers (:func:`repro.api.create_clock`, the simulator)
    fill the fields a spec's capabilities declare it needs — ``keys``
    when ``needs_key_assignment``, ``index``/``n`` when
    ``needs_dense_index`` — and the factory picks what it wants.

    Attributes:
        node_id: the process identity (drives per-owner key derivation).
        r: vector size R.
        k: entries per process K (hash count for the Bloom clock).
        n: system size (``None`` outside dense-membership deployments).
        index: dense process index (``None`` unless the caller has one).
        keys: the assigned entry set ``f(p_i)`` (empty when the spec does
            not declare ``needs_key_assignment``).
    """

    node_id: Hashable
    r: int
    k: int
    n: Optional[int] = None
    index: Optional[int] = None
    keys: Tuple[int, ...] = ()


ClockFactory = Callable[[ClockBuildContext], EntryVectorClock]


@dataclass(frozen=True)
class ClockSpec:
    """A registered clock family and its capability descriptors.

    Attributes:
        name: the scheme string users configure.
        factory: builds one clock from a :class:`ClockBuildContext`.
        description: one line for ``repro engines`` listings.
        needs_dense_index: the factory requires ``ctx.index``/``ctx.n``
            (static dense membership — the exact vector clock).
        needs_key_assignment: the factory consumes ``ctx.keys`` from a
            keyspace assignment (the (R, K) family's ``f(p_i)``).
        per_message_keys: the clock draws a fresh key set per *send*
            (Bloom clock).  Receivers cannot cache a static per-sender
            key set, so the delta wire path — which reconstructs
            ``sender_keys`` from the link's full-encoding reference —
            is disabled for such schemes.
        fixed_k: the scheme pins K (``1`` for plausible/vector/lamport);
            ``None`` means K is a free parameter.
        fixed_r: the scheme pins R (``1`` for lamport); ``None`` means R
            is a free parameter (or equals N for dense-index schemes).
        wire_scheme_id: the codec's scheme byte — every encoded
            timestamp carries it, so mixed-family traffic fails loudly
            at decode instead of mis-applying a delivery condition.
    """

    name: str
    factory: ClockFactory
    description: str = ""
    needs_dense_index: bool = False
    needs_key_assignment: bool = False
    per_message_keys: bool = False
    fixed_k: Optional[int] = None
    fixed_r: Optional[int] = None
    wire_scheme_id: int = 0

    def capabilities(self) -> Dict[str, Any]:
        """The descriptor fields as a plain dict (CLI listings)."""
        return {
            "needs_dense_index": self.needs_dense_index,
            "needs_key_assignment": self.needs_key_assignment,
            "per_message_keys": self.per_message_keys,
            "fixed_k": self.fixed_k,
            "fixed_r": self.fixed_r,
            "wire_scheme_id": self.wire_scheme_id,
        }


@dataclass(frozen=True)
class EngineSpec:
    """A registered pending-queue drain strategy.

    Attributes:
        name: the engine string users configure.
        buffer_factory: ``r -> buffer`` building the pending structure
            (must expose the :class:`~repro.core.pending.PendingBuffer`
            interface: ``add`` / ``drain`` / ``notify_increment`` /
            ``items`` / ``__len__`` and the ``wakeups`` counters);
            ``None`` selects the reference full-rescan drain over a
            plain list.
        auto_promote: start on the reference drain and promote to the
            indexed buffer past the promotion threshold (``auto``).
        description: one line for ``repro engines`` listings.
    """

    name: str
    buffer_factory: Optional[Callable[[int], Any]] = None
    auto_promote: bool = False
    description: str = ""

    def capabilities(self) -> Dict[str, Any]:
        """The descriptor fields as a plain dict (CLI listings)."""
        return {
            "buffered": self.buffer_factory is not None,
            "auto_promote": self.auto_promote,
        }


@dataclass(frozen=True)
class DetectorSpec:
    """A registered pre-delivery alert check.

    The factory accepts the two knobs the assembly layers thread through
    (``window`` and ``max_entries``); specs that ignore them (``none``,
    ``basic``) simply drop the arguments.
    """

    name: str
    factory: Callable[..., DeliveryErrorDetector] = field(default=NullDetector)
    description: str = ""

    def build(
        self, window: Optional[float] = None, max_entries: Optional[int] = None
    ) -> DeliveryErrorDetector:
        """Instantiate the detector with the standard knobs."""
        return self.factory(window=window, max_entries=max_entries)


_CLOCKS: Dict[str, ClockSpec] = {}
_ENGINES: Dict[str, EngineSpec] = {}
_DETECTORS: Dict[str, DetectorSpec] = {}


def _check_name(kind: str, name: str, table: Dict[str, Any], replace: bool) -> None:
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"{kind} name must be a non-empty string, got {name!r}")
    if name in table and not replace:
        raise ConfigurationError(
            f"{kind} {name!r} is already registered (pass replace=True to override)"
        )


def register_clock(
    name: str,
    factory: ClockFactory,
    *,
    description: str = "",
    needs_dense_index: bool = False,
    needs_key_assignment: bool = False,
    per_message_keys: bool = False,
    fixed_k: Optional[int] = None,
    fixed_r: Optional[int] = None,
    wire_scheme_id: Optional[int] = None,
    replace: bool = False,
) -> ClockSpec:
    """Register a clock family under ``name``; returns its spec.

    ``wire_scheme_id`` defaults to the smallest unallocated byte; pass an
    explicit value to pin a wire-stable id (the built-ins do).
    """
    _check_name("clock scheme", name, _CLOCKS, replace)
    if wire_scheme_id is None:
        taken = {spec.wire_scheme_id for key, spec in _CLOCKS.items() if key != name}
        wire_scheme_id = next(i for i in range(1, 256) if i not in taken)
    if not 1 <= wire_scheme_id <= 255:
        raise ConfigurationError(
            f"wire_scheme_id must fit one byte in [1, 255], got {wire_scheme_id}"
        )
    for key, spec in _CLOCKS.items():
        if key != name and spec.wire_scheme_id == wire_scheme_id:
            raise ConfigurationError(
                f"wire_scheme_id {wire_scheme_id} already allocated to {key!r}"
            )
    spec = ClockSpec(
        name=name,
        factory=factory,
        description=description,
        needs_dense_index=needs_dense_index,
        needs_key_assignment=needs_key_assignment,
        per_message_keys=per_message_keys,
        fixed_k=fixed_k,
        fixed_r=fixed_r,
        wire_scheme_id=wire_scheme_id,
    )
    _CLOCKS[name] = spec
    return spec


def register_engine(
    name: str,
    buffer_factory: Optional[Callable[[int], Any]] = None,
    *,
    auto_promote: bool = False,
    description: str = "",
    replace: bool = False,
) -> EngineSpec:
    """Register a pending-queue engine under ``name``; returns its spec."""
    _check_name("engine", name, _ENGINES, replace)
    spec = EngineSpec(
        name=name,
        buffer_factory=buffer_factory,
        auto_promote=auto_promote,
        description=description,
    )
    _ENGINES[name] = spec
    return spec


def register_detector(
    name: str,
    factory: Callable[..., DeliveryErrorDetector],
    *,
    description: str = "",
    replace: bool = False,
) -> DetectorSpec:
    """Register a delivery-error detector under ``name``; returns its spec."""
    _check_name("detector", name, _DETECTORS, replace)
    spec = DetectorSpec(name=name, factory=factory, description=description)
    _DETECTORS[name] = spec
    return spec


def unregister_clock(name: str) -> None:
    """Remove a registered clock scheme (test teardown helper)."""
    _CLOCKS.pop(name, None)


def unregister_engine(name: str) -> None:
    """Remove a registered engine (test teardown helper)."""
    _ENGINES.pop(name, None)


def unregister_detector(name: str) -> None:
    """Remove a registered detector (test teardown helper)."""
    _DETECTORS.pop(name, None)


def _lookup(kind: str, name: str, table: Dict[str, Any]) -> Any:
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; registered: {tuple(table)}"
        ) from None


def get_clock_spec(name: str) -> ClockSpec:
    """The spec registered under ``name`` (raises listing valid names)."""
    return _lookup("clock scheme", name, _CLOCKS)


def get_engine_spec(name: str) -> EngineSpec:
    """The spec registered under ``name`` (raises listing valid names)."""
    return _lookup("engine", name, _ENGINES)


def get_detector_spec(name: str) -> DetectorSpec:
    """The spec registered under ``name`` (raises listing valid names)."""
    return _lookup("detector", name, _DETECTORS)


def clock_schemes() -> Tuple[str, ...]:
    """Registered clock scheme names, in registration order."""
    return tuple(_CLOCKS)


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_ENGINES)


def detector_names() -> Tuple[str, ...]:
    """Registered detector names, in registration order."""
    return tuple(_DETECTORS)


def scheme_id_of(name: str) -> int:
    """The codec scheme byte of a registered clock scheme."""
    return get_clock_spec(name).wire_scheme_id


def scheme_name_of(scheme_id: int) -> Optional[str]:
    """The scheme registered under a codec byte (``None`` when foreign)."""
    for spec in _CLOCKS.values():
        if spec.wire_scheme_id == scheme_id:
            return spec.name
    return None


# ----------------------------------------------------------------------
# Built-ins.  Wire scheme ids are pinned (they are a wire format);
# allocate new ids upward from 6 — see DESIGN.md §9.
# ----------------------------------------------------------------------


def _build_probabilistic(ctx: ClockBuildContext) -> EntryVectorClock:
    return ProbabilisticCausalClock(ctx.r, ctx.keys)


def _build_plausible(ctx: ClockBuildContext) -> EntryVectorClock:
    if len(ctx.keys) != 1:
        raise ConfigurationError(
            f'scheme="plausible" owns exactly one entry, got {tuple(ctx.keys)}'
        )
    return PlausibleCausalClock(ctx.r, ctx.keys[0])


def _build_lamport(ctx: ClockBuildContext) -> EntryVectorClock:
    return LamportCausalClock()


def _build_vector(ctx: ClockBuildContext) -> EntryVectorClock:
    if ctx.index is None:
        raise ConfigurationError(
            'scheme="vector" needs index= (this node\'s dense process index)'
        )
    return VectorCausalClock(ctx.n if ctx.n is not None else ctx.r, ctx.index)


def _build_bloom(ctx: ClockBuildContext) -> EntryVectorClock:
    return BloomCausalClock(ctx.r, hashes=ctx.k, owner=ctx.node_id)


register_clock(
    "probabilistic",
    _build_probabilistic,
    description="the paper's (n, r, k) clock: K static hashed entries per process",
    needs_key_assignment=True,
    wire_scheme_id=1,
)
register_clock(
    "plausible",
    _build_plausible,
    description="Torres-Rojas plausible clock: the (n, r, 1) point",
    needs_key_assignment=True,
    fixed_k=1,
    wire_scheme_id=2,
)
register_clock(
    "lamport",
    _build_lamport,
    description="Lamport scalar clock: the degenerate (n, 1, 1) point",
    fixed_k=1,
    fixed_r=1,
    wire_scheme_id=3,
)
register_clock(
    "vector",
    _build_vector,
    description="exact vector clock: the (n, n, 1) point (dense membership)",
    needs_dense_index=True,
    fixed_k=1,
    wire_scheme_id=4,
)
register_clock(
    "bloom",
    _build_bloom,
    description="Bloom clock (Ramabaja): h hashed entries drawn fresh per event",
    per_message_keys=True,
    wire_scheme_id=5,
)

register_engine(
    "indexed",
    PendingBuffer,
    description="vectorised entry-indexed buffer: O(K + unblocked*R) per delivery",
)
register_engine(
    "naive",
    None,
    description="reference full-rescan drain: O(P*R) passes (differential baseline)",
)
register_engine(
    "auto",
    None,
    auto_promote=True,
    description="naive until the pending queue deepens, then promotes to indexed",
)
register_engine(
    "hybrid",
    HybridBuffer,
    description="per-sender seq-sorted queues (Almeida): checks only queue fronts",
)


def _make_none(window: Optional[float] = None, max_entries: Optional[int] = None):
    return NullDetector()


def _make_basic(window: Optional[float] = None, max_entries: Optional[int] = None):
    return BasicAlertDetector()


def _make_refined(window: Optional[float] = None, max_entries: Optional[int] = None):
    if max_entries is None:
        return RefinedAlertDetector(window=window)
    return RefinedAlertDetector(window=window, max_entries=max_entries)


register_detector("none", _make_none, description="alerts disabled (baseline)")
register_detector(
    "basic", _make_basic, description="Algorithm 4: all sender entries covered"
)
register_detector(
    "refined",
    _make_refined,
    description="Algorithm 5: Algorithm 4 filtered through the recent list L",
)
