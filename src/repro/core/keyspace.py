"""Key-space management: assigning vector entries to processes (Section 4.1.3).

Every process in the paper's scheme owns a set ``f(p_i)`` of ``K`` distinct
entries of the shared ``R``-entry vector.  The quality of the whole
protocol hinges on how those sets are distributed, so the paper discusses
two regimes:

* a **perfect distribution**, where subsets are spread as evenly as
  possible over processes — ideal but incompatible with churn, because a
  join or leave would force a global re-assignment;
* a **random distribution**, where each process independently draws a
  ``set_id`` uniformly in ``[0, C(R, K))`` and expands it with
  Algorithm 3 — this supports continuous joins/leaves and guarantees that
  two processes with different identities share at most ``K - 1`` entries.

This module provides both, plus a couple of deterministic assigners that
are convenient for tests and reproducible experiments.  All assigners
track which process holds which assignment so that membership changes
(:meth:`KeyAssigner.release`) can recycle identifiers.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.combinatorics import num_key_sets, rank_lex, unrank_lex
from repro.core.errors import ConfigurationError, MembershipError
from repro.util.rng import RandomSource

__all__ = [
    "KeyAssignment",
    "KeyAssigner",
    "RandomKeyAssigner",
    "SequentialKeyAssigner",
    "PerfectKeyAssigner",
    "BalancedLoadKeyAssigner",
    "HashKeyAssigner",
    "ExplicitKeyAssigner",
    "entry_loads",
    "pairwise_overlap_counts",
]

ProcessId = Hashable


@dataclass(frozen=True)
class KeyAssignment:
    """The keys granted to one process.

    Attributes:
        process_id: identity of the owning process.
        set_id: the combinatorial rank (lexicographic) of ``keys`` among
            K-subsets of ``{0..R-1}``; ``-1`` for assigners that build the
            subset directly rather than by unranking.
        keys: strictly increasing tuple of vector entries, ``len == K``.
    """

    process_id: ProcessId
    set_id: int
    keys: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.keys) == 0:
            raise ConfigurationError("a key assignment must contain at least one key")
        if len(set(self.keys)) != len(self.keys):
            raise ConfigurationError(f"duplicate keys in assignment: {self.keys}")

    @property
    def k(self) -> int:
        """Number of keys (the paper's ``K``)."""
        return len(self.keys)


class KeyAssigner(ABC):
    """Assigns key sets to joining processes and recycles them on leave.

    Subclasses implement :meth:`_pick_keys`; the base class handles the
    registry, duplicate-join detection, and release bookkeeping.
    """

    def __init__(self, r: int, k: int) -> None:
        if r <= 0:
            raise ConfigurationError(f"vector size R must be positive, got {r}")
        if not 1 <= k <= r:
            raise ConfigurationError(f"need 1 <= K <= R, got K={k}, R={r}")
        self._r = r
        self._k = k
        self._assignments: Dict[ProcessId, KeyAssignment] = {}

    @property
    def r(self) -> int:
        """Size of the shared vector (the paper's ``R``)."""
        return self._r

    @property
    def k(self) -> int:
        """Number of entries per process (the paper's ``K``)."""
        return self._k

    @property
    def assignments(self) -> Dict[ProcessId, KeyAssignment]:
        """Read-only view of the live assignments (copy)."""
        return dict(self._assignments)

    def assign(self, process_id: ProcessId) -> KeyAssignment:
        """Grant a key set to ``process_id``.

        Raises :class:`MembershipError` if the process already holds one.
        """
        if process_id in self._assignments:
            raise MembershipError(f"process {process_id!r} already holds a key set")
        keys = self._pick_keys(process_id)
        try:
            set_id = rank_lex(keys, self._r)
        except ConfigurationError:
            set_id = -1
        assignment = KeyAssignment(process_id=process_id, set_id=set_id, keys=keys)
        self._assignments[process_id] = assignment
        return assignment

    def adopt(self, process_id: ProcessId, keys: Sequence[int]) -> KeyAssignment:
        """Register an assignment granted elsewhere (view mirroring).

        The membership layer distributes assignments inside VIEW frames;
        every member mirrors them into its local assigner with this, so
        whoever becomes acting coordinator next holds a correct ledger.
        Idempotent when the process already holds exactly ``keys``;
        raises :class:`MembershipError` when it holds a different set.
        """
        ordered = tuple(sorted(int(entry) for entry in keys))
        if any(not 0 <= entry < self._r for entry in ordered):
            raise ConfigurationError(
                f"adopted key set for {process_id!r} outside [0, {self._r}): {ordered}"
            )
        existing = self._assignments.get(process_id)
        if existing is not None:
            if existing.keys == ordered:
                return existing
            raise MembershipError(
                f"process {process_id!r} already holds {existing.keys}, "
                f"cannot adopt {ordered}"
            )
        try:
            set_id = rank_lex(ordered, self._r)
        except ConfigurationError:
            set_id = -1
        assignment = KeyAssignment(process_id=process_id, set_id=set_id, keys=ordered)
        self._assignments[process_id] = assignment
        self._on_adopt(assignment)
        return assignment

    def release(self, process_id: ProcessId) -> KeyAssignment:
        """Withdraw the key set of a leaving process and return it."""
        try:
            assignment = self._assignments.pop(process_id)
        except KeyError:
            raise MembershipError(f"process {process_id!r} holds no key set") from None
        self._on_release(assignment)
        return assignment

    def lookup(self, process_id: ProcessId) -> KeyAssignment:
        """Return the live assignment of ``process_id``.

        Raises :class:`MembershipError` if it has none.
        """
        try:
            return self._assignments[process_id]
        except KeyError:
            raise MembershipError(f"process {process_id!r} holds no key set") from None

    def __len__(self) -> int:
        return len(self._assignments)

    def __contains__(self, process_id: ProcessId) -> bool:
        return process_id in self._assignments

    def retile(self, new_k: int) -> "KeyAssigner":
        """A fresh, empty assigner of this class over ``(r, new_k)``.

        The epoch re-tiling hook: when the group renegotiates its clock
        geometry (see :mod:`repro.net.adaptive`), the acting coordinator
        builds the next epoch's ledger with this and re-assigns every
        member at the new ``K``; followers rebuild their mirror the same
        way when a higher-epoch view arrives.  ``K`` is fixed per
        assigner instance, so a K change is a new instance by design —
        the old ledger stays intact until the new view is installed.

        Subclasses with construction state beyond ``(r, k)`` override
        this to carry it across (e.g. the random assigner's RNG stream).
        """
        return type(self)(self._r, new_k)

    @abstractmethod
    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        """Choose the key set for a joining process (ascending tuple)."""

    def _on_release(self, assignment: KeyAssignment) -> None:
        """Hook for subclasses that recycle released key sets."""

    def _on_adopt(self, assignment: KeyAssignment) -> None:
        """Hook for subclasses to mark an adopted set as in use."""


class RandomKeyAssigner(KeyAssigner):
    """The paper's distributed scheme: a uniform random ``set_id``.

    Each joining process draws ``set_id`` uniformly from ``[0, C(R, K))``
    and expands it with the lexicographic unranking (Algorithm 3).  With
    ``avoid_collisions=True`` (the default) the assigner rejects a drawn id
    already in use and redraws — modelling the paper's remark that distinct
    identities yield distinct sets, hence pairwise intersections of at most
    ``K - 1`` entries.  Set it to ``False`` to study the fully
    uncoordinated regime where two processes may collide on the same set.
    """

    def __init__(
        self,
        r: int,
        k: int,
        rng: Optional[RandomSource] = None,
        avoid_collisions: bool = True,
    ) -> None:
        super().__init__(r, k)
        self._rng = rng if rng is not None else RandomSource(seed=0)
        self._avoid_collisions = avoid_collisions
        self._total_sets = num_key_sets(r, k)
        self._used_ids: Dict[int, ProcessId] = {}

    def retile(self, new_k: int) -> "RandomKeyAssigner":
        return type(self)(
            self._r, new_k, rng=self._rng,
            avoid_collisions=self._avoid_collisions,
        )

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        if self._avoid_collisions and len(self._used_ids) >= self._total_sets:
            raise MembershipError(
                f"key space exhausted: C({self._r},{self._k})={self._total_sets} "
                f"sets already assigned"
            )
        while True:
            set_id = self._rng.integer(0, self._total_sets)
            if not self._avoid_collisions or set_id not in self._used_ids:
                break
        self._used_ids[set_id] = process_id
        return unrank_lex(set_id, self._r, self._k)

    def _on_release(self, assignment: KeyAssignment) -> None:
        self._used_ids.pop(assignment.set_id, None)

    def _on_adopt(self, assignment: KeyAssignment) -> None:
        if assignment.set_id >= 0:
            self._used_ids[assignment.set_id] = assignment.process_id


class SequentialKeyAssigner(KeyAssigner):
    """Deterministic assigner: consecutive ``set_id`` values 0, 1, 2, ...

    Useful for unit tests and for reproducing the worked examples of the
    paper's Figures 1 and 2, where specific key sets are prescribed.
    Identifiers wrap modulo ``C(R, K)``.
    """

    def __init__(self, r: int, k: int, start: int = 0) -> None:
        super().__init__(r, k)
        self._next = start
        self._total_sets = num_key_sets(r, k)

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        set_id = self._next % self._total_sets
        self._next += 1
        return unrank_lex(set_id, self._r, self._k)


class PerfectKeyAssigner(KeyAssigner):
    """Round-tiling approximation of the paper's *perfect distribution*.

    The paper's informal definition asks that subsets of entries be spread
    as evenly as possible over processes.  What actually minimises the
    covering probability is keeping pairwise **set intersections** small
    (a near-duplicate set lets a single concurrent message cover a missing
    one) — entry-load balance alone is not enough; see
    :class:`BalancedLoadKeyAssigner` for the counter-example.

    The tiling works in rounds of ``floor(R / K)`` processes.  Within a
    round, sets are pairwise *disjoint* (a partition of ``K·floor(R/K)``
    entries); across rounds the entry space is re-permuted with a
    different affine map ``e ↦ (a·e + b) mod R`` (``a`` coprime to R), so
    inter-round intersections stay small and spread.  Entry loads remain
    balanced within one as a side effect.

    Needs global knowledge (a coordinator), so — exactly as the paper
    argues — it cannot support churn cheaply: it exists as the quality
    ceiling the distributed random draw is compared against.  Released
    slots are recycled to keep long-running membership bounded.
    """

    # Affine multipliers tried per round, first coprime with R wins.
    _CANDIDATE_STRIDES = (1, 3, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)

    def __init__(self, r: int, k: int) -> None:
        super().__init__(r, k)
        self._next_slot = 0
        self._free_slots: List[int] = []
        self._slot_of_process: Dict[ProcessId, int] = {}
        self._sets_per_round = max(1, r // k)
        self._used_sets: Dict[Tuple[int, ...], int] = {}

    def _stride_for_round(self, round_index: int) -> int:
        import math

        usable = []
        seen_residues = set()
        for stride in self._CANDIDATE_STRIDES:
            residue = stride % self._r
            if residue and math.gcd(residue, self._r) == 1 and residue not in seen_residues:
                usable.append(residue)
                seen_residues.add(residue)
        return usable[round_index % len(usable)]

    def _keys_for_slot(self, slot: int) -> Tuple[int, ...]:
        round_index, position = divmod(slot, self._sets_per_round)
        stride = self._stride_for_round(round_index)
        offset = round_index  # shifts the partition boundary each round
        keys = tuple(
            sorted(
                (stride * (position * self._k + j) + offset) % self._r
                for j in range(self._k)
            )
        )
        if len(set(keys)) == self._k:
            return keys
        # Affine collision (only possible when stride*K wraps awkwardly):
        # fall back to the dense block, still disjoint within the round.
        base = (position * self._k + offset) % self._r
        return tuple(sorted((base + j) % self._r for j in range(self._k)))

    def _first_unused_probe(self) -> Optional[Tuple[int, ...]]:
        """Fallback when the affine family runs dry (small R): probe the
        set_id space with a golden-ratio stride so the extra sets spread
        uniformly instead of clustering on low entries."""
        import math

        total = num_key_sets(self._r, self._k)
        step = max(1, int(total * 0.6180339887498949))
        while math.gcd(step, total) != 1:
            step += 1
        cursor = getattr(self, "_probe_cursor", 0)
        for _ in range(min(total, 65536)):
            cursor = (cursor + step) % total
            keys = unrank_lex(cursor, self._r, self._k)
            if keys not in self._used_sets:
                self._probe_cursor = cursor
                return keys
        self._probe_cursor = cursor
        return None

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        # Different affine rounds can occasionally produce the same set;
        # skip such slots while the key space still has unused sets.
        attempts = 0
        max_attempts = 4 * self._sets_per_round + 4
        while True:
            if self._free_slots:
                slot = self._free_slots.pop()
            else:
                slot = self._next_slot
                self._next_slot += 1
            keys = self._keys_for_slot(slot)
            attempts += 1
            if keys not in self._used_sets or attempts >= max_attempts:
                break
        if keys in self._used_sets:
            # The affine family ran dry (it collapses for small R); fall
            # back to a linear scan so sets stay distinct while the key
            # space allows.
            fallback = self._first_unused_probe()
            if fallback is not None:
                keys = fallback
        self._slot_of_process[process_id] = slot
        self._used_sets[keys] = self._used_sets.get(keys, 0) + 1
        return keys

    def _on_release(self, assignment: KeyAssignment) -> None:
        slot = self._slot_of_process.pop(assignment.process_id, None)
        if slot is not None:
            self._free_slots.append(slot)
        count = self._used_sets.get(assignment.keys, 0)
        if count <= 1:
            self._used_sets.pop(assignment.keys, None)
        else:
            self._used_sets[assignment.keys] = count - 1

    def _on_adopt(self, assignment: KeyAssignment) -> None:
        # No slot to claim (the set was picked elsewhere); just mark the
        # set used so local picks avoid it.  _on_release tolerates the
        # missing slot entry.
        self._used_sets[assignment.keys] = self._used_sets.get(assignment.keys, 0) + 1


class BalancedLoadKeyAssigner(KeyAssigner):
    """Greedy least-loaded assignment — a deliberately naive "perfect"
    distribution kept as an ablation baseline.

    Each joining process receives the ``K`` currently least-loaded
    entries (ties by index).  This balances per-entry load exactly, yet
    measures *worse* than the uncoordinated random draw: consecutive
    joiners receive nearly identical sets, and near-duplicate sets are
    covered by a single concurrent message.  The keyspace ablation
    benchmark quantifies the effect; it is the design insight behind
    preferring subset spreading (:class:`PerfectKeyAssigner`) over load
    balancing.
    """

    def __init__(self, r: int, k: int) -> None:
        super().__init__(r, k)
        self._loads = [0] * r
        self._used_sets: Dict[Tuple[int, ...], ProcessId] = {}

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        order = sorted(range(self._r), key=lambda entry: (self._loads[entry], entry))
        keys = tuple(sorted(order[: self._k]))
        if keys in self._used_sets:
            keys = self._perturb(order)
        for entry in keys:
            self._loads[entry] += 1
        self._used_sets[keys] = process_id
        return keys

    def _perturb(self, order: List[int]) -> Tuple[int, ...]:
        # Walk subsets made of low-load entries until an unused one appears.
        # Try swapping each member of the base subset for each later entry.
        base = order[: self._k]
        for out_pos in range(self._k - 1, -1, -1):
            for replacement in order[self._k :]:
                candidate = sorted(base[:out_pos] + base[out_pos + 1 :] + [replacement])
                keys = tuple(candidate)
                if keys not in self._used_sets:
                    return keys
        # Key space effectively exhausted for distinct sets: reuse the base.
        return tuple(sorted(base))

    def _on_release(self, assignment: KeyAssignment) -> None:
        for entry in assignment.keys:
            self._loads[entry] -= 1
        self._used_sets.pop(assignment.keys, None)

    def _on_adopt(self, assignment: KeyAssignment) -> None:
        for entry in assignment.keys:
            self._loads[entry] += 1
        self._used_sets[assignment.keys] = assignment.process_id


class HashKeyAssigner(KeyAssigner):
    """Stable assigner: ``set_id`` derived by hashing the process identity.

    A process that leaves and later rejoins receives the *same* key set,
    which matters for applications that persist state across sessions.
    Uses SHA-256 so the mapping is stable across Python processes (unlike
    the built-in ``hash``).  Collisions are possible exactly as in the
    uncoordinated random regime.
    """

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        digest = hashlib.sha256(repr(process_id).encode("utf-8")).digest()
        set_id = int.from_bytes(digest, "big") % num_key_sets(self._r, self._k)
        return unrank_lex(set_id, self._r, self._k)


class ExplicitKeyAssigner(KeyAssigner):
    """Assigner fed with a fixed mapping of process id to key set.

    Reproduces prescribed scenarios, e.g. the paper's Figure 2 where
    ``f(p_1) = {0, 3}`` and ``f(p_2) = {1, 3}`` jointly cover
    ``f(p_i) = {0, 1}`` and cause a delivery error.
    """

    def __init__(self, r: int, k: int, mapping: Dict[ProcessId, Sequence[int]]) -> None:
        super().__init__(r, k)
        self._mapping: Dict[ProcessId, Tuple[int, ...]] = {}
        for process_id, keys in mapping.items():
            ordered = tuple(sorted(int(entry) for entry in keys))
            if len(ordered) != k:
                raise ConfigurationError(
                    f"explicit key set for {process_id!r} has {len(ordered)} keys, expected {k}"
                )
            if any(not 0 <= entry < r for entry in ordered):
                raise ConfigurationError(
                    f"explicit key set for {process_id!r} outside [0, {r}): {ordered}"
                )
            self._mapping[process_id] = ordered

    def retile(self, new_k: int) -> "KeyAssigner":
        raise ConfigurationError(
            "an explicit assigner prescribes fixed scenarios and cannot "
            "re-tile to a different K"
        )

    def _pick_keys(self, process_id: ProcessId) -> Tuple[int, ...]:
        try:
            return self._mapping[process_id]
        except KeyError:
            raise MembershipError(
                f"no explicit key set declared for process {process_id!r}"
            ) from None


def entry_loads(assigner: KeyAssigner) -> List[int]:
    """Per-entry load: how many live processes hold each vector entry."""
    loads = [0] * assigner.r
    for assignment in assigner.assignments.values():
        for entry in assignment.keys:
            loads[entry] += 1
    return loads


def pairwise_overlap_counts(assigner: KeyAssigner) -> Dict[int, int]:
    """Histogram of pairwise key-set intersection sizes.

    Returns a mapping ``overlap_size -> number_of_pairs`` over all
    unordered pairs of live processes.  With distinct ``set_id`` values the
    paper guarantees no pair reaches overlap ``K``.
    """
    assignments = list(assigner.assignments.values())
    histogram: Dict[int, int] = {}
    for i, first in enumerate(assignments):
        first_keys = set(first.keys)
        for second in assignments[i + 1 :]:
            overlap = len(first_keys.intersection(second.keys))
            histogram[overlap] = histogram.get(overlap, 0) + 1
    return histogram
