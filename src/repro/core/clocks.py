"""Logical clocks for causal ordering: the (n, r, k) family.

The paper frames known clock schemes as points of a single design space
described by a triplet ``(a, b, c)`` — system size, vector size, entries
per process:

* Lamport clock                     ``(n, 1, 1)``
* vector clock (Fidge/Mattern)      ``(n, n, 1)``
* plausible clock (Torres-Rojas)    ``(n, r, 1)``
* **this paper**                    ``(n, r, k)``

All four are provided here as configurations of one generic mechanism,
:class:`EntryVectorClock`, which implements the paper's Algorithm 1
(timestamping a broadcast) and Algorithm 2 (the delivery condition).  A
process ``p_i`` owns a set of entries ``f(p_i)``; sending increments all
owned entries and attaches the vector; a message ``m`` from ``p_j`` is
deliverable at ``p_i`` once::

    forall x in  f(p_j):  V_i[x] >= m.V[x] - 1
    forall x not in f(p_j):  V_i[x] >= m.V[x]

and delivering it increments the ``f(p_j)`` entries of ``V_i``.

Vectors are NumPy ``int64`` arrays: the delivery test is a single
vectorised comparison, which keeps large simulations tractable.  A
:class:`Timestamp` precomputes the *adjusted* threshold vector
(``m.V`` minus one at the sender's keys) when it is created, so the
delivery test at every one of the N receivers is one ``>=``/``all`` pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Iterable, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import ConfigurationError, UnknownProcessError

__all__ = [
    "Timestamp",
    "EntryVectorClock",
    "ProbabilisticCausalClock",
    "PlausibleCausalClock",
    "LamportCausalClock",
    "VectorCausalClock",
    "BloomCausalClock",
    "DynamicVectorClock",
]

ProcessId = Hashable


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True)
class Timestamp:
    """The control information a broadcast message carries.

    Attributes:
        vector: the sender's R-entry vector right after Algorithm 1's
            increment (read-only array; ``m.V`` in the paper).
        sender_keys: the sender's entry set ``f(p_j)`` (ascending tuple).
            Carrying the keys on the message is what lets a receiver apply
            the delivery condition without knowing the membership.
        seq: per-sender sequence number (1-based); used for duplicate
            suppression and by the ground-truth oracle, not by the
            probabilistic delivery condition itself.

    ``adjusted`` (the threshold ``m.V`` with 1 subtracted at
    ``sender_keys`` — the delivery test is ``V_i >= adjusted``
    elementwise) and ``sender_keys_array`` are **lazy**: a timestamp that
    is only relayed, stored, or encoded never pays the two array
    allocations; the first delivery-condition check materialises them
    once and caches the result.
    """

    vector: np.ndarray
    sender_keys: Tuple[int, ...]
    seq: int

    @cached_property
    def sender_keys_array(self) -> np.ndarray:
        """``sender_keys`` as an index array (built on first use)."""
        return _freeze(np.asarray(self.sender_keys, dtype=np.intp))

    @cached_property
    def adjusted(self) -> np.ndarray:
        """Delivery threshold: ``vector`` minus one at the sender's keys."""
        adjusted = self.vector.copy()
        adjusted[self.sender_keys_array] -= 1
        return _freeze(adjusted)

    @property
    def size(self) -> int:
        """Vector size R."""
        return int(self.vector.shape[0])

    def as_tuple(self) -> Tuple[int, ...]:
        """The timestamp vector as a plain tuple of ints."""
        return tuple(int(v) for v in self.vector)

    def overhead_bits(self, bits_per_entry: int = 32) -> int:
        """Wire overhead of this timestamp, in bits.

        Counts the vector entries plus the sender key set (each key needs
        ``ceil(log2 R)`` bits).  Used by the clock-family comparison table.
        """
        if self.size <= 1:
            key_bits = 0
        else:
            key_bits = len(self.sender_keys) * max(1, (self.size - 1).bit_length())
        return self.size * bits_per_entry + key_bits

    def dominates_on(
        self, other: "Timestamp", entries: Union[np.ndarray, Iterable[int]]
    ) -> bool:
        """True when ``self.vector >= other.vector`` on every given entry.

        This runs inside the Algorithm 5 refined-detector check, once
        per recent-list entry on every pre-delivery test.  ``entries``
        may be an index array — e.g. a timestamp's
        ``sender_keys_array`` — which skips the conversion.  Small index
        sets (the K sender keys) take a scalar loop — fancy indexing
        costs more than it saves below ~8 entries — while large sets get
        one vectorised comparison.
        """
        if isinstance(entries, np.ndarray):
            index = entries
        else:
            index = np.fromiter(entries, dtype=np.intp)
        if index.size == 0:
            return True
        if index.size <= 8:
            mine, theirs = self.vector, other.vector
            for entry in index:
                if mine[entry] < theirs[entry]:
                    return False
            return True
        return bool(np.all(self.vector[index] >= other.vector[index]))


class EntryVectorClock:
    """Per-process state of the generic (R, K) causal-ordering mechanism.

    One instance lives at each process.  It is *not* thread-safe: in the
    intended uses (a single-threaded protocol endpoint, or the
    discrete-event simulator) each instance is driven by one event loop.

    Args:
        r: vector size (the paper's ``R``).
        own_keys: this process's entry set ``f(p_i)``; ascending iterable
            of ints in ``[0, R)``.
    """

    def __init__(self, r: int, own_keys: Sequence[int]) -> None:
        if r <= 0:
            raise ConfigurationError(f"vector size R must be positive, got {r}")
        keys = tuple(sorted(int(k) for k in own_keys))
        if not keys:
            raise ConfigurationError("a clock needs at least one own entry")
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate own keys: {keys}")
        if keys[0] < 0 or keys[-1] >= r:
            raise ConfigurationError(f"own keys {keys} outside [0, {r})")
        self._r = r
        self._own_keys = keys
        self._own_keys_array = np.asarray(keys, dtype=np.intp)
        self._vector = np.zeros(r, dtype=np.int64)
        # Reused by every is_deliverable() call: the delivery condition is
        # evaluated once per receive and once per pending-queue recheck,
        # so the comparison result must not allocate each time.
        self._compare_buffer = np.empty(r, dtype=bool)
        self._send_seq = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def r(self) -> int:
        """Vector size R."""
        return self._r

    @property
    def k(self) -> int:
        """Number of own entries K."""
        return len(self._own_keys)

    @property
    def own_keys(self) -> Tuple[int, ...]:
        """This process's entry set ``f(p_i)``."""
        return self._own_keys

    @property
    def send_count(self) -> int:
        """How many messages this clock has timestamped."""
        return self._send_seq

    def snapshot(self) -> Tuple[int, ...]:
        """Current local vector as a tuple (for assertions and debugging)."""
        return tuple(int(v) for v in self._vector)

    def initialize_from(self, vector: Sequence[int]) -> None:
        """Bootstrap the local vector from a state transfer.

        A process joining a running system cannot start from zeros: every
        future message's timestamp embeds the history of messages sent
        before the join, which the newcomer will never receive.  Real
        deployments ship a state snapshot at join time; the simulator
        models it by seeding the clock with the cumulative vector of all
        messages sent so far.  Only valid before this clock has sent or
        delivered anything.
        """
        values = np.asarray(vector, dtype=np.int64)
        if values.shape != self._vector.shape:
            raise ConfigurationError(
                f"initial vector has shape {values.shape}, expected {self._vector.shape}"
            )
        if self._send_seq or self._vector.any():
            raise ConfigurationError("initialize_from() requires a pristine clock")
        if (values < 0).any():
            raise ConfigurationError("initial vector entries must be >= 0")
        self._vector[:] = values

    def restore_state(self, vector: Sequence[int], send_count: int) -> None:
        """Restore persisted clock state after a crash (journal replay).

        Unlike :meth:`initialize_from` — which models a *joiner* adopting
        someone else's knowledge — this restores the process's **own**
        pre-crash state, including the send counter, so a restarted node
        never reuses a ``(sender, seq)`` message id and its vector again
        satisfies every delivery it performed before the crash.  Only
        valid on a pristine clock (the recovery path runs before any
        traffic is processed).
        """
        values = np.asarray(vector, dtype=np.int64)
        if values.shape != self._vector.shape:
            raise ConfigurationError(
                f"restored vector has shape {values.shape}, expected {self._vector.shape}"
            )
        if self._send_seq or self._vector.any():
            raise ConfigurationError("restore_state() requires a pristine clock")
        if (values < 0).any():
            raise ConfigurationError("restored vector entries must be >= 0")
        if send_count < 0:
            raise ConfigurationError(f"send_count must be >= 0, got {send_count}")
        self._vector[:] = values
        self._send_seq = int(send_count)

    def vector_view(self) -> np.ndarray:
        """Read-only view of the local vector (no copy)."""
        view = self._vector.view()
        view.flags.writeable = False
        return view

    def rekey(self, new_keys: Sequence[int]) -> Tuple[int, ...]:
        """Switch this process's entry set ``f(p_i)`` to ``new_keys``.

        The mechanism tolerates online re-dimensioning: every message
        carries its sender's keys, so receivers never need to know the
        current assignment, and the delivery condition remains live
        across the switch (the non-sender-entry clause forces receivers
        to catch up with the pre-switch history).  This is what makes an
        *adaptive K* possible — a node observing a concurrency different
        from the estimate can re-draw a key set sized by
        ``K = ln2 · R / X_measured``.  Returns the previous key set.
        """
        keys = tuple(sorted(int(k) for k in new_keys))
        if not keys:
            raise ConfigurationError("a clock needs at least one own entry")
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate own keys: {keys}")
        if keys[0] < 0 or keys[-1] >= self._r:
            raise ConfigurationError(f"own keys {keys} outside [0, {self._r})")
        previous = self._own_keys
        self._own_keys = keys
        self._own_keys_array = np.asarray(keys, dtype=np.intp)
        return previous

    # ------------------------------------------------------------------
    # Algorithm 1 — timestamping a broadcast
    # ------------------------------------------------------------------

    def prepare_send(self) -> Timestamp:
        """Increment the own entries and return the timestamp to attach.

        Implements Algorithm 1: ``forall x in f(p_i): V_i[x] += 1`` then
        copy ``V_i`` onto the message.
        """
        self._vector[self._own_keys_array] += 1
        self._send_seq += 1
        return Timestamp(
            vector=_freeze(self._vector.copy()),
            sender_keys=self._own_keys,
            seq=self._send_seq,
        )

    # ------------------------------------------------------------------
    # Algorithm 2 — delivery condition and delivery bookkeeping
    # ------------------------------------------------------------------

    def is_deliverable(self, timestamp: Timestamp) -> bool:
        """Evaluate Algorithm 2's wait condition for a received message.

        True when every entry of the local vector has reached the
        message's adjusted threshold: at the sender's keys the local value
        may lag by one (that gap is the message itself), everywhere else
        it must have caught up with everything the sender had delivered.
        """
        self._check_compatible(timestamp)
        np.greater_equal(self._vector, timestamp.adjusted, out=self._compare_buffer)
        return bool(self._compare_buffer.all())

    def record_delivery(self, timestamp: Timestamp) -> None:
        """Account for a delivery: increment the sender's entries locally.

        Must be called exactly once per delivered message, after
        :meth:`is_deliverable` returned True (the protocol endpoint
        enforces this ordering; the clock itself does not re-check, so the
        simulator can also use it to *force* an out-of-order delivery when
        modelling a violating configuration).
        """
        self._check_compatible(timestamp)
        keys = timestamp.sender_keys
        if len(keys) <= 8:
            # K is small (the paper's optimum is K = ln2·R/X, single
            # digits in every studied regime); scalar increments beat a
            # fancy-indexing dispatch and allocate nothing.
            vector = self._vector
            for key in keys:
                vector[key] += 1
        else:
            self._vector[timestamp.sender_keys_array] += 1

    def lag(self, timestamp: Timestamp) -> int:
        """Total missing count: how far the local vector is below the
        message's adjusted threshold, summed over entries.

        0 means deliverable; larger values indicate more missing causal
        predecessors.  Used by diagnostics and by the pending-queue
        ordering heuristic.
        """
        self._check_compatible(timestamp)
        deficit = timestamp.adjusted - self._vector
        return int(deficit[deficit > 0].sum())

    def _check_compatible(self, timestamp: Timestamp) -> None:
        if timestamp.size != self._r:
            raise ConfigurationError(
                f"timestamp size {timestamp.size} incompatible with clock size {self._r}"
            )


class ProbabilisticCausalClock(EntryVectorClock):
    """The paper's contribution: the ``(n, r, k)`` clock with ``k > 1``.

    Semantically identical to :class:`EntryVectorClock`; the subclass
    exists to name the configuration and validate that it is the genuinely
    probabilistic regime (``1 < K < R`` — the interior of the family where
    the paper shows the optimum lies).
    """

    def __init__(self, r: int, own_keys: Sequence[int]) -> None:
        super().__init__(r, own_keys)
        if not 1 <= self.k <= r:
            raise ConfigurationError(f"need 1 <= K <= R, got K={self.k}, R={r}")


class PlausibleCausalClock(EntryVectorClock):
    """Torres-Rojas & Ahamad's plausible clock: the ``(n, r, 1)`` point.

    Each process owns exactly one of ``r`` entries, several processes per
    entry.  Equivalent to the paper's scheme with ``K = 1``.
    """

    def __init__(self, r: int, own_entry: int) -> None:
        super().__init__(r, (own_entry,))


class LamportCausalClock(EntryVectorClock):
    """Lamport's scalar clock as the degenerate ``(n, 1, 1)`` point.

    A single shared entry: every process increments the same counter on
    send, and the delivery condition forces near-total synchronisation
    (a message with scalar timestamp ``t`` waits until the local counter
    reaches ``t - 1``).  Included as the extreme baseline the paper cites.
    """

    def __init__(self) -> None:
        super().__init__(1, (0,))


class VectorCausalClock(EntryVectorClock):
    """Exact vector clock: the ``(n, n, 1)`` point with per-process entries.

    With ``R = N`` and ``f(p_i) = {i}`` the generic delivery condition is
    the classical causal-broadcast rule (Birman–Schiper–Stephenson) and no
    violation is possible.  Requires static membership with dense process
    indices; see :class:`DynamicVectorClock` for the churn-tolerant
    (but unbounded) variant.
    """

    def __init__(self, n: int, own_index: int) -> None:
        if not 0 <= own_index < n:
            raise ConfigurationError(f"own index {own_index} outside [0, {n})")
        super().__init__(n, (own_index,))


class BloomCausalClock(EntryVectorClock):
    """Ramabaja's Bloom clock as a member of the delivery framework.

    An ``m``-counter vector where every *event* increments ``h`` cells
    chosen by hashing the event — the per-event analogue of the paper's
    static per-process key set ``f(p_i)``.  Framed in the (n, r, k)
    design space this is the ``(n, m, h)`` point with ``f`` ranging over
    *messages* instead of processes: message ``(owner, seq)`` draws the
    ``h`` distinct cells ``f(owner, seq)`` from a keyed hash, stable
    across processes, so receivers apply the unchanged Algorithm 2
    delivery condition to whatever key set the timestamp carries.

    The comparison-error analysis is the textbook Bloom-filter
    false-positive curve (:func:`repro.core.theory.p_fp`), which is the
    *same covering computation* as the paper's ``P_err(R, K, X)`` — the
    families differ only in whether the ``K``/``h`` cells are drawn once
    per process or once per event.  Per-event keys decorrelate
    consecutive messages of one sender (a covered entry no longer stays
    covered for that sender's whole stream), at the cost of shipping a
    fresh key list on every message and losing the static-key delta wire
    encoding (see ``per_message_keys`` in :mod:`repro.core.registry`).

    Args:
        m: vector size (number of Bloom counters; the family's ``R``).
        hashes: cells incremented per event (the Bloom ``h``; plays K).
        owner: this process's identity — part of the hash preimage, so
            two processes never share an event's key set by accident.
        salt: keyspace salt for disjoint deployments (mirrors
            ``keyspace_seed``).
    """

    def __init__(
        self, m: int, hashes: int = 4, owner: ProcessId = "", salt: int = 0
    ) -> None:
        if hashes <= 0:
            raise ConfigurationError(f"hash count must be positive, got {hashes}")
        if hashes > m:
            raise ConfigurationError(f"need hashes <= m, got hashes={hashes}, m={m}")
        self._hashes = hashes
        self._owner_token = repr(owner)
        self._salt = salt
        self._m = m  # needed by _event_keys before the base class sets _r
        super().__init__(m, self._event_keys(1))

    @property
    def hashes(self) -> int:
        """Cells incremented per event (the Bloom ``h``)."""
        return self._hashes

    def _event_keys(self, seq: int) -> Tuple[int, ...]:
        """The ``h`` distinct cells of this process's ``seq``-th event.

        SHA-256 over ``(salt, owner, seq, draw)`` — like
        :class:`~repro.core.keyspace.HashKeyAssigner`, a keyed hash
        rather than the builtin ``hash`` so the draw is identical in
        every process regardless of ``PYTHONHASHSEED``.
        """
        keys: set = set()
        draw = 0
        while len(keys) < self._hashes:
            preimage = f"{self._salt}|{self._owner_token}|{seq}|{draw}".encode("utf-8")
            digest = hashlib.sha256(preimage).digest()
            keys.add(int.from_bytes(digest[:8], "big") % self._m)
            draw += 1
        return tuple(sorted(keys))

    def prepare_send(self) -> Timestamp:
        """Algorithm 1 with a per-event key set: re-draw ``f`` then stamp."""
        self.rekey(self._event_keys(self._send_seq + 1))
        return super().prepare_send()


class DynamicVectorClock:
    """A map-based exact vector clock that tolerates joins.

    Entries are keyed by process identity rather than by a dense index, so
    processes may join at any time without renumbering.  This is the
    classical alternative the paper argues against for large dynamic
    systems: its timestamps grow with the number of processes ever seen.
    It serves as the perfect-ordering baseline in benchmarks and as the
    ground-truth component of the simulator's oracle for churn scenarios.

    The public operations mirror :class:`EntryVectorClock` but timestamps
    are plain dicts.
    """

    def __init__(self, own_id: ProcessId) -> None:
        self._own_id = own_id
        self._vector: dict = {own_id: 0}
        self._send_seq = 0

    @property
    def own_id(self) -> ProcessId:
        """This process's identity (its map key)."""
        return self._own_id

    @property
    def send_count(self) -> int:
        """How many messages this clock has timestamped."""
        return self._send_seq

    def snapshot(self) -> dict:
        """Copy of the local vector (process id -> count)."""
        return dict(self._vector)

    def prepare_send(self) -> dict:
        """Increment the own entry and return the timestamp dict."""
        self._vector[self._own_id] = self._vector.get(self._own_id, 0) + 1
        self._send_seq += 1
        return dict(self._vector)

    def is_deliverable(self, timestamp: dict, sender_id: ProcessId) -> bool:
        """Classical causal delivery test for a message from ``sender_id``."""
        if sender_id not in timestamp:
            raise UnknownProcessError(sender_id)
        for process_id, value in timestamp.items():
            threshold = value - 1 if process_id == sender_id else value
            if self._vector.get(process_id, 0) < threshold:
                return False
        return True

    def record_delivery(self, timestamp: dict, sender_id: ProcessId) -> None:
        """Account for delivering one message from ``sender_id``."""
        self._vector[sender_id] = self._vector.get(sender_id, 0) + 1

    def merge(self, timestamp: dict) -> None:
        """Entrywise max-merge (used by the oracle after a wrong delivery,
        per Section 5.4.1 of the paper)."""
        for process_id, value in timestamp.items():
            if value > self._vector.get(process_id, 0):
                self._vector[process_id] = value
