"""Core library: the paper's probabilistic causal ordering mechanism.

This subpackage is deployment-ready and simulator-independent: logical
clocks of the (n, r, k) family, key-space assignment (Algorithm 3),
the broadcast/delivery protocol machine (Algorithms 1–2), the delivery
error detectors (Algorithms 4–5), and the closed-form error analysis of
Section 5.3.
"""

from repro.core.clocks import (
    BloomCausalClock,
    DynamicVectorClock,
    EntryVectorClock,
    LamportCausalClock,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    Timestamp,
    VectorCausalClock,
)
from repro.core.combinatorics import (
    binomial,
    iter_combinations_lex,
    num_key_sets,
    rank_colex,
    rank_lex,
    unrank_colex,
    unrank_lex,
)
from repro.core.detector import (
    BasicAlertDetector,
    DeliveryErrorDetector,
    DetectorStats,
    NullDetector,
    RefinedAlertDetector,
)
from repro.core.errors import (
    CausalityViolationError,
    ConfigurationError,
    DuplicateMessageError,
    MembershipError,
    RankOutOfRangeError,
    ReproError,
    SimulationError,
    UnknownProcessError,
)
from repro.core.matrix import (
    MatrixClockEndpoint,
    MatrixTimestamp,
    PointToPointMessage,
)
from repro.core.keyspace import (
    BalancedLoadKeyAssigner,
    ExplicitKeyAssigner,
    HashKeyAssigner,
    KeyAssigner,
    KeyAssignment,
    PerfectKeyAssigner,
    RandomKeyAssigner,
    SequentialKeyAssigner,
    entry_loads,
    pairwise_overlap_counts,
)
from repro.core.pending import HybridBuffer, PendingBuffer
from repro.core.protocol import (
    CausalBroadcastEndpoint,
    DeliveryRecord,
    EndpointStats,
    Message,
)
from repro.core.registry import (
    ClockBuildContext,
    ClockSpec,
    DetectorSpec,
    EngineSpec,
    clock_schemes,
    detector_names,
    engine_names,
    get_clock_spec,
    get_detector_spec,
    get_engine_spec,
    register_clock,
    register_detector,
    register_engine,
    scheme_id_of,
    scheme_name_of,
    unregister_clock,
    unregister_detector,
    unregister_engine,
)
from repro.core.theory import (
    expected_concurrency,
    optimal_k,
    optimal_k_int,
    p_entry_covered,
    p_error,
    p_fp,
    p_reorder_same_sender,
    p_violation_bound,
    predicted_error_series,
    timestamp_overhead_bits,
)

__all__ = [
    # clocks
    "Timestamp",
    "EntryVectorClock",
    "ProbabilisticCausalClock",
    "PlausibleCausalClock",
    "LamportCausalClock",
    "VectorCausalClock",
    "DynamicVectorClock",
    "BloomCausalClock",
    # combinatorics
    "binomial",
    "num_key_sets",
    "unrank_lex",
    "rank_lex",
    "unrank_colex",
    "rank_colex",
    "iter_combinations_lex",
    # keyspace
    "KeyAssignment",
    "KeyAssigner",
    "RandomKeyAssigner",
    "SequentialKeyAssigner",
    "PerfectKeyAssigner",
    "BalancedLoadKeyAssigner",
    "HashKeyAssigner",
    "ExplicitKeyAssigner",
    "entry_loads",
    "pairwise_overlap_counts",
    # point-to-point (RST matrix clocks)
    "MatrixTimestamp",
    "PointToPointMessage",
    "MatrixClockEndpoint",
    # pending buffers
    "PendingBuffer",
    "HybridBuffer",
    # protocol
    "Message",
    "DeliveryRecord",
    "EndpointStats",
    "CausalBroadcastEndpoint",
    # registry (plugin surface)
    "ClockBuildContext",
    "ClockSpec",
    "EngineSpec",
    "DetectorSpec",
    "register_clock",
    "register_engine",
    "register_detector",
    "unregister_clock",
    "unregister_engine",
    "unregister_detector",
    "get_clock_spec",
    "get_engine_spec",
    "get_detector_spec",
    "clock_schemes",
    "engine_names",
    "detector_names",
    "scheme_id_of",
    "scheme_name_of",
    # detectors
    "DeliveryErrorDetector",
    "NullDetector",
    "BasicAlertDetector",
    "RefinedAlertDetector",
    "DetectorStats",
    # theory
    "p_entry_covered",
    "p_error",
    "p_fp",
    "optimal_k",
    "optimal_k_int",
    "predicted_error_series",
    "expected_concurrency",
    "p_reorder_same_sender",
    "p_violation_bound",
    "timestamp_overhead_bits",
    # errors
    "ReproError",
    "ConfigurationError",
    "RankOutOfRangeError",
    "DuplicateMessageError",
    "UnknownProcessError",
    "CausalityViolationError",
    "SimulationError",
    "MembershipError",
]
