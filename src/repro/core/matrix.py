"""Matrix clocks: causal order for point-to-point messages (RST).

The paper's related work cites Raynal, Schiper and Toueg's "simple way to
implement" causal ordering for *point-to-point* communication with a
matrix of counters (its ref [11]).  This module provides that algorithm
as a complete, tested substrate — both as a baseline for comparisons and
because real systems mix broadcast with direct messages.

State at process ``i``: an ``n × n`` matrix ``M`` where ``M[a][b]`` is
the number of messages sent by ``a`` to ``b``, to ``i``'s knowledge.

* **send** ``i → j``: increment ``M[i][j]``, attach a copy ``W`` of the
  matrix to the message.
* **deliver** at ``j`` of a message from ``i`` carrying ``W``: wait until
  ``W[i][j] == M[i][j] + 1`` (FIFO from the sender) and
  ``W[k][j] <= M[k][j]`` for every ``k ≠ i`` (everything the sender knew
  had been sent to ``j`` has arrived); then ``M := max(M, W)``.

The cost the paper is escaping is explicit here: ``n²`` counters per
process and per message — compare ``timestamp_overhead_bits(R, K)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, List, Tuple

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["MatrixTimestamp", "PointToPointMessage", "MatrixClockEndpoint"]

ProcessId = Hashable


@dataclass(frozen=True)
class MatrixTimestamp:
    """The matrix snapshot a point-to-point message carries."""

    matrix: np.ndarray

    @property
    def n(self) -> int:
        """System size (the matrix is n x n)."""
        return int(self.matrix.shape[0])


@dataclass(frozen=True)
class PointToPointMessage:
    """One direct message with its control information."""

    sender: int
    destination: int
    seq: int
    timestamp: MatrixTimestamp
    payload: Any = None

    @property
    def message_id(self) -> Tuple[int, int, int]:
        """Unique id ``(sender, destination, seq)``."""
        return (self.sender, self.destination, self.seq)


class MatrixClockEndpoint:
    """Per-process state of the RST point-to-point causal order.

    Processes are dense indices ``0..n-1`` (matrix clocks inherently need
    to know the full membership — the restriction the paper's mechanism
    lifts for the broadcast case).
    """

    def __init__(self, n: int, own_index: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not 0 <= own_index < n:
            raise ConfigurationError(f"own index {own_index} outside [0, {n})")
        self._n = n
        self._own = own_index
        self._matrix = np.zeros((n, n), dtype=np.int64)
        self._pending: List[PointToPointMessage] = []
        self._sent = 0
        self.delivered: List[PointToPointMessage] = []

    @property
    def own_index(self) -> int:
        """This process's dense index."""
        return self._own

    @property
    def pending_count(self) -> int:
        """Messages held back by the delivery condition."""
        return len(self._pending)

    def matrix_snapshot(self) -> np.ndarray:
        """Copy of the local matrix (for assertions and debugging)."""
        return self._matrix.copy()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, destination: int, payload: Any = None) -> PointToPointMessage:
        """Produce a causally timestamped message for ``destination``."""
        if not 0 <= destination < self._n:
            raise ConfigurationError(f"destination {destination} outside [0, {self._n})")
        if destination == self._own:
            raise ConfigurationError("sending to self is not meaningful here")
        self._matrix[self._own, destination] += 1
        self._sent += 1
        snapshot = self._matrix.copy()
        snapshot.flags.writeable = False
        return PointToPointMessage(
            sender=self._own,
            destination=destination,
            seq=int(self._matrix[self._own, destination]),
            timestamp=MatrixTimestamp(matrix=snapshot),
            payload=payload,
        )

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def is_deliverable(self, message: PointToPointMessage) -> bool:
        """The RST delivery condition for a message addressed to us."""
        self._check_addressed(message)
        w = message.timestamp.matrix
        i, j = message.sender, self._own
        if w[i, j] != self._matrix[i, j] + 1:
            return False
        column_w = w[:, j].copy()
        column_w[i] = 0  # the sender's own entry is handled above
        column_m = self._matrix[:, j].copy()
        column_m[i] = 0
        return bool(np.all(column_w <= column_m))

    def on_receive(self, message: PointToPointMessage) -> List[PointToPointMessage]:
        """Process an arrival; returns the messages delivered (cascade)."""
        self._check_addressed(message)
        delivered: List[PointToPointMessage] = []
        if self.is_deliverable(message):
            self._deliver(message)
            delivered.append(message)
            delivered.extend(self._drain())
        else:
            self._pending.append(message)
        return delivered

    def _drain(self) -> List[PointToPointMessage]:
        delivered: List[PointToPointMessage] = []
        progressed = True
        while progressed and self._pending:
            progressed = False
            still: List[PointToPointMessage] = []
            for queued in self._pending:
                if self.is_deliverable(queued):
                    self._deliver(queued)
                    delivered.append(queued)
                    progressed = True
                else:
                    still.append(queued)
            self._pending = still
        return delivered

    def _deliver(self, message: PointToPointMessage) -> None:
        np.maximum(self._matrix, message.timestamp.matrix, out=self._matrix)
        self.delivered.append(message)

    def _check_addressed(self, message: PointToPointMessage) -> None:
        if message.timestamp.n != self._n:
            raise ConfigurationError(
                f"matrix size {message.timestamp.n} incompatible with n={self._n}"
            )
        if message.destination != self._own:
            raise ConfigurationError(
                f"message addressed to {message.destination}, this is {self._own}"
            )

    def overhead_bits(self, bits_per_entry: int = 32) -> int:
        """Wire cost of one timestamp: the full n x n matrix."""
        return self._n * self._n * bits_per_entry
