"""Wire format for messages and timestamps.

A deployable causal broadcast needs its control information on the wire;
this module defines a compact, versioned binary encoding used by the
:mod:`repro.net` transports and available to any integrator.

Layout (little-endian)::

    magic   2B  b"PC"
    version 1B  (currently 1)
    flags   1B  bit0: entries are LEB128 varints (else fixed uint32)
    sender  u16 length + UTF-8 bytes
    seq     u64
    K       u16, then K x u32 sender keys
    R       u32, then R entries (u32 each, or varints)
    payload u32 length + bytes

Entry counters are non-negative and usually small, so the varint mode
(default) shrinks the dominant cost — the R entries — to ~1 byte each in
steady state, realising the paper's "few integer timestamps" on the wire.
Payload bytes are produced by a pluggable :class:`PayloadCodec`; the
default encodes JSON, which covers the CRDT operation payloads used in
the examples (tuples become lists and are normalised back).

Alongside the message encoding, this module defines the **reliability
frames** spoken by :class:`repro.net.session.ReliableSession`: a DATA
frame carrying an opaque payload under a per-link sequence number, ACK
(cumulative + selective), NACK (explicit missing sequence numbers),
DIGEST (per-sender ``(sender, seq)`` frontiers for anti-entropy) and
HEARTBEAT (a liveness beacon for the failure detector).  Frames use a
distinct magic (``b"PF"``) so a receiver can dispatch between raw
messages and session frames on the first two bytes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple, Union

import numpy as np

from repro.core.clocks import Timestamp
from repro.core.errors import ReproError
from repro.core.protocol import Message

__all__ = [
    "CodecError",
    "PayloadCodec",
    "JsonPayloadCodec",
    "RawBytesPayloadCodec",
    "MessageCodec",
    "encode_varint",
    "decode_varint",
    "DataFrame",
    "AckFrame",
    "NackFrame",
    "DigestFrame",
    "HeartbeatFrame",
    "Frame",
    "FrameCodec",
]

_MAGIC = b"PC"
_VERSION = 1
_FLAG_VARINT = 0x01
_MAX_U32 = 0xFFFFFFFF


class CodecError(ReproError):
    """Raised on malformed wire data or unencodable payloads."""


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


class PayloadCodec:
    """Turns application payloads into bytes and back."""

    def encode(self, payload: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError


class JsonPayloadCodec(PayloadCodec):
    """Default payload codec: JSON with tuple-normalisation.

    JSON has no tuple type; on decode, lists are converted back to tuples
    recursively so that CRDT operations (which use tuples as tags and ids)
    round-trip structurally.  ``None`` payloads encode to zero bytes.
    """

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        try:
            return json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"payload is not JSON-encodable: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        if not data:
            return None
        try:
            return _tuplify(json.loads(data.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"malformed JSON payload: {exc}") from exc


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


class RawBytesPayloadCodec(PayloadCodec):
    """Pass-through codec for applications that frame their own bytes."""

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError(f"raw codec needs bytes, got {type(payload).__name__}")
        return bytes(payload)

    def decode(self, data: bytes) -> Any:
        return data


class MessageCodec:
    """Encodes/decodes whole :class:`~repro.core.protocol.Message` objects.

    Args:
        payload_codec: application payload serialisation (JSON by default).
        varint_entries: LEB128-compress the R entries (default True).
    """

    def __init__(
        self,
        payload_codec: PayloadCodec = None,
        varint_entries: bool = True,
    ) -> None:
        self._payload_codec = payload_codec if payload_codec is not None else JsonPayloadCodec()
        self._varint = varint_entries

    def encode(self, message: Message) -> bytes:
        sender_bytes = str(message.sender).encode("utf-8")
        if len(sender_bytes) > 0xFFFF:
            raise CodecError("sender id longer than 65535 bytes")
        timestamp = message.timestamp
        keys = timestamp.sender_keys
        if len(keys) > 0xFFFF:
            raise CodecError("more than 65535 sender keys")
        if keys and (min(keys) < 0 or max(keys) > _MAX_U32):
            raise CodecError(f"sender keys outside uint32 wire range: {keys}")
        flags = _FLAG_VARINT if self._varint else 0

        parts = [
            _MAGIC,
            struct.pack("<BB", _VERSION, flags),
            struct.pack("<H", len(sender_bytes)),
            sender_bytes,
            struct.pack("<Q", message.seq),
            struct.pack("<H", len(keys)),
            struct.pack(f"<{len(keys)}I", *keys) if keys else b"",
            struct.pack("<I", timestamp.size),
        ]
        entries = [int(v) for v in timestamp.vector]
        if entries and min(entries) < 0:
            raise CodecError(
                f"negative vector entry in message {message.message_id}: "
                "clock entries are counters and must be >= 0"
            )
        if self._varint:
            parts.extend(encode_varint(v) for v in entries)
        else:
            # Fixed-width entries ride in uint32 slots; a long-running
            # node whose counters outgrow them must fail loudly here, not
            # with a struct.error deep in the pack call (or, worse, a
            # silent truncation on a permissive platform).
            high = max(entries, default=0)
            if high > _MAX_U32:
                raise CodecError(
                    f"vector entry {high} exceeds the uint32 wire range of "
                    "fixed-width encoding; use varint_entries=True (default) "
                    "for counters beyond 2**32-1"
                )
            parts.append(struct.pack(f"<{len(entries)}I", *entries))
        payload_bytes = self._payload_codec.encode(message.payload)
        parts.append(struct.pack("<I", len(payload_bytes)))
        parts.append(payload_bytes)
        return b"".join(parts)

    def decode(self, data: bytes) -> Message:
        if len(data) < 4 or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        version, flags = struct.unpack_from("<BB", data, 2)
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        varint = bool(flags & _FLAG_VARINT)
        offset = 4
        try:
            (sender_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            sender = data[offset : offset + sender_len].decode("utf-8")
            if len(data) < offset + sender_len:
                raise CodecError("truncated sender")
            offset += sender_len
            (seq,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            (key_count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            keys = struct.unpack_from(f"<{key_count}I", data, offset)
            offset += 4 * key_count
            (r,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if varint:
                entries = []
                for _ in range(r):
                    value, offset = decode_varint(data, offset)
                    entries.append(value)
            else:
                entries = list(struct.unpack_from(f"<{r}I", data, offset))
                offset += 4 * r
            (payload_len,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if len(data) < offset + payload_len:
                raise CodecError("truncated payload")
            payload = self._payload_codec.decode(data[offset : offset + payload_len])
            offset += payload_len
        except struct.error as exc:
            raise CodecError(f"truncated message: {exc}") from exc

        vector = np.asarray(entries, dtype=np.int64)
        vector.flags.writeable = False
        timestamp = Timestamp(vector=vector, sender_keys=tuple(int(k) for k in keys), seq=seq)
        return Message(sender=sender, seq=seq, timestamp=timestamp, payload=payload)

    def encoded_size(self, message: Message) -> int:
        """Wire size in bytes (for overhead accounting)."""
        return len(self.encode(message))


# ----------------------------------------------------------------------
# Reliability frames (ReliableSession wire format)
# ----------------------------------------------------------------------

_FRAME_MAGIC = b"PF"
_FRAME_VERSION = 1
_TYPE_DATA = 1
_TYPE_ACK = 2
_TYPE_NACK = 3
_TYPE_DIGEST = 4
_TYPE_HEARTBEAT = 5

_MAX_SACK = 64
_MAX_NACK = 64


@dataclass(frozen=True)
class DataFrame:
    """A payload under a per-link sequence number (1-based, per peer)."""

    seq: int
    payload: bytes


@dataclass(frozen=True)
class AckFrame:
    """Cumulative + selective acknowledgement.

    Attributes:
        cumulative: every link seq ``<= cumulative`` has been received.
        sacks: ascending tuple of seqs ``> cumulative`` received out of
            order (capped at 64 on the wire).
    """

    cumulative: int
    sacks: Tuple[int, ...] = ()


@dataclass(frozen=True)
class NackFrame:
    """Explicit request to retransmit the listed link seqs (ascending)."""

    missing: Tuple[int, ...]


@dataclass(frozen=True)
class DigestFrame:
    """Anti-entropy digest: per-sender ``(sender, seq)`` frontiers.

    ``frontiers`` maps a sender id to ``(contiguous, extras)``: every seq
    ``<= contiguous`` of that sender is known, plus the ascending
    ``extras`` beyond it.  A peer receiving the digest re-sends whatever
    it holds that the digest does not cover.
    """

    frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)


@dataclass(frozen=True)
class HeartbeatFrame:
    """Liveness beacon: proof the sender is up even when it has no data.

    ``count`` is a per-sender monotone counter; the failure detector only
    cares that *something* arrived, but the counter makes heartbeat loss
    observable in packet captures.  Heartbeats are fire-and-forget: never
    acked, never retransmitted.
    """

    count: int


Frame = Union[DataFrame, AckFrame, NackFrame, DigestFrame, HeartbeatFrame]


def _encode_ascending(values: Tuple[int, ...], base: int) -> bytes:
    """Delta-encode an ascending sequence as varints (first delta from base)."""
    parts = [struct.pack("<H", len(values))]
    previous = base
    for value in values:
        if value <= previous:
            raise CodecError(f"sequence not strictly ascending above {base}: {values}")
        parts.append(encode_varint(value - previous))
        previous = value
    return b"".join(parts)


def _decode_ascending(data: bytes, offset: int, base: int) -> Tuple[Tuple[int, ...], int]:
    (count,) = struct.unpack_from("<H", data, offset)
    offset += 2
    values = []
    previous = base
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        if delta == 0:
            raise CodecError("zero delta in ascending sequence")
        previous += delta
        values.append(previous)
    return tuple(values), offset


class FrameCodec:
    """Encodes/decodes the session frames (DATA/ACK/NACK/DIGEST/HEARTBEAT).

    Stateless and symmetric; all frames start with ``b"PF"`` + version +
    type byte, which keeps them distinguishable from message datagrams
    (``b"PC"``) at the first two bytes — see :func:`FrameCodec.is_frame`.
    """

    @staticmethod
    def is_frame(data: bytes) -> bool:
        """True when ``data`` looks like a session frame (magic check)."""
        return len(data) >= 4 and data[:2] == _FRAME_MAGIC

    def encode(self, frame: Frame) -> bytes:
        header = _FRAME_MAGIC + struct.pack("<B", _FRAME_VERSION)
        if isinstance(frame, DataFrame):
            if frame.seq < 0:
                raise CodecError(f"negative link seq {frame.seq}")
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_DATA),
                    struct.pack("<Q", frame.seq),
                    struct.pack("<I", len(frame.payload)),
                    frame.payload,
                ]
            )
        if isinstance(frame, AckFrame):
            sacks = tuple(frame.sacks)[:_MAX_SACK]
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_ACK),
                    struct.pack("<Q", frame.cumulative),
                    _encode_ascending(sacks, frame.cumulative),
                ]
            )
        if isinstance(frame, NackFrame):
            missing = tuple(frame.missing)[:_MAX_NACK]
            if not missing:
                raise CodecError("a NACK must list at least one seq")
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_NACK),
                    struct.pack("<Q", missing[0]),
                    _encode_ascending(missing[1:], missing[0]),
                ]
            )
        if isinstance(frame, DigestFrame):
            if len(frame.frontiers) > 0xFFFF:
                raise CodecError("digest covers more than 65535 senders")
            parts = [header, struct.pack("<B", _TYPE_DIGEST)]
            parts.append(struct.pack("<H", len(frame.frontiers)))
            for sender in sorted(frame.frontiers):
                contiguous, extras = frame.frontiers[sender]
                sender_bytes = str(sender).encode("utf-8")
                if len(sender_bytes) > 0xFFFF:
                    raise CodecError("sender id longer than 65535 bytes")
                parts.append(struct.pack("<H", len(sender_bytes)))
                parts.append(sender_bytes)
                parts.append(struct.pack("<Q", contiguous))
                parts.append(_encode_ascending(tuple(extras), contiguous))
            return b"".join(parts)
        if isinstance(frame, HeartbeatFrame):
            if frame.count < 0:
                raise CodecError(f"negative heartbeat count {frame.count}")
            return b"".join(
                [header, struct.pack("<B", _TYPE_HEARTBEAT), struct.pack("<Q", frame.count)]
            )
        raise CodecError(f"not a frame: {type(frame).__name__}")

    def decode(self, data: bytes) -> Frame:
        if not self.is_frame(data):
            raise CodecError("bad frame magic")
        version, frame_type = struct.unpack_from("<BB", data, 2)
        if version != _FRAME_VERSION:
            raise CodecError(f"unsupported frame version {version}")
        offset = 4
        try:
            if frame_type == _TYPE_DATA:
                (seq,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                if len(data) < offset + length:
                    raise CodecError("truncated DATA payload")
                return DataFrame(seq=seq, payload=data[offset : offset + length])
            if frame_type == _TYPE_ACK:
                (cumulative,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                sacks, offset = _decode_ascending(data, offset, cumulative)
                return AckFrame(cumulative=cumulative, sacks=sacks)
            if frame_type == _TYPE_NACK:
                (first,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                rest, offset = _decode_ascending(data, offset, first)
                return NackFrame(missing=(first,) + rest)
            if frame_type == _TYPE_DIGEST:
                (count,) = struct.unpack_from("<H", data, offset)
                offset += 2
                frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
                for _ in range(count):
                    (sender_len,) = struct.unpack_from("<H", data, offset)
                    offset += 2
                    if len(data) < offset + sender_len:
                        raise CodecError("truncated digest sender")
                    sender = data[offset : offset + sender_len].decode("utf-8")
                    offset += sender_len
                    (contiguous,) = struct.unpack_from("<Q", data, offset)
                    offset += 8
                    extras, offset = _decode_ascending(data, offset, contiguous)
                    frontiers[sender] = (contiguous, extras)
                return DigestFrame(frontiers=frontiers)
            if frame_type == _TYPE_HEARTBEAT:
                (count,) = struct.unpack_from("<Q", data, offset)
                return HeartbeatFrame(count=count)
        except struct.error as exc:
            raise CodecError(f"truncated frame: {exc}") from exc
        raise CodecError(f"unknown frame type {frame_type}")
