"""Wire format for messages and timestamps.

A deployable causal broadcast needs its control information on the wire;
this module defines a compact, versioned binary encoding used by the
:mod:`repro.net` transports and available to any integrator.

Layout (little-endian)::

    magic   2B  b"PC"
    version 1B  (currently 2)
    flags   1B  bit0: entries are LEB128 varints (else fixed uint32)
                bit1: DELTA encoding (see below)
    scheme  1B  clock-scheme id (repro.core.registry allocation): the
                clock family that produced the timestamp.  Decoding
                checks it against the codec's configured scheme, so
                timestamps of different families — which share the
                vector shape but not the delivery semantics — fail
                loudly instead of being silently mis-applied.
    sender  u16 length + UTF-8 bytes
    seq     u64
    K       u16, then K x u32 sender keys
    R       u32, then R entries (u32 each, or varints)
    payload u32 length + bytes

Entry counters are non-negative and usually small, so the varint mode
(default) shrinks the dominant cost — the R entries — to ~1 byte each in
steady state, realising the paper's "few integer timestamps" on the wire.
Payload bytes are produced by a pluggable :class:`PayloadCodec`; the
default encodes JSON, which covers the CRDT operation payloads used in
the examples (tuples become lists and are normalised back).

**DELTA encoding** (flags bit1) exploits Algorithm 1 harder: between two
consecutive sends the sender only incremented its K entries ``f(p_i)``
plus whatever entries its deliveries bumped, so a message can carry just
the entries *changed* since a reference message the receiver provably
holds (the sender's last link-acked full encoding).  After the shared
``magic..sender`` prefix the layout is all varints — no key block (the
receiver knows the sender's static keys from the reference), no R::

    seq      varint  (u64 in the full encoding)
    ref gap  varint  (ref_seq = seq - gap; the referenced own message)
    changed  varint count, then count x (varint index gap, varint increment)
    payload  varint length + bytes

Decoding requires the reference vector and the sender's key set
(:meth:`MessageCodec.decode_delta`) and reconstructs the full vector
bit-identically to the full encoding — see ``docs/PROTOCOL.md`` §8 for
the reference rules and mandatory full-encoding fallbacks.

Alongside the message encoding, this module defines the **reliability
frames** spoken by :class:`repro.net.session.ReliableSession`: a DATA
frame carrying an opaque payload under a per-link sequence number, ACK
(cumulative + selective), NACK (explicit missing sequence numbers),
DIGEST (per-sender ``(sender, seq)`` frontiers for anti-entropy),
HEARTBEAT (a liveness beacon for the failure detector) and BATCH (a
container datagram coalescing several frames, with an optional
piggybacked cumulative ACK).  Frames use a distinct magic (``b"PF"``)
so a receiver can dispatch between raw messages and session frames on
the first two bytes.

**Zero-copy decode.**  Every decode entry point accepts any buffer —
``bytes``, ``bytearray`` or ``memoryview`` — and avoids copying where
the result is only *read*: a decoded :class:`DataFrame` payload and the
inner elements of a :class:`BatchFrame` are lazy slices of the input
buffer (for a ``memoryview`` input, sub-views that share its memory).
Small human-readable fields (sender ids, addresses) and application
payloads always materialise to owned ``bytes``/objects, so nothing a
:class:`~repro.core.protocol.Message` holds aliases the input buffer.

The lifetime rule is the receive callback's: a transport that recycles
receive buffers (``BatchedUdpTransport``) only guarantees a view until
the callback returns.  Any encoded datagram that must outlive the
callback — e.g. the full encodings the node journals and re-serves for
anti-entropy — must pass through :func:`retain`, which copies a view
into owned bytes (and is a no-op for ``bytes`` input).  DESIGN.md §7
documents the ownership contract end to end.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.clocks import Timestamp
from repro.core.errors import ReproError
from repro.core.protocol import Message
from repro.core.registry import scheme_id_of, scheme_name_of

__all__ = [
    "Buffer",
    "CodecError",
    "CodecCounters",
    "retain",
    "PayloadCodec",
    "JsonPayloadCodec",
    "RawBytesPayloadCodec",
    "MessageCodec",
    "encode_varint",
    "decode_varint",
    "varint_size",
    "DataFrame",
    "AckFrame",
    "NackFrame",
    "DigestFrame",
    "HeartbeatFrame",
    "BatchFrame",
    "MemberRecord",
    "ViewFrame",
    "JoinFrame",
    "JoinAckFrame",
    "LeaveFrame",
    "RelayFrame",
    "Frame",
    "FrameCodec",
]

_MAGIC = b"PC"
_VERSION = 3  # v2 added the clock-scheme id byte; v3 the epoch id byte
_FLAG_VARINT = 0x01
_FLAG_DELTA = 0x02
_MAX_U32 = 0xFFFFFFFF
_HEADER_SIZE = 6  # magic + version + flags + scheme + epoch

#: Anything the decode paths accept: owned bytes or a borrowed view.
Buffer = Union[bytes, bytearray, memoryview]


class CodecError(ReproError):
    """Raised on malformed wire data or unencodable payloads."""


class CodecCounters:
    """Allocation/copy tallies for the zero-copy decode path.

    Plain slotted integers bumped inline (no obs dependency — the node
    syncs them into :mod:`repro.obs` counters through a pull collector,
    so the hot path never touches the registry).  ``*_views`` count
    decoded results that alias the input buffer (no copy);
    ``retained_bytes`` counts what :func:`retain` had to materialise at
    the journal boundary.
    """

    __slots__ = (
        "frames_decoded",
        "batch_inner_views",
        "data_payload_views",
        "messages_decoded",
        "deltas_decoded",
        "epoch_mismatches",
        "payload_bytes_in",
        "retain_copies",
        "retain_noops",
        "retained_bytes",
    )

    def __init__(self) -> None:
        self.frames_decoded = 0
        self.batch_inner_views = 0
        self.data_payload_views = 0
        self.messages_decoded = 0
        self.deltas_decoded = 0
        self.epoch_mismatches = 0
        self.payload_bytes_in = 0
        self.retain_copies = 0
        self.retain_noops = 0
        self.retained_bytes = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


def retain(data: Buffer, counters: Optional[CodecCounters] = None) -> bytes:
    """Copy a borrowed view into owned bytes; identity for ``bytes``.

    The journal-boundary rule: receive-path views are only valid until
    the transport callback returns (the buffer ring is recycled), so any
    datagram stored past the callback — the node's message store, the
    WAL, retransmit queues — must be retained first.  ``bytes`` input is
    returned as-is (CPython ``bytes(b)`` is the same object), so the
    legacy copying transports pay nothing.
    """
    if type(data) is bytes:
        if counters is not None:
            counters.retain_noops += 1
        return data
    owned = bytes(data)
    if counters is not None:
        counters.retain_copies += 1
        counters.retained_bytes += len(owned)
    return owned


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: Buffer, offset: int) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def varint_size(value: int) -> int:
    """Encoded length of a non-negative integer, without encoding it."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


class PayloadCodec:
    """Turns application payloads into bytes and back."""

    def encode(self, payload: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: Buffer) -> Any:
        """Decode a payload.  ``data`` may be a borrowed view; the result
        must not alias it (payloads materialise at delivery)."""
        raise NotImplementedError


class JsonPayloadCodec(PayloadCodec):
    """Default payload codec: JSON with tuple-normalisation.

    JSON has no tuple type; on decode, lists are converted back to tuples
    recursively so that CRDT operations (which use tuples as tags and ids)
    round-trip structurally.  ``None`` payloads encode to zero bytes.
    """

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        try:
            return json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"payload is not JSON-encodable: {exc}") from exc

    def decode(self, data: Buffer) -> Any:
        if not len(data):
            return None
        try:
            return _tuplify(json.loads(bytes(data).decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"malformed JSON payload: {exc}") from exc


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


class RawBytesPayloadCodec(PayloadCodec):
    """Pass-through codec for applications that frame their own bytes."""

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError(f"raw codec needs bytes, got {type(payload).__name__}")
        return bytes(payload)

    def decode(self, data: Buffer) -> Any:
        # Materialise: raw payloads are handed to the application, which
        # must never see a view into a recycled receive buffer.
        return bytes(data)


class MessageCodec:
    """Encodes/decodes whole :class:`~repro.core.protocol.Message` objects.

    Args:
        payload_codec: application payload serialisation (JSON by default).
        varint_entries: LEB128-compress the R entries (default True).
        scheme: the clock scheme whose timestamps this codec carries
            (a name registered in :mod:`repro.core.registry`).  Its wire
            id is stamped into every encoding and checked on decode.
        epoch: the clock-sizing epoch this codec currently encodes; one
            byte on the wire (mod 256) next to the scheme id.  Unlike the
            scheme, a *mismatched* epoch is not an error — mixed-epoch
            frames are expected while a geometry renegotiation drains
            through the group (every message carries its sender's keys,
            so delivery is epoch-agnostic); decode only tallies the
            mismatch in :attr:`counters` so the transition is observable.
    """

    def __init__(
        self,
        payload_codec: PayloadCodec = None,
        varint_entries: bool = True,
        scheme: str = "probabilistic",
        epoch: int = 0,
    ) -> None:
        self._payload_codec = payload_codec if payload_codec is not None else JsonPayloadCodec()
        self._varint = varint_entries
        self._scheme = scheme
        self._scheme_id = scheme_id_of(scheme)
        self.epoch = epoch
        self.counters = CodecCounters()

    @property
    def scheme(self) -> str:
        """The clock scheme this codec encodes and accepts."""
        return self._scheme

    @property
    def epoch(self) -> int:
        """The clock-sizing epoch stamped into new encodings."""
        return self._epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"epoch must be >= 0, got {value}")
        self._epoch = int(value)

    @staticmethod
    def peek_scheme(data: Buffer) -> Optional[str]:
        """The clock scheme of an encoded message, without decoding it.

        Returns the registered scheme name, or ``None`` when the id byte
        is not (or no longer) registered locally.
        """
        if len(data) < _HEADER_SIZE or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        return scheme_name_of(data[4])

    @staticmethod
    def peek_epoch(data: Buffer) -> int:
        """The epoch id byte of an encoded message, without decoding it.

        The wire carries the low 8 bits of the group epoch; with at most
        one renegotiation in flight the receiver disambiguates against
        its own epoch (equal mod 256 ⇒ same epoch in practice).
        """
        if len(data) < _HEADER_SIZE or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        return data[5]

    def _check_scheme(self, scheme_id: int) -> None:
        if scheme_id != self._scheme_id:
            carried = scheme_name_of(scheme_id)
            label = repr(carried) if carried is not None else f"id {scheme_id}"
            raise CodecError(
                f"message timestamp belongs to clock scheme {label}; "
                f"this codec decodes {self._scheme!r}"
            )

    def _header_parts(self, message: Message, flags: int) -> list:
        """Shared prefix (magic..keys) of the full and delta encodings."""
        sender_bytes = str(message.sender).encode("utf-8")
        if len(sender_bytes) > 0xFFFF:
            raise CodecError("sender id longer than 65535 bytes")
        keys = message.timestamp.sender_keys
        if len(keys) > 0xFFFF:
            raise CodecError("more than 65535 sender keys")
        if keys and (min(keys) < 0 or max(keys) > _MAX_U32):
            raise CodecError(f"sender keys outside uint32 wire range: {keys}")
        return [
            _MAGIC,
            struct.pack(
                "<BBBB", _VERSION, flags, self._scheme_id, self._epoch & 0xFF
            ),
            struct.pack("<H", len(sender_bytes)),
            sender_bytes,
            struct.pack("<Q", message.seq),
            struct.pack("<H", len(keys)),
            struct.pack(f"<{len(keys)}I", *keys) if keys else b"",
        ]

    def encode(self, message: Message) -> bytes:
        timestamp = message.timestamp
        flags = _FLAG_VARINT if self._varint else 0
        parts = self._header_parts(message, flags)
        parts.append(struct.pack("<I", timestamp.size))
        entries = [int(v) for v in timestamp.vector]
        if entries and min(entries) < 0:
            raise CodecError(
                f"negative vector entry in message {message.message_id}: "
                "clock entries are counters and must be >= 0"
            )
        if self._varint:
            parts.extend(encode_varint(v) for v in entries)
        else:
            # Fixed-width entries ride in uint32 slots; a long-running
            # node whose counters outgrow them must fail loudly here, not
            # with a struct.error deep in the pack call (or, worse, a
            # silent truncation on a permissive platform).
            high = max(entries, default=0)
            if high > _MAX_U32:
                raise CodecError(
                    f"vector entry {high} exceeds the uint32 wire range of "
                    "fixed-width encoding; use varint_entries=True (default) "
                    "for counters beyond 2**32-1"
                )
            parts.append(struct.pack(f"<{len(entries)}I", *entries))
        payload_bytes = self._payload_codec.encode(message.payload)
        parts.append(struct.pack("<I", len(payload_bytes)))
        parts.append(payload_bytes)
        return b"".join(parts)

    def decode(self, data: Buffer) -> Message:
        if len(data) < _HEADER_SIZE or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        version, flags, scheme_id, epoch = struct.unpack_from("<BBBB", data, 2)
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        if flags & _FLAG_DELTA:
            raise CodecError(
                "delta-encoded message: use decode_delta() with the "
                "per-link reference vector"
            )
        self._check_scheme(scheme_id)
        if epoch != self._epoch & 0xFF:
            self.counters.epoch_mismatches += 1
        varint = bool(flags & _FLAG_VARINT)
        offset = _HEADER_SIZE
        try:
            (sender_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            if len(data) < offset + sender_len:
                raise CodecError("truncated sender")
            sender = bytes(data[offset : offset + sender_len]).decode("utf-8")
            offset += sender_len
            (seq,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            (key_count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            keys = struct.unpack_from(f"<{key_count}I", data, offset)
            offset += 4 * key_count
            (r,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if varint:
                entries = []
                for _ in range(r):
                    value, offset = decode_varint(data, offset)
                    entries.append(value)
            else:
                entries = list(struct.unpack_from(f"<{r}I", data, offset))
                offset += 4 * r
            (payload_len,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if len(data) < offset + payload_len:
                raise CodecError("truncated payload")
            payload = self._payload_codec.decode(data[offset : offset + payload_len])
            offset += payload_len
        except struct.error as exc:
            raise CodecError(f"truncated message: {exc}") from exc

        counters = self.counters
        counters.messages_decoded += 1
        counters.payload_bytes_in += payload_len
        vector = np.asarray(entries, dtype=np.int64)
        vector.flags.writeable = False
        timestamp = Timestamp(vector=vector, sender_keys=tuple(int(k) for k in keys), seq=seq)
        return Message(sender=sender, seq=seq, timestamp=timestamp, payload=payload)

    def encoded_size(self, message: Message) -> int:
        """Wire size in bytes, computed without materialising the encoding.

        Exactly ``len(self.encode(message))`` for any encodable message
        (property-tested); only the payload is actually serialised (its
        length is content-dependent), the rest is arithmetic.
        """
        sender_bytes = str(message.sender).encode("utf-8")
        timestamp = message.timestamp
        size = (
            _HEADER_SIZE  # magic + version + flags + scheme + epoch
            + 2 + len(sender_bytes)
            + 8  # seq
            + 2 + 4 * len(timestamp.sender_keys)
            + 4  # R
        )
        if self._varint:
            size += sum(varint_size(int(v)) for v in timestamp.vector)
        else:
            size += 4 * timestamp.size
        size += 4 + len(self._payload_codec.encode(message.payload))
        return size

    # ------------------------------------------------------------------
    # DELTA encoding (O(K) timestamps against a per-link reference)
    # ------------------------------------------------------------------

    @staticmethod
    def is_delta(data: Buffer) -> bool:
        """True when ``data`` is a delta-encoded message datagram."""
        return (
            len(data) >= _HEADER_SIZE
            and data[:2] == _MAGIC
            and bool(data[3] & _FLAG_DELTA)
        )

    def encode_delta(
        self, message: Message, ref_seq: int, ref_vector: np.ndarray
    ) -> bytes:
        """Encode ``message`` as the entries changed since a reference.

        Args:
            message: the message to encode (an *own* broadcast — the
                reference must be an earlier message from the same
                sender on the same link).
            ref_seq: the reference message's ``seq``; the receiver must
                hold its decoded vector (guaranteed when the reference
                was link-acked — see PROTOCOL.md §8).
            ref_vector: the reference message's full vector.

        Raises :class:`CodecError` when the vectors disagree in size or
        the message's vector is not entrywise >= the reference (clock
        entries are monotone counters; a regression means the caller
        picked a non-causal reference).
        """
        timestamp = message.timestamp
        if len(ref_vector) != timestamp.size:
            raise CodecError(
                f"reference vector has {len(ref_vector)} entries, "
                f"message has {timestamp.size}"
            )
        if not 0 <= ref_seq < message.seq:
            raise CodecError(
                f"reference seq {ref_seq} is not an earlier message than "
                f"seq {message.seq}"
            )
        diff = np.asarray(timestamp.vector, dtype=np.int64) - np.asarray(
            ref_vector, dtype=np.int64
        )
        if diff.min(initial=0) < 0:
            raise CodecError(
                f"message {message.message_id} vector regresses below the "
                f"reference (seq {ref_seq}): not a causal successor"
            )
        changed = np.nonzero(diff)[0]
        # Leaner header than the full encoding: no sender-keys block (the
        # receiver knows the sender's static key set from whichever full
        # encoding established the reference), the reference as a varint
        # gap below seq, and a varint payload length.
        sender_bytes = str(message.sender).encode("utf-8")
        if len(sender_bytes) > 0xFFFF:
            raise CodecError("sender id longer than 65535 bytes")
        payload_bytes = self._payload_codec.encode(message.payload)
        parts = [
            _MAGIC,
            struct.pack(
                "<BBBB",
                _VERSION,
                _FLAG_VARINT | _FLAG_DELTA,
                self._scheme_id,
                self._epoch & 0xFF,
            ),
            struct.pack("<H", len(sender_bytes)),
            sender_bytes,
            encode_varint(message.seq),
            encode_varint(message.seq - ref_seq),
            encode_varint(len(changed)),
        ]
        previous = 0
        for index in changed:
            index = int(index)
            parts.append(encode_varint(index - previous))
            parts.append(encode_varint(int(diff[index])))
            previous = index
        parts.append(encode_varint(len(payload_bytes)))
        parts.append(payload_bytes)
        return b"".join(parts)

    def delta_header(self, data: Buffer) -> Tuple[str, int, int]:
        """Peek ``(sender, seq, ref_seq)`` of a delta datagram without
        decoding it (the caller resolves the reference first)."""
        sender, seq, offset = self._decode_delta_prefix(data)
        gap, _ = decode_varint(data, offset)
        if not 0 < gap <= seq:
            raise CodecError(f"delta reference gap {gap} outside (0, seq]")
        return sender, seq, seq - gap

    def _decode_delta_prefix(self, data: Buffer) -> Tuple[str, int, int]:
        """Parse a delta's magic/version/flags/sender/varint-seq; returns
        ``(sender, seq, offset_of_ref_gap)``.  Deltas diverge from the
        full encoding right after the sender field: seq is a varint."""
        if len(data) < _HEADER_SIZE or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        version, flags, scheme_id, epoch = struct.unpack_from("<BBBB", data, 2)
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        if not flags & _FLAG_DELTA:
            raise CodecError("not a delta-encoded message")
        self._check_scheme(scheme_id)
        if epoch != self._epoch & 0xFF:
            self.counters.epoch_mismatches += 1
        offset = _HEADER_SIZE
        try:
            (sender_len,) = struct.unpack_from("<H", data, offset)
        except struct.error as exc:
            raise CodecError(f"truncated message: {exc}") from exc
        offset += 2
        if len(data) < offset + sender_len:
            raise CodecError("truncated sender")
        sender = bytes(data[offset : offset + sender_len]).decode("utf-8")
        offset += sender_len
        seq, offset = decode_varint(data, offset)
        return sender, seq, offset

    def decode_delta(
        self, data: Buffer, ref_vector: np.ndarray, sender_keys: Tuple[int, ...]
    ) -> Message:
        """Reconstruct the full message from a delta and its reference.

        ``sender_keys`` is the sender's static key set, known to the
        receiver from whichever full encoding established the reference
        (deltas do not carry it).  The result is bit-identical to
        decoding the full encoding of the same message
        (differential-tested): same vector dtype and values, same keys,
        seq, and payload.
        """
        sender, seq, offset = self._decode_delta_prefix(data)
        try:
            gap, offset = decode_varint(data, offset)
            if not 0 < gap <= seq:
                raise CodecError(f"delta reference gap {gap} outside (0, seq]")
            ref_seq = seq - gap
            changed, offset = decode_varint(data, offset)
            vector = np.array(ref_vector, dtype=np.int64, copy=True)
            index = 0
            for position in range(changed):
                gap, offset = decode_varint(data, offset)
                if position > 0 and gap == 0:
                    raise CodecError("zero index gap in delta entries")
                index += gap
                if index >= len(vector):
                    raise CodecError(
                        f"delta entry index {index} outside the "
                        f"{len(vector)}-entry reference vector"
                    )
                increment, offset = decode_varint(data, offset)
                if increment == 0:
                    raise CodecError("zero increment in delta entries")
                vector[index] += increment
            payload_len, offset = decode_varint(data, offset)
            if len(data) < offset + payload_len:
                raise CodecError("truncated payload")
            payload = self._payload_codec.decode(data[offset : offset + payload_len])
        except struct.error as exc:
            raise CodecError(f"truncated delta message: {exc}") from exc
        del ref_seq  # resolved by the caller via delta_header()
        counters = self.counters
        counters.deltas_decoded += 1
        counters.payload_bytes_in += payload_len
        vector.flags.writeable = False
        timestamp = Timestamp(
            vector=vector, sender_keys=tuple(int(k) for k in sender_keys), seq=seq
        )
        return Message(sender=sender, seq=seq, timestamp=timestamp, payload=payload)


# ----------------------------------------------------------------------
# Reliability frames (ReliableSession wire format)
# ----------------------------------------------------------------------

_FRAME_MAGIC = b"PF"
_FRAME_VERSION = 2  # v2 added the epoch field to VIEW and JOIN_ACK
_TYPE_DATA = 1
_TYPE_ACK = 2
_TYPE_NACK = 3
_TYPE_DIGEST = 4
_TYPE_HEARTBEAT = 5
_TYPE_BATCH = 6
_TYPE_VIEW = 7
_TYPE_JOIN = 8
_TYPE_JOIN_ACK = 9
_TYPE_LEAVE = 10
_TYPE_RELAY = 11

_MAX_SACK = 64
_MAX_NACK = 64
_MAX_HOPS = 255
_MAX_RELAY_SAMPLE = 255
_BATCH_HAS_ACK = 0x01
_JOIN_ACK_ACCEPTED = 0x01


@dataclass(frozen=True, slots=True)
class DataFrame:
    """A payload under a per-link sequence number (1-based, per peer)."""

    seq: int
    payload: bytes


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Cumulative + selective acknowledgement.

    Attributes:
        cumulative: every link seq ``<= cumulative`` has been received.
        sacks: ascending tuple of seqs ``> cumulative`` received out of
            order (capped at 64 on the wire).
    """

    cumulative: int
    sacks: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class NackFrame:
    """Explicit request to retransmit the listed link seqs (ascending)."""

    missing: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class DigestFrame:
    """Anti-entropy digest: per-sender ``(sender, seq)`` frontiers.

    ``frontiers`` maps a sender id to ``(contiguous, extras)``: every seq
    ``<= contiguous`` of that sender is known, plus the ascending
    ``extras`` beyond it.  A peer receiving the digest re-sends whatever
    it holds that the digest does not cover.
    """

    frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class HeartbeatFrame:
    """Liveness beacon: proof the sender is up even when it has no data.

    ``count`` is a per-sender monotone counter; the failure detector only
    cares that *something* arrived, but the counter makes heartbeat loss
    observable in packet captures.  Heartbeats are fire-and-forget: never
    acked, never retransmitted.
    """

    count: int


@dataclass(frozen=True, slots=True)
class BatchFrame:
    """A container datagram: several coalesced frames, one syscall.

    Attributes:
        frames: the *encoded* inner frames (each a complete ``PF`` frame;
            nesting a BATCH inside a BATCH is rejected on both ends).
            Kept as opaque bytes so a batch round-trips byte-identically
            and the flush path never re-encodes.  When decoded from a
            ``memoryview`` these are zero-copy sub-views of the input
            datagram — valid only for the lifetime of that buffer.
        ack: optional piggybacked cumulative+selective acknowledgement —
            the delayed-ack path folds it into an outgoing batch so
            bidirectional steady-state traffic needs no standalone ACK
            datagrams.
    """

    frames: Tuple[Buffer, ...]
    ack: Optional[AckFrame] = None


@dataclass(frozen=True, slots=True)
class MemberRecord:
    """One group member as carried inside VIEW and JOIN_ACK frames.

    ``address`` is whatever the transport uses to reach the member —
    typically a ``(host, port)`` tuple; it round-trips through JSON on
    the wire, with lists normalised back to tuples on decode.
    """

    node_id: str
    address: Any
    keys: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class ViewFrame:
    """A versioned group-view announcement from the acting coordinator.

    ``view_id`` is strictly monotonic: receivers install a view only when
    its id exceeds the one they hold, which makes re-announcements (the
    loss-healing mechanism — VIEW is fire-and-forget) idempotent.

    ``epoch`` is the clock-sizing generation the view's key assignment
    belongs to (see PROTOCOL.md §11): it only moves when the group
    renegotiates its (R, K) geometry, so most view changes carry the
    epoch unchanged while every epoch bump rides a view bump.
    """

    view_id: int
    members: Tuple[MemberRecord, ...]
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class JoinFrame:
    """A join request sent to a seed peer / the acting coordinator.

    ``keys`` is normally empty; a rejoining node may send its previous
    key set so the coordinator can re-adopt it instead of assigning a
    fresh one (keeps the journal identity of a restarted node valid).
    """

    node_id: str
    address: Any
    keys: Tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class JoinAckFrame:
    """The coordinator's reply to a JOIN.

    When ``accepted``, carries everything the joiner needs before it may
    enter the view: the clock geometry ``(r, k)``, its granted ``keys``,
    the current membership, and a consistent state-transfer pair — the
    coordinator's clock ``vector`` together with its *delivered*
    per-sender ``frontiers`` (the two must be read atomically; see
    PROTOCOL.md §9).  When rejected, ``members`` still carries the
    current view so the joiner can re-target the acting coordinator.
    """

    accepted: bool
    view_id: int
    r: int
    k: int
    keys: Tuple[int, ...]
    members: Tuple[MemberRecord, ...]
    frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)
    vector: Tuple[int, ...] = ()
    reason: str = ""
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class LeaveFrame:
    """A graceful goodbye; fire-and-forget (eviction is the backstop)."""

    node_id: str


@dataclass(frozen=True, slots=True)
class RelayFrame:
    """A gossip dissemination envelope (overlay mode, PROTOCOL.md §10).

    Wraps one complete message encoding (the ``PC`` bytes) so relayers
    forward it verbatim — encode once at the origin, fan out everywhere.
    ``(origin, seq)`` duplicates the inner header so receivers can dedup
    against the SeenFilter watermark *without* decoding the payload.

    Attributes:
        origin: sender id of the wrapped message.
        seq: the origin's per-sender sequence number.
        hops: relay depth; 0 at the origin, +1 per forward, capped at
            255 on the wire (the overlay enforces a far smaller bound).
        sent_at: the origin's event-loop timestamp at first push.  Only
            comparable where origin and receiver share a clock (the
            process-local swarms); used for coverage-latency histograms
            and carried as a plain f64 diagnostic otherwise.
        sample: piggybacked partial-view sample — the lpbcast-style
            membership gossip receivers probabilistically merge.
        payload: the encoded message (zero-copy sub-view when decoded
            from a borrowed buffer; same lifetime rule as DATA).
    """

    origin: str
    seq: int
    hops: int
    sample: Tuple[MemberRecord, ...] = ()
    payload: Buffer = b""
    sent_at: float = 0.0


Frame = Union[
    DataFrame,
    AckFrame,
    NackFrame,
    DigestFrame,
    HeartbeatFrame,
    BatchFrame,
    ViewFrame,
    JoinFrame,
    JoinAckFrame,
    LeaveFrame,
    RelayFrame,
]


def _encode_ascending(values: Tuple[int, ...], base: int) -> bytes:
    """Delta-encode an ascending sequence as varints (first delta from base)."""
    parts = [struct.pack("<H", len(values))]
    previous = base
    for value in values:
        if value <= previous:
            raise CodecError(f"sequence not strictly ascending above {base}: {values}")
        parts.append(encode_varint(value - previous))
        previous = value
    return b"".join(parts)


def _decode_ascending(data: Buffer, offset: int, base: int) -> Tuple[Tuple[int, ...], int]:
    (count,) = struct.unpack_from("<H", data, offset)
    offset += 2
    values = []
    previous = base
    for _ in range(count):
        delta, offset = decode_varint(data, offset)
        if delta == 0:
            raise CodecError("zero delta in ascending sequence")
        previous += delta
        values.append(previous)
    return tuple(values), offset


def _encode_short_bytes(raw: bytes) -> bytes:
    if len(raw) > 0xFFFF:
        raise CodecError("field longer than 65535 bytes")
    return struct.pack("<H", len(raw)) + raw


def _decode_short_bytes(data: Buffer, offset: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if len(data) < offset + length:
        raise CodecError("truncated length-prefixed field")
    # Always owned: callers keep these (ids, addresses) past the callback.
    return bytes(data[offset : offset + length]), offset + length


def _encode_address(address: Any) -> bytes:
    try:
        raw = json.dumps(address, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"unencodable address {address!r}: {exc}") from exc
    return _encode_short_bytes(raw)


def _decode_address(data: Buffer, offset: int) -> Tuple[Any, int]:
    raw, offset = _decode_short_bytes(data, offset)
    try:
        return _tuplify(json.loads(raw.decode("utf-8"))), offset
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"malformed address field: {exc}") from exc


def _encode_member(member: MemberRecord) -> bytes:
    return b"".join(
        [
            _encode_short_bytes(member.node_id.encode("utf-8")),
            _encode_address(member.address),
            _encode_ascending(tuple(member.keys), -1),
        ]
    )


def _decode_member(data: Buffer, offset: int) -> Tuple[MemberRecord, int]:
    node_raw, offset = _decode_short_bytes(data, offset)
    address, offset = _decode_address(data, offset)
    keys, offset = _decode_ascending(data, offset, -1)
    return MemberRecord(node_id=node_raw.decode("utf-8"), address=address, keys=keys), offset


def _encode_members(members: Tuple[MemberRecord, ...]) -> bytes:
    if len(members) > 0xFFFF:
        raise CodecError("view carries more than 65535 members")
    parts = [struct.pack("<H", len(members))]
    for member in members:
        parts.append(_encode_member(member))
    return b"".join(parts)


def _decode_members(data: Buffer, offset: int) -> Tuple[Tuple[MemberRecord, ...], int]:
    (count,) = struct.unpack_from("<H", data, offset)
    offset += 2
    members = []
    for _ in range(count):
        member, offset = _decode_member(data, offset)
        members.append(member)
    return tuple(members), offset


def _encode_frontiers(frontiers: Dict[str, Tuple[int, Tuple[int, ...]]]) -> bytes:
    if len(frontiers) > 0xFFFF:
        raise CodecError("frontier map covers more than 65535 senders")
    parts = [struct.pack("<H", len(frontiers))]
    for sender in sorted(frontiers):
        contiguous, extras = frontiers[sender]
        parts.append(_encode_short_bytes(str(sender).encode("utf-8")))
        parts.append(struct.pack("<Q", contiguous))
        parts.append(_encode_ascending(tuple(extras), contiguous))
    return b"".join(parts)


def _decode_frontiers(
    data: Buffer, offset: int
) -> Tuple[Dict[str, Tuple[int, Tuple[int, ...]]], int]:
    (count,) = struct.unpack_from("<H", data, offset)
    offset += 2
    frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
    for _ in range(count):
        sender_raw, offset = _decode_short_bytes(data, offset)
        (contiguous,) = struct.unpack_from("<Q", data, offset)
        offset += 8
        extras, offset = _decode_ascending(data, offset, contiguous)
        frontiers[sender_raw.decode("utf-8")] = (contiguous, extras)
    return frontiers, offset


class FrameCodec:
    """Encodes/decodes the session frames (DATA/ACK/NACK/DIGEST/HEARTBEAT).

    Symmetric; all frames start with ``b"PF"`` + version + type byte,
    which keeps them distinguishable from message datagrams (``b"PC"``)
    at the first two bytes — see :func:`FrameCodec.is_frame`.  Decoding
    accepts any :data:`Buffer`; DATA payloads and BATCH inner frames
    come back as zero-copy slices of the input (see the module
    docstring for the lifetime rule).  The only per-instance state is
    :attr:`counters`, the allocation/copy tallies.
    """

    def __init__(self) -> None:
        self.counters = CodecCounters()

    @staticmethod
    def is_frame(data: Buffer) -> bool:
        """True when ``data`` looks like a session frame (magic check)."""
        return len(data) >= 4 and data[:2] == _FRAME_MAGIC

    @staticmethod
    def encode_data_body(payload: Buffer) -> bytes:
        """The seq-independent tail of a DATA frame (length + payload).

        A fan-out sends the *same* payload to every peer; only the 8-byte
        per-link seq in the header differs.  Callers build this body once
        and stamp per-peer headers with :meth:`encode_data_with_body`, so
        an N-peer broadcast packs the payload a single time.
        """
        return struct.pack("<I", len(payload)) + payload

    @staticmethod
    def encode_data_with_body(seq: int, body: bytes) -> bytes:
        """Complete a DATA frame from a shared :meth:`encode_data_body`."""
        if seq < 0:
            raise CodecError(f"negative link seq {seq}")
        return b"".join(
            [
                _FRAME_MAGIC,
                struct.pack("<BBQ", _FRAME_VERSION, _TYPE_DATA, seq),
                body,
            ]
        )

    def encode(self, frame: Frame) -> bytes:
        header = _FRAME_MAGIC + struct.pack("<B", _FRAME_VERSION)
        if isinstance(frame, DataFrame):
            return self.encode_data_with_body(
                frame.seq, self.encode_data_body(frame.payload)
            )
        if isinstance(frame, AckFrame):
            sacks = tuple(frame.sacks)[:_MAX_SACK]
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_ACK),
                    struct.pack("<Q", frame.cumulative),
                    _encode_ascending(sacks, frame.cumulative),
                ]
            )
        if isinstance(frame, NackFrame):
            missing = tuple(frame.missing)[:_MAX_NACK]
            if not missing:
                raise CodecError("a NACK must list at least one seq")
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_NACK),
                    struct.pack("<Q", missing[0]),
                    _encode_ascending(missing[1:], missing[0]),
                ]
            )
        if isinstance(frame, DigestFrame):
            if len(frame.frontiers) > 0xFFFF:
                raise CodecError("digest covers more than 65535 senders")
            parts = [header, struct.pack("<B", _TYPE_DIGEST)]
            parts.append(struct.pack("<H", len(frame.frontiers)))
            for sender in sorted(frame.frontiers):
                contiguous, extras = frame.frontiers[sender]
                sender_bytes = str(sender).encode("utf-8")
                if len(sender_bytes) > 0xFFFF:
                    raise CodecError("sender id longer than 65535 bytes")
                parts.append(struct.pack("<H", len(sender_bytes)))
                parts.append(sender_bytes)
                parts.append(struct.pack("<Q", contiguous))
                parts.append(_encode_ascending(tuple(extras), contiguous))
            return b"".join(parts)
        if isinstance(frame, HeartbeatFrame):
            if frame.count < 0:
                raise CodecError(f"negative heartbeat count {frame.count}")
            return b"".join(
                [header, struct.pack("<B", _TYPE_HEARTBEAT), struct.pack("<Q", frame.count)]
            )
        if isinstance(frame, BatchFrame):
            if not frame.frames:
                raise CodecError("a BATCH must carry at least one frame")
            if len(frame.frames) > 0xFFFF:
                raise CodecError("BATCH carries more than 65535 frames")
            flags = _BATCH_HAS_ACK if frame.ack is not None else 0
            parts = [header, struct.pack("<BB", _TYPE_BATCH, flags)]
            if frame.ack is not None:
                parts.append(struct.pack("<Q", frame.ack.cumulative))
                parts.append(
                    _encode_ascending(
                        tuple(frame.ack.sacks)[:_MAX_SACK], frame.ack.cumulative
                    )
                )
            parts.append(struct.pack("<H", len(frame.frames)))
            for inner in frame.frames:
                if not FrameCodec.is_frame(inner) or inner[3] == _TYPE_BATCH:
                    raise CodecError(
                        "BATCH inner elements must be encoded non-BATCH frames"
                    )
                parts.append(encode_varint(len(inner)))
                parts.append(inner)
            return b"".join(parts)
        if isinstance(frame, ViewFrame):
            if frame.view_id < 0:
                raise CodecError(f"negative view id {frame.view_id}")
            if frame.epoch < 0:
                raise CodecError(f"negative epoch {frame.epoch}")
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_VIEW),
                    struct.pack("<QI", frame.view_id, frame.epoch),
                    _encode_members(frame.members),
                ]
            )
        if isinstance(frame, JoinFrame):
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_JOIN),
                    _encode_short_bytes(frame.node_id.encode("utf-8")),
                    _encode_address(frame.address),
                    _encode_ascending(tuple(frame.keys), -1),
                ]
            )
        if isinstance(frame, JoinAckFrame):
            flags = _JOIN_ACK_ACCEPTED if frame.accepted else 0
            if frame.epoch < 0:
                raise CodecError(f"negative epoch {frame.epoch}")
            return b"".join(
                [
                    header,
                    struct.pack("<BB", _TYPE_JOIN_ACK, flags),
                    struct.pack("<QI", frame.view_id, frame.epoch),
                    struct.pack("<IH", frame.r, frame.k),
                    _encode_ascending(tuple(frame.keys), -1),
                    _encode_members(frame.members),
                    _encode_frontiers(frame.frontiers),
                    struct.pack("<I", len(frame.vector)),
                    b"".join(encode_varint(entry) for entry in frame.vector),
                    _encode_short_bytes(frame.reason.encode("utf-8")),
                ]
            )
        if isinstance(frame, LeaveFrame):
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_LEAVE),
                    _encode_short_bytes(frame.node_id.encode("utf-8")),
                ]
            )
        if isinstance(frame, RelayFrame):
            if frame.seq < 0:
                raise CodecError(f"negative relay seq {frame.seq}")
            if not 0 <= frame.hops <= _MAX_HOPS:
                raise CodecError(f"relay hop count {frame.hops} out of range")
            if len(frame.sample) > _MAX_RELAY_SAMPLE:
                raise CodecError("relay view sample larger than 255 entries")
            return b"".join(
                [
                    header,
                    struct.pack("<B", _TYPE_RELAY),
                    _encode_short_bytes(frame.origin.encode("utf-8")),
                    struct.pack("<QBd", frame.seq, frame.hops, frame.sent_at),
                    _encode_members(tuple(frame.sample)),
                    struct.pack("<I", len(frame.payload)),
                    frame.payload,
                ]
            )
        raise CodecError(f"not a frame: {type(frame).__name__}")

    def decode(self, data: Buffer) -> Frame:
        if not self.is_frame(data):
            raise CodecError("bad frame magic")
        version, frame_type = struct.unpack_from("<BB", data, 2)
        if version != _FRAME_VERSION:
            raise CodecError(f"unsupported frame version {version}")
        offset = 4
        counters = self.counters
        counters.frames_decoded += 1
        borrowed = type(data) is not bytes
        try:
            if frame_type == _TYPE_DATA:
                (seq,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                if len(data) < offset + length:
                    raise CodecError("truncated DATA payload")
                if borrowed:
                    counters.data_payload_views += 1
                return DataFrame(seq=seq, payload=data[offset : offset + length])
            if frame_type == _TYPE_ACK:
                (cumulative,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                sacks, offset = _decode_ascending(data, offset, cumulative)
                return AckFrame(cumulative=cumulative, sacks=sacks)
            if frame_type == _TYPE_NACK:
                (first,) = struct.unpack_from("<Q", data, offset)
                offset += 8
                rest, offset = _decode_ascending(data, offset, first)
                return NackFrame(missing=(first,) + rest)
            if frame_type == _TYPE_DIGEST:
                (count,) = struct.unpack_from("<H", data, offset)
                offset += 2
                frontiers: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
                for _ in range(count):
                    (sender_len,) = struct.unpack_from("<H", data, offset)
                    offset += 2
                    if len(data) < offset + sender_len:
                        raise CodecError("truncated digest sender")
                    sender = bytes(data[offset : offset + sender_len]).decode("utf-8")
                    offset += sender_len
                    (contiguous,) = struct.unpack_from("<Q", data, offset)
                    offset += 8
                    extras, offset = _decode_ascending(data, offset, contiguous)
                    frontiers[sender] = (contiguous, extras)
                return DigestFrame(frontiers=frontiers)
            if frame_type == _TYPE_HEARTBEAT:
                (count,) = struct.unpack_from("<Q", data, offset)
                return HeartbeatFrame(count=count)
            if frame_type == _TYPE_BATCH:
                (flags,) = struct.unpack_from("<B", data, offset)
                offset += 1
                ack = None
                if flags & _BATCH_HAS_ACK:
                    (cumulative,) = struct.unpack_from("<Q", data, offset)
                    offset += 8
                    sacks, offset = _decode_ascending(data, offset, cumulative)
                    ack = AckFrame(cumulative=cumulative, sacks=sacks)
                (count,) = struct.unpack_from("<H", data, offset)
                offset += 2
                frames = []
                for _ in range(count):
                    length, offset = decode_varint(data, offset)
                    if len(data) < offset + length:
                        raise CodecError("truncated BATCH inner frame")
                    inner = data[offset : offset + length]
                    offset += length
                    if not self.is_frame(inner) or inner[3] == _TYPE_BATCH:
                        raise CodecError("malformed BATCH inner frame")
                    frames.append(inner)
                if borrowed:
                    counters.batch_inner_views += len(frames)
                return BatchFrame(frames=tuple(frames), ack=ack)
            if frame_type == _TYPE_VIEW:
                view_id, epoch = struct.unpack_from("<QI", data, offset)
                offset += 12
                members, offset = _decode_members(data, offset)
                return ViewFrame(view_id=view_id, members=members, epoch=epoch)
            if frame_type == _TYPE_JOIN:
                node_raw, offset = _decode_short_bytes(data, offset)
                address, offset = _decode_address(data, offset)
                keys, offset = _decode_ascending(data, offset, -1)
                return JoinFrame(
                    node_id=node_raw.decode("utf-8"), address=address, keys=keys
                )
            if frame_type == _TYPE_JOIN_ACK:
                (flags,) = struct.unpack_from("<B", data, offset)
                offset += 1
                view_id, epoch = struct.unpack_from("<QI", data, offset)
                offset += 12
                r, k = struct.unpack_from("<IH", data, offset)
                offset += 6
                keys, offset = _decode_ascending(data, offset, -1)
                members, offset = _decode_members(data, offset)
                frontiers, offset = _decode_frontiers(data, offset)
                (vector_len,) = struct.unpack_from("<I", data, offset)
                offset += 4
                vector = []
                for _ in range(vector_len):
                    entry, offset = decode_varint(data, offset)
                    vector.append(entry)
                reason_raw, offset = _decode_short_bytes(data, offset)
                return JoinAckFrame(
                    accepted=bool(flags & _JOIN_ACK_ACCEPTED),
                    view_id=view_id,
                    r=r,
                    k=k,
                    keys=keys,
                    members=members,
                    frontiers=frontiers,
                    vector=tuple(vector),
                    reason=reason_raw.decode("utf-8"),
                    epoch=epoch,
                )
            if frame_type == _TYPE_LEAVE:
                node_raw, offset = _decode_short_bytes(data, offset)
                return LeaveFrame(node_id=node_raw.decode("utf-8"))
            if frame_type == _TYPE_RELAY:
                origin_raw, offset = _decode_short_bytes(data, offset)
                seq, hops, sent_at = struct.unpack_from("<QBd", data, offset)
                offset += 17
                sample, offset = _decode_members(data, offset)
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                if len(data) < offset + length:
                    raise CodecError("truncated RELAY payload")
                if borrowed:
                    counters.data_payload_views += 1
                try:
                    origin = origin_raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise CodecError(f"malformed relay origin: {exc}") from exc
                return RelayFrame(
                    origin=origin,
                    seq=seq,
                    hops=hops,
                    sent_at=sent_at,
                    sample=sample,
                    payload=data[offset : offset + length],
                )
        except struct.error as exc:
            raise CodecError(f"truncated frame: {exc}") from exc
        raise CodecError(f"unknown frame type {frame_type}")
