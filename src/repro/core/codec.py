"""Wire format for messages and timestamps.

A deployable causal broadcast needs its control information on the wire;
this module defines a compact, versioned binary encoding used by the
:mod:`repro.net` transports and available to any integrator.

Layout (little-endian)::

    magic   2B  b"PC"
    version 1B  (currently 1)
    flags   1B  bit0: entries are LEB128 varints (else fixed uint32)
    sender  u16 length + UTF-8 bytes
    seq     u64
    K       u16, then K x u32 sender keys
    R       u32, then R entries (u32 each, or varints)
    payload u32 length + bytes

Entry counters are non-negative and usually small, so the varint mode
(default) shrinks the dominant cost — the R entries — to ~1 byte each in
steady state, realising the paper's "few integer timestamps" on the wire.
Payload bytes are produced by a pluggable :class:`PayloadCodec`; the
default encodes JSON, which covers the CRDT operation payloads used in
the examples (tuples become lists and are normalised back).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Tuple

import numpy as np

from repro.core.clocks import Timestamp
from repro.core.errors import ReproError
from repro.core.protocol import Message

__all__ = [
    "CodecError",
    "PayloadCodec",
    "JsonPayloadCodec",
    "RawBytesPayloadCodec",
    "MessageCodec",
    "encode_varint",
    "decode_varint",
]

_MAGIC = b"PC"
_VERSION = 1
_FLAG_VARINT = 0x01


class CodecError(ReproError):
    """Raised on malformed wire data or unencodable payloads."""


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


class PayloadCodec:
    """Turns application payloads into bytes and back."""

    def encode(self, payload: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError


class JsonPayloadCodec(PayloadCodec):
    """Default payload codec: JSON with tuple-normalisation.

    JSON has no tuple type; on decode, lists are converted back to tuples
    recursively so that CRDT operations (which use tuples as tags and ids)
    round-trip structurally.  ``None`` payloads encode to zero bytes.
    """

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        try:
            return json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"payload is not JSON-encodable: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        if not data:
            return None
        try:
            return _tuplify(json.loads(data.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"malformed JSON payload: {exc}") from exc


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


class RawBytesPayloadCodec(PayloadCodec):
    """Pass-through codec for applications that frame their own bytes."""

    def encode(self, payload: Any) -> bytes:
        if payload is None:
            return b""
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError(f"raw codec needs bytes, got {type(payload).__name__}")
        return bytes(payload)

    def decode(self, data: bytes) -> Any:
        return data


class MessageCodec:
    """Encodes/decodes whole :class:`~repro.core.protocol.Message` objects.

    Args:
        payload_codec: application payload serialisation (JSON by default).
        varint_entries: LEB128-compress the R entries (default True).
    """

    def __init__(
        self,
        payload_codec: PayloadCodec = None,
        varint_entries: bool = True,
    ) -> None:
        self._payload_codec = payload_codec if payload_codec is not None else JsonPayloadCodec()
        self._varint = varint_entries

    def encode(self, message: Message) -> bytes:
        sender_bytes = str(message.sender).encode("utf-8")
        if len(sender_bytes) > 0xFFFF:
            raise CodecError("sender id longer than 65535 bytes")
        timestamp = message.timestamp
        keys = timestamp.sender_keys
        if len(keys) > 0xFFFF:
            raise CodecError("more than 65535 sender keys")
        flags = _FLAG_VARINT if self._varint else 0

        parts = [
            _MAGIC,
            struct.pack("<BB", _VERSION, flags),
            struct.pack("<H", len(sender_bytes)),
            sender_bytes,
            struct.pack("<Q", message.seq),
            struct.pack("<H", len(keys)),
            struct.pack(f"<{len(keys)}I", *keys) if keys else b"",
            struct.pack("<I", timestamp.size),
        ]
        entries = [int(v) for v in timestamp.vector]
        if self._varint:
            parts.extend(encode_varint(v) for v in entries)
        else:
            parts.append(struct.pack(f"<{len(entries)}I", *entries))
        payload_bytes = self._payload_codec.encode(message.payload)
        parts.append(struct.pack("<I", len(payload_bytes)))
        parts.append(payload_bytes)
        return b"".join(parts)

    def decode(self, data: bytes) -> Message:
        if len(data) < 4 or data[:2] != _MAGIC:
            raise CodecError("bad magic")
        version, flags = struct.unpack_from("<BB", data, 2)
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        varint = bool(flags & _FLAG_VARINT)
        offset = 4
        try:
            (sender_len,) = struct.unpack_from("<H", data, offset)
            offset += 2
            sender = data[offset : offset + sender_len].decode("utf-8")
            if len(data) < offset + sender_len:
                raise CodecError("truncated sender")
            offset += sender_len
            (seq,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            (key_count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            keys = struct.unpack_from(f"<{key_count}I", data, offset)
            offset += 4 * key_count
            (r,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if varint:
                entries = []
                for _ in range(r):
                    value, offset = decode_varint(data, offset)
                    entries.append(value)
            else:
                entries = list(struct.unpack_from(f"<{r}I", data, offset))
                offset += 4 * r
            (payload_len,) = struct.unpack_from("<I", data, offset)
            offset += 4
            if len(data) < offset + payload_len:
                raise CodecError("truncated payload")
            payload = self._payload_codec.decode(data[offset : offset + payload_len])
            offset += payload_len
        except struct.error as exc:
            raise CodecError(f"truncated message: {exc}") from exc

        vector = np.asarray(entries, dtype=np.int64)
        vector.flags.writeable = False
        timestamp = Timestamp(vector=vector, sender_keys=tuple(int(k) for k in keys), seq=seq)
        return Message(sender=sender, seq=seq, timestamp=timestamp, payload=payload)

    def encoded_size(self, message: Message) -> int:
        """Wire size in bytes (for overhead accounting)."""
        return len(self.encode(message))
