"""The batched delivery engine: entry-indexed pending buffer + seen filter.

This module holds the two data structures behind the protocol hot path
(:mod:`repro.core.protocol`):

* :class:`PendingBuffer` — the queue of received-but-not-yet-deliverable
  messages, stored as one contiguous 2-D ``int64`` matrix of precomputed
  *adjusted* threshold vectors.  A bulk deliverability check over the
  whole queue is a single ``(V_i >= A).all(axis=1)`` NumPy pass instead
  of one :meth:`~repro.core.clocks.EntryVectorClock.is_deliverable`
  dispatch per message.  On top of the matrix sits a **per-entry wakeup
  index** exploiting Algorithm 2's structure: delivering a message from
  ``p_j`` only increments the entries ``f(p_j)``, so only pending
  messages whose *unsatisfied* entries intersect ``f(p_j)`` can possibly
  have become deliverable.  A drain therefore costs amortised
  ``O(K + unblocked · R)`` per delivery instead of the naive reference
  drain's ``O(P · R)`` full rescan.

* :class:`SeenFilter` — duplicate suppression in ``O(senders)`` memory:
  per sender, a *contiguous-prefix watermark* (every 1-based seq up to it
  has been seen) plus a sparse out-of-order tail.  Because senders number
  their messages densely, the tail stays small (bounded by per-sender
  reordering depth) and collapses into the watermark as gaps fill,
  whereas the plain ``set`` of ``(sender, seq)`` ids it replaces grew
  with the total message count of the run.

Delivery-order equivalence
--------------------------

:meth:`PendingBuffer.drain` reproduces **exactly** the delivery order of
the reference drain (repeated full passes over the queue in receive
order until a pass makes no progress).  The wakeup index tells us *which*
messages to recheck; a min-heap keyed by arrival rank tells us *when*
naive pass iteration would have reached them:

* a message unblocked by a delivery *earlier* in the queue is delivered
  within the same pass (the naive pass would reach its position later);
* a message unblocked by a delivery *later* in the queue waits for the
  next pass (the naive pass already went past it).

The invariant making the index sound: every pending message is
registered under **all** of its currently-unsatisfied entries (the index
may lag as a superset — entries only become satisfied over time — so a
message can be woken spuriously, but never missed).  Deliveries are not
the only increments, though: Algorithm 1's *local send* bumps the
sender's own keys too, and when the local key set overlaps a pending
message's unsatisfied entries that send can complete its delivery
condition without any delivery ever touching those entries.  The naive
rescan picks this up for free at the next drain; the index must be told
— :meth:`PendingBuffer.notify_increment` accumulates such out-of-band
increments and the next drain folds them into its initial wakeup wave
(the historical 340-vs-342 wave-order divergence against the reference
was exactly this missed wakeup).  The differential test suite
(``tests/test_pending_differential.py``) checks the equivalence over
randomised multi-sender traces with drops, reorders, duplicates and
interleaved local sends.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["PendingBuffer", "HybridBuffer", "SeenFilter"]

ProcessId = Hashable
Frontiers = Dict[ProcessId, Tuple[int, Tuple[int, ...]]]


class PendingBuffer:
    """Entry-indexed pending queue with a contiguous threshold matrix.

    Rows of the matrix are *slots*; freed slots are reused, and the
    matrix doubles when full.  Items are opaque to the buffer (the
    protocol stores :class:`~repro.core.protocol.Message` objects); the
    buffer only reads the message's precomputed ``adjusted`` threshold.

    Args:
        r: vector size R (row width).
        initial_capacity: starting number of slots.
    """

    __slots__ = (
        "_r",
        "_capacity",
        "_adjusted",
        "_items",
        "_arrival",
        "_entries",
        "_free",
        "_waiting",
        "_count",
        "_arrival_counter",
        "_external",
        "wakeups",
        "spurious_wakeups",
    )

    def __init__(self, r: int, initial_capacity: int = 16) -> None:
        if r <= 0:
            raise ConfigurationError(f"vector size R must be positive, got {r}")
        if initial_capacity <= 0:
            raise ConfigurationError(
                f"initial_capacity must be positive, got {initial_capacity}"
            )
        self._r = r
        self._capacity = initial_capacity
        self._adjusted = np.zeros((initial_capacity, r), dtype=np.int64)
        self._items: List[Any] = [None] * initial_capacity
        self._arrival: List[int] = [0] * initial_capacity
        self._entries: List[Optional[Set[int]]] = [None] * initial_capacity
        self._free: List[int] = list(range(initial_capacity - 1, -1, -1))
        self._waiting: List[Set[int]] = [set() for _ in range(r)]
        self._count = 0
        self._arrival_counter = 0
        self._external: Set[int] = set()
        # Plain ints (no obs dependency): slots examined by the wakeup
        # index, and the subset that was still blocked when rechecked.
        # The spurious/total ratio is the index's precision — the price
        # of registering messages under a (safe) superset of their
        # unsatisfied entries.
        self.wakeups = 0
        self.spurious_wakeups = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Allocated slots (rows of the threshold matrix)."""
        return self._capacity

    def items(self) -> List[Any]:
        """Pending items in arrival (receive) order."""
        slots = [s for s in range(self._capacity) if self._entries[s] is not None]
        slots.sort(key=self._arrival.__getitem__)
        return [self._items[s] for s in slots]

    def waiting_entries(self) -> Set[int]:
        """Entries at least one pending message is registered under."""
        return {e for e in range(self._r) if self._waiting[e]}

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def add(self, item: Any, adjusted: np.ndarray, local_vector: np.ndarray) -> None:
        """Queue a non-deliverable item.

        ``adjusted`` is the message's threshold row; ``local_vector`` the
        receiver's current vector.  The item must genuinely fail the
        delivery condition — an item with no unsatisfied entry would
        never be woken.
        """
        deficit = adjusted > local_vector
        entries = np.nonzero(deficit)[0]
        if entries.size == 0:
            raise ConfigurationError(
                "PendingBuffer.add() requires a non-deliverable item"
            )
        if not self._free:
            self._grow()
        slot = self._free.pop()
        np.copyto(self._adjusted[slot], adjusted)
        self._items[slot] = item
        self._arrival_counter += 1
        self._arrival[slot] = self._arrival_counter
        registered = {int(e) for e in entries}
        self._entries[slot] = registered
        for entry in registered:
            self._waiting[entry].add(slot)
        self._count += 1

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        grown = np.zeros((new_capacity, self._r), dtype=np.int64)
        grown[: self._capacity] = self._adjusted
        self._adjusted = grown
        self._items.extend([None] * self._capacity)
        self._arrival.extend([0] * self._capacity)
        self._entries.extend([None] * self._capacity)
        self._free.extend(range(new_capacity - 1, self._capacity - 1, -1))
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    # out-of-band increments
    # ------------------------------------------------------------------

    def notify_increment(self, keys: Iterable[int]) -> None:
        """Record vector increments that happened outside a drain.

        Algorithm 1's local send bumps the sender's own keys without any
        delivery; when those entries overlap a pending message's
        unsatisfied set, the message may now pass the delivery condition
        even though no future delivery will ever touch its registered
        entries.  The accumulated keys are folded into the initial
        wakeup wave of the next :meth:`drain` — matching the naive
        reference, which only ever delivers during a drain but rescans
        everything when it does.
        """
        if self._count:
            self._external.update(int(key) for key in keys)

    # ------------------------------------------------------------------
    # bulk check
    # ------------------------------------------------------------------

    def ready_mask(self, local_vector: np.ndarray) -> Tuple[List[int], np.ndarray]:
        """One vectorised deliverability pass over the **whole** queue.

        Returns ``(slots, mask)``: the active slots in arrival order and
        a boolean array marking which are deliverable under
        ``local_vector``.  This is the ``(V_i >= A).all(axis=1)``
        operation; :meth:`drain` uses the sharper entry-indexed wakeups
        instead, but bulk consumers (diagnostics, the differential test)
        get the one-shot form here.
        """
        slots = [s for s in range(self._capacity) if self._entries[s] is not None]
        slots.sort(key=self._arrival.__getitem__)
        if not slots:
            return slots, np.zeros(0, dtype=bool)
        rows = self._adjusted[np.asarray(slots, dtype=np.intp)]
        mask = (local_vector >= rows).all(axis=1)
        return slots, mask

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def drain(
        self,
        local_vector: np.ndarray,
        touched_keys: Iterable[int],
        deliver: Callable[[Any], Sequence[int]],
    ) -> int:
        """Deliver every item unblocked by increments at ``touched_keys``.

        ``local_vector`` must be a *live view* of the receiver's vector
        (it is re-read after every delivery).  ``deliver(item)`` performs
        the actual delivery — including the clock increment — and returns
        the entry keys that increment touched (the sender's ``f(p_j)``).
        Returns the number of deliveries.  Delivery order matches the
        naive multi-pass reference drain exactly (see module docstring).
        """
        delivered = 0
        if self._external:
            # Fold out-of-band increments (local sends since the last
            # drain) into the trigger's wakeup set: their slots behave
            # exactly like wave-1 candidates, which is where the naive
            # pass-1 rescan would find them.
            self._external.update(int(key) for key in touched_keys)
            wave = self._collect(self._external)
            self._external.clear()
        else:
            wave = self._collect(touched_keys)
        while wave:
            self.wakeups += len(wave)
            slots = np.fromiter(wave, dtype=np.intp, count=len(wave))
            deficits = self._adjusted[slots] > local_vector
            blocked = deficits.any(axis=1)
            heap: List[Tuple[int, int]] = []
            scheduled: Set[int] = set()
            next_wave: Set[int] = set()
            for position, slot in enumerate(slots):
                slot = int(slot)
                if blocked[position]:
                    self.spurious_wakeups += 1
                    self._reindex(slot, deficits[position])
                else:
                    heap.append((self._arrival[slot], slot))
                    scheduled.add(slot)
            heapq.heapify(heap)
            while heap:
                arrival, slot = heapq.heappop(heap)
                item = self._take(slot)
                keys = deliver(item)
                delivered += 1
                for woken in self._collect(keys):
                    if woken in scheduled or woken in next_wave:
                        continue
                    self.wakeups += 1
                    deficit = self._adjusted[woken] > local_vector
                    if deficit.any():
                        self.spurious_wakeups += 1
                        self._reindex(woken, deficit)
                    elif self._arrival[woken] > arrival:
                        # The naive pass would reach this queue position
                        # after the delivery that unblocked it: same pass.
                        heapq.heappush(heap, (self._arrival[woken], woken))
                        scheduled.add(woken)
                    else:
                        # Unblocked by a delivery behind it in the queue:
                        # the naive pass already went past — next pass.
                        next_wave.add(woken)
            wave = next_wave
        return delivered

    def _collect(self, keys: Iterable[int]) -> Set[int]:
        """Slots registered under any of the touched entries."""
        woken: Set[int] = set()
        waiting = self._waiting
        for key in keys:
            bucket = waiting[key]
            if bucket:
                woken.update(bucket)
        return woken

    def _reindex(self, slot: int, deficit: np.ndarray) -> None:
        """Shrink a slot's registrations to its current unsatisfied set."""
        still_unsatisfied = {int(e) for e in np.nonzero(deficit)[0]}
        registered = self._entries[slot]
        for entry in registered - still_unsatisfied:
            self._waiting[entry].discard(slot)
        self._entries[slot] = still_unsatisfied

    def _take(self, slot: int) -> Any:
        """Remove a slot from the buffer and the wakeup index."""
        for entry in self._entries[slot]:
            self._waiting[entry].discard(slot)
        self._entries[slot] = None
        item = self._items[slot]
        self._items[slot] = None
        self._free.append(slot)
        self._count -= 1
        return item


class _HybridSlot:
    """One queued message of :class:`HybridBuffer` (arrival-stamped)."""

    __slots__ = ("item", "adjusted", "arrival", "sender")

    def __init__(self, item: Any, adjusted: np.ndarray, arrival: int, sender: ProcessId):
        self.item = item
        self.adjusted = adjusted
        self.arrival = arrival
        self.sender = sender


class HybridBuffer:
    """Per-sender seq-sorted pending queues (hybrid buffering).

    The third drain engine, after Almeida's *hybrid buffering* for
    tagless causal delivery: group pending messages by sender and keep
    each group sorted by the sender's sequence number.  The payoff is a
    structural theorem of Algorithm 2 — **deliverability is closed under
    per-sender predecessors**.  If a message ``S`` from sender ``p`` is
    deliverable, every queued earlier message ``F`` of ``p`` is too:
    ``S.V >= F.V`` entrywise (counters are monotone along one sender's
    stream) and ``S.V[x] >= F.V[x] + 1`` on ``S``'s own keys (``S``'s
    send incremented them), so ``V_i >= S.adjusted`` implies
    ``V_i >= F.adjusted``.  The proof only uses "the send incremented
    its own keys", so it holds for static key sets *and* per-message
    (Bloom) key sets.  Consequently the deliverable messages of each
    queue always form a **prefix** of it, and a drain only ever probes
    queue *fronts*: one ``O(R)`` check per blocked sender instead of the
    naive drain's check per blocked *message*.  Space is one slot object
    per message holding a reference to the timestamp's own ``adjusted``
    row — no threshold matrix, no per-entry index.

    Delivery order is **identical** to the reference naive drain (and
    therefore to :class:`PendingBuffer`): the probabilistic condition
    can admit a later seq while an earlier seq of the same sender is
    missing entirely, so queues are not FIFO-popped — any deliverable
    prefix member can go, in the naive pass order.  The same wave/heap
    schedule as :meth:`PendingBuffer.drain` reproduces that order: a
    message whose front became deliverable after a delivery *earlier* in
    arrival order joins the current pass; one unblocked by a delivery
    *behind* it waits for the next pass.  The differential suite
    (``tests/test_pending_differential.py``) checks the equivalence over
    randomized traces with drops, reorders and duplicates.

    Queued items must expose ``sender`` and ``seq`` attributes (the
    protocol's :class:`~repro.core.protocol.Message` does).

    Args:
        r: vector size R (checked against nothing here, kept for
            interface parity with :class:`PendingBuffer`).
    """

    __slots__ = (
        "_r",
        "_queues",
        "_slots",
        "_next_slot",
        "_arrival_counter",
        "wakeups",
        "spurious_wakeups",
    )

    def __init__(self, r: int) -> None:
        if r <= 0:
            raise ConfigurationError(f"vector size R must be positive, got {r}")
        self._r = r
        # sender -> ascending list of (seq, slot id); slot id -> slot.
        self._queues: Dict[ProcessId, List[Tuple[int, int]]] = {}
        self._slots: Dict[int, _HybridSlot] = {}
        self._next_slot = 0
        self._arrival_counter = 0
        # Same counters as PendingBuffer: fronts probed, and the subset
        # still blocked when probed (the cost of senders whose head-of-
        # line message stays missing).
        self.wakeups = 0
        self.spurious_wakeups = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def sender_count(self) -> int:
        """Distinct senders with at least one pending message."""
        return len(self._queues)

    def items(self) -> List[Any]:
        """Pending items in arrival (receive) order."""
        ordered = sorted(self._slots.values(), key=lambda slot: slot.arrival)
        return [slot.item for slot in ordered]

    def add(self, item: Any, adjusted: np.ndarray, local_vector: np.ndarray) -> None:
        """Queue a non-deliverable item under its sender.

        Same contract as :meth:`PendingBuffer.add`; ``adjusted`` is held
        by reference (it is the timestamp's frozen cached row).
        """
        if not bool((adjusted > local_vector).any()):
            raise ConfigurationError(
                "HybridBuffer.add() requires a non-deliverable item"
            )
        sender = getattr(item, "sender", None)
        seq = getattr(item, "seq", None)
        if sender is None or seq is None:
            raise ConfigurationError(
                "HybridBuffer items must expose sender and seq attributes"
            )
        slot = self._next_slot
        self._next_slot += 1
        self._arrival_counter += 1
        self._slots[slot] = _HybridSlot(item, adjusted, self._arrival_counter, sender)
        queue = self._queues.setdefault(sender, [])
        bisect.insort(queue, (int(seq), slot))

    def notify_increment(self, keys: Iterable[int]) -> None:
        """Interface parity with :meth:`PendingBuffer.notify_increment`.

        A no-op: the hybrid drain re-probes **every** queue front each
        wave regardless of which entries were touched, so out-of-band
        increments (local sends) are picked up without bookkeeping.
        """

    def drain(
        self,
        local_vector: np.ndarray,
        touched_keys: Iterable[int],
        deliver: Callable[[Any], Sequence[int]],
    ) -> int:
        """Deliver every item the current ``local_vector`` admits.

        Same contract and delivery order as :meth:`PendingBuffer.drain`;
        ``touched_keys`` is accepted for interface parity but unused —
        the prefix property makes queue fronts the complete recheck set.
        """
        delivered = 0
        wave = self._deliverable_fronts(local_vector, ())
        while wave:
            heap: List[Tuple[int, int]] = [
                (self._slots[slot].arrival, slot) for slot in wave
            ]
            heapq.heapify(heap)
            scheduled: Set[int] = set(wave)
            next_wave: Set[int] = set()
            while heap:
                arrival, slot = heapq.heappop(heap)
                item = self._take(slot)
                deliver(item)
                delivered += 1
                skip = scheduled | next_wave
                for woken in self._deliverable_fronts(local_vector, skip):
                    if self._slots[woken].arrival > arrival:
                        # The naive pass would reach this queue position
                        # after the delivery that unblocked it: same pass.
                        heapq.heappush(heap, (self._slots[woken].arrival, woken))
                        scheduled.add(woken)
                    else:
                        # Unblocked by a delivery behind it in the queue:
                        # the naive pass already went past — next pass.
                        next_wave.add(woken)
            wave = next_wave
        return delivered

    def _deliverable_fronts(
        self, local_vector: np.ndarray, skip: Iterable[int]
    ) -> Set[int]:
        """Deliverable queue-prefix slots not already scheduled.

        Walks each sender queue from the front; slots in ``skip`` are
        known-deliverable (scheduled or deferred to the next pass) and
        are stepped over, the walk stopping at the first genuinely
        blocked message (everything behind it is blocked too, by the
        prefix property).
        """
        skip_set = skip if isinstance(skip, set) else set(skip)
        found: Set[int] = set()
        for queue in self._queues.values():
            for _, slot in queue:
                if slot in skip_set:
                    continue
                self.wakeups += 1
                if bool((local_vector >= self._slots[slot].adjusted).all()):
                    found.add(slot)
                else:
                    self.spurious_wakeups += 1
                    break
        return found

    def _take(self, slot: int) -> Any:
        """Remove a slot from its sender queue and return its item."""
        entry = self._slots.pop(slot)
        queue = self._queues[entry.sender]
        for position, (_, queued) in enumerate(queue):
            if queued == slot:
                del queue[position]
                break
        if not queue:
            del self._queues[entry.sender]
        return entry.item


class SeenFilter:
    """Duplicate suppression in O(senders) memory.

    Message ids are ``(sender, seq)`` with a dense, 1-based, per-sender
    ``seq``.  Per sender the filter keeps a contiguous-prefix *watermark*
    ``w`` (every seq ``<= w`` seen) plus the sparse set of seqs beyond
    the first gap; tail entries merge into the watermark as gaps fill,
    so steady-state memory is one integer per sender plus the transient
    reordering depth — instead of one set element per message ever seen.

    The ``(watermark, sorted tail)`` shape doubles as the journal /
    anti-entropy *frontier* representation, so recovered coverage can be
    adopted wholesale (:meth:`restore`) instead of replaying one
    ``add()`` per historical message.
    """

    __slots__ = ("_watermark", "_tail")

    def __init__(self) -> None:
        self._watermark: Dict[ProcessId, int] = {}
        self._tail: Dict[ProcessId, Set[int]] = {}

    def __contains__(self, message_id: Tuple[ProcessId, int]) -> bool:
        sender, seq = message_id
        if seq <= self._watermark.get(sender, 0):
            return True
        tail = self._tail.get(sender)
        return tail is not None and seq in tail

    def __len__(self) -> int:
        """Total distinct ids seen (reconstructed, not stored)."""
        return sum(self._watermark.values()) + sum(
            len(tail) for tail in self._tail.values()
        )

    @property
    def sender_count(self) -> int:
        """Distinct senders tracked."""
        return len(self._watermark.keys() | self._tail.keys())

    @property
    def tail_size(self) -> int:
        """Sparse out-of-order ids currently held (the real memory cost)."""
        return sum(len(tail) for tail in self._tail.values())

    def add(self, message_id: Tuple[ProcessId, int]) -> bool:
        """Record an id; returns True when it was new."""
        sender, seq = message_id
        if seq < 1:
            raise ConfigurationError(f"message seq must be >= 1, got {seq}")
        mark = self._watermark.get(sender, 0)
        if seq <= mark:
            return False
        tail = self._tail.get(sender)
        if seq == mark + 1:
            mark += 1
            if tail:
                while mark + 1 in tail:
                    mark += 1
                    tail.discard(mark)
                if not tail:
                    del self._tail[sender]
            self._watermark[sender] = mark
            return True
        if tail is None:
            tail = self._tail[sender] = set()
        elif seq in tail:
            return False
        tail.add(seq)
        return True

    def watermark(self, sender: ProcessId) -> int:
        """The sender's contiguous prefix (0 when unknown)."""
        return self._watermark.get(sender, 0)

    def frontiers(self) -> Frontiers:
        """Per-sender ``(watermark, sorted tail)`` — journal-ready."""
        senders = self._watermark.keys() | self._tail.keys()
        return {
            sender: (
                self._watermark.get(sender, 0),
                tuple(sorted(self._tail.get(sender, ()))),
            )
            for sender in senders
        }

    def restore(self, frontiers: Frontiers) -> None:
        """Adopt recovered coverage wholesale (empty filter only).

        O(senders + tail), not O(total messages) — this is what keeps a
        crash recovery from looping over every historical seq.
        """
        if self._watermark or self._tail:
            raise ConfigurationError("restore() requires an empty SeenFilter")
        for sender, (watermark, extras) in frontiers.items():
            if watermark < 0:
                raise ConfigurationError(
                    f"watermark must be >= 0, got {watermark} for {sender!r}"
                )
            if watermark > 0:
                self._watermark[sender] = int(watermark)
            tail = {int(seq) for seq in extras if int(seq) > watermark}
            if len(tail) != len(tuple(extras)):
                raise ConfigurationError(
                    f"tail of {sender!r} overlaps its watermark: {extras}"
                )
            if tail:
                self._tail[sender] = tail
                if sender not in self._watermark:
                    self._watermark[sender] = 0
