"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one type to handle any library-level failure.  More
specific subclasses distinguish configuration mistakes from protocol-level
violations detected at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a component is built with inconsistent parameters.

    Examples: a key count ``K`` larger than the vector size ``R``, a
    negative rate, or a ``set_id`` outside ``[0, C(R, K))``.
    """


class RankOutOfRangeError(ConfigurationError):
    """Raised when a combination rank does not address any K-subset."""


class DuplicateMessageError(ReproError):
    """Raised when the same message identifier is delivered twice."""


class UnknownProcessError(ReproError, KeyError):
    """Raised when an operation references a process id never registered."""


class CausalityViolationError(ReproError):
    """Raised by strict components when a causal-order violation is proven.

    The probabilistic protocol never raises this on its own (violations are
    *expected* at a low rate); it is raised by the ground-truth oracle when
    it is configured in ``strict`` mode, and by CRDTs that cannot apply an
    operation whose causal predecessors are missing.
    """


class SimulationError(ReproError):
    """Raised when the discrete-event simulation reaches an invalid state."""


class MembershipError(ReproError):
    """Raised on invalid join/leave transitions (e.g. removing a non-member)."""
