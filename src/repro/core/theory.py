"""Closed-form error analysis of the mechanism (Section 5.3).

The paper bounds the probability of a wrong delivery by
``P <= P_nc * P_err`` where

* ``P_nc`` is the probability that a message is *received* after a message
  it causally precedes (network reordering — a property of the system, not
  of the mechanism), and
* ``P_err`` is the probability that, given such a reordering, the delayed
  message's ``K`` entries are all covered by concurrent traffic, following
  the same scheme as the false-positive analysis of a Bloom filter:

  .. math::

      P_{err}(R, K, X) = \\left(1 - (1 - 1/R)^{K X}\\right)^K

  with ``X`` the number of concurrent messages (messages broadcast during
  one network transit time).  ``P_err`` is minimised at
  ``K_opt = ln 2 · R / X``.

The functions here are pure and exact (up to float rounding); the
``bench_theory_accuracy`` benchmark compares them against measured rates
from the simulator, and ``bench_fig3_optimal_k`` checks the predicted
optimum against the empirical one (the paper: theory 3.5, measured 4).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "p_entry_covered",
    "p_error",
    "optimal_k",
    "optimal_k_int",
    "predicted_error_series",
    "expected_concurrency",
    "p_reorder_same_sender",
    "p_violation_bound",
    "p_fp",
    "timestamp_overhead_bits",
]


def _validate(r: int, k: float, x: float) -> None:
    if r <= 0:
        raise ConfigurationError(f"R must be positive, got {r}")
    if k < 1 or k > r:
        raise ConfigurationError(f"K must satisfy 1 <= K <= R, got K={k}, R={r}")
    if x < 0:
        raise ConfigurationError(f"concurrency X must be >= 0, got {x}")


def p_entry_covered(r: int, k: float, x: float) -> float:
    """Probability that one given entry is incremented by ``x`` concurrent
    messages, each touching ``k`` uniformly random entries of an ``r``-entry
    vector: ``1 - (1 - 1/r)^(k*x)``.
    """
    _validate(r, k, x)
    return 1.0 - (1.0 - 1.0 / r) ** (k * x)


def p_error(r: int, k: float, x: float) -> float:
    """The paper's Bloom-filter-style bound on a covered (bypassable)
    message: all ``k`` entries of the missing message matched by ``x``
    concurrent messages.

    ``k`` may be fractional so the continuous optimum can be inspected.
    """
    return p_entry_covered(r, k, x) ** k


def optimal_k(r: int, x: float) -> float:
    """The continuous minimiser of :func:`p_error`: ``ln 2 · r / x``.

    For the paper's running configuration (R=100, X=20) this is ≈ 3.47,
    which the text rounds to 3.5.
    """
    if r <= 0:
        raise ConfigurationError(f"R must be positive, got {r}")
    if x <= 0:
        raise ConfigurationError(f"concurrency X must be > 0, got {x}")
    return math.log(2.0) * r / x


def optimal_k_int(r: int, x: float, k_max: int = None) -> int:
    """The integer ``K`` in ``[1, k_max]`` that minimises :func:`p_error`.

    Scans the integer neighbourhood (the function is unimodal in ``k``)
    rather than rounding the continuous optimum, so boundary cases
    (``K=1`` best when ``x`` is huge) come out right.  Unimodality also
    means the first non-improving step ends the scan: the walk costs
    ``O(K_opt)``, not ``O(R)`` — which matters to callers evaluating it
    per epoch, like the adaptive clock-sizing controller.
    """
    upper = r if k_max is None else min(k_max, r)
    if upper < 1:
        raise ConfigurationError(f"k_max must allow at least K=1, got {k_max}")
    best_k = 1
    best_value = p_error(r, 1, x)
    for k in range(2, upper + 1):
        value = p_error(r, k, x)
        if value < best_value:
            best_k, best_value = k, value
        else:
            # Past the minimum: P_err only grows from here on.  A tie
            # keeps the smaller K (same choice the full scan made, since
            # only strict improvement ever advanced it).
            break
    return best_k


def predicted_error_series(
    r: int, x: float, ks: Iterable[float]
) -> List[Tuple[float, float]]:
    """``[(k, P_err(r, k, x)), ...]`` for plotting against measurements.

    ``ks`` may contain fractional values — :func:`p_error` accepts them
    so the continuous optimum (≈ 3.47 for the paper's R=100, X=20) can
    sit on the same curve as the integer grid; each ``k`` is evaluated
    exactly as given, never truncated.
    """
    return [(float(k), p_error(r, float(k), x)) for k in ks]


def expected_concurrency(
    receive_rate_per_second: float, propagation_time_ms: float
) -> float:
    """The paper's ``X``: mean number of messages in flight towards a node
    during one network transit.

    ``X = receive_rate × propagation_time``.  In the paper's headline
    configuration each node receives 200 msg/s and the mean propagation
    time is 100 ms, giving X = 20.

    Args:
        receive_rate_per_second: aggregate rate of messages *arriving* at
            one node (≈ (N−1) × per-node send rate for full broadcast).
        propagation_time_ms: mean one-way network latency in milliseconds.
    """
    if receive_rate_per_second < 0:
        raise ConfigurationError(
            f"receive rate must be >= 0, got {receive_rate_per_second}"
        )
    if propagation_time_ms < 0:
        raise ConfigurationError(
            f"propagation time must be >= 0, got {propagation_time_ms}"
        )
    return receive_rate_per_second * propagation_time_ms / 1000.0


def p_reorder_same_sender(mean_send_interval_ms: float, delay_std_ms: float) -> float:
    """Probability that two consecutive messages of one sender arrive
    reordered at a receiver (a lower bound on the system's ``P_nc``).

    Model (matching the simulator): the sender's inter-send gap is
    exponential with mean ``mean_send_interval_ms``; each message's delay
    is Gaussian with standard deviation ``delay_std_ms`` (the mean cancels
    out).  The second message overtakes the first when
    ``D2 + gap < D1``, i.e. ``D1 − D2 > gap`` with
    ``D1 − D2 ~ N(0, 2·σ²)``.  Averaging over the exponential gap:

    .. math::

        P = \\int_0^\\infty \\frac{e^{-g/\\mu}}{\\mu}
            \\; Q\\!\\left(\\frac{g}{\\sqrt{2}\\sigma}\\right) dg

    evaluated here by closed-form using the Gaussian MGF identity
    ``E[Q((g)/s)] = e^{s^2/(2 mu^2)} Q(s/mu) ...``; we instead use simple
    numerical quadrature, which is exact to ~1e-10 for all sane inputs.
    """
    if mean_send_interval_ms <= 0:
        raise ConfigurationError(
            f"mean send interval must be > 0, got {mean_send_interval_ms}"
        )
    if delay_std_ms < 0:
        raise ConfigurationError(f"delay std must be >= 0, got {delay_std_ms}")
    if delay_std_ms == 0:
        return 0.0
    sigma = math.sqrt(2.0) * delay_std_ms
    mu = mean_send_interval_ms

    def q_function(z: float) -> float:
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    # Trapezoidal quadrature over the exponential gap density; the
    # integrand decays like exp(-g/mu) so 12 mean-lifetimes suffice.
    steps = 4096
    upper = 12.0 * mu
    h = upper / steps
    total = 0.0
    for i in range(steps + 1):
        g = i * h
        weight = 0.5 if i in (0, steps) else 1.0
        total += weight * math.exp(-g / mu) / mu * q_function(g / sigma)
    return total * h


def p_violation_bound(p_nc: float, r: int, k: int, x: float) -> float:
    """The paper's overall bound ``P <= P_nc · P_err(R, K, X)``."""
    if not 0.0 <= p_nc <= 1.0:
        raise ConfigurationError(f"P_nc must lie in [0, 1], got {p_nc}")
    return p_nc * p_error(r, k, x)


def p_fp(m: int, h: int, inserts: float) -> float:
    """Bloom-clock false-positive curve: the analogue of ``P_err(R, K, X)``.

    Probability that ``inserts`` concurrent events — each incrementing
    ``h`` hashed cells of an ``m``-counter Bloom clock — cover all ``h``
    cells of a missing event, making it look causally ordered:

    .. math::

        p_{fp}(m, h, X) = \\left(1 - (1 - 1/m)^{h X}\\right)^h

    This is *structurally identical* to the paper's ``P_err``: both are
    the textbook Bloom-filter covering computation, the families
    differing only in whether the cells are drawn once per process
    (static ``f(p_i)``) or once per event (the Bloom clock's
    ``f(owner, seq)``).  The shared formula is why the (R, K) clock can
    be read as "a Bloom clock with static keys", and it lets both rows
    of the clock-family table be predicted by one curve.  Minimised at
    ``h = ln 2 · m / X`` (:func:`optimal_k`, with ``m``, ``X`` in place
    of ``r``, ``x``).

    Args:
        m: number of Bloom counters (the family's ``R``).
        h: cells incremented per event (plays ``K``).
        inserts: concurrent events during one transit (the paper's ``X``).
    """
    return p_error(m, h, inserts)


def timestamp_overhead_bits(r: int, k: int, bits_per_entry: int = 32) -> int:
    """Wire overhead of one timestamp for the clock-family table:
    ``R`` counters plus ``K`` key indices of ``ceil(log2 R)`` bits each.
    """
    if r <= 0:
        raise ConfigurationError(f"R must be positive, got {r}")
    if not 1 <= k <= r:
        raise ConfigurationError(f"need 1 <= K <= R, got K={k}, R={r}")
    key_bits = 0 if r == 1 else k * max(1, (r - 1).bit_length())
    return r * bits_per_entry + key_bits
