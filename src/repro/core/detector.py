"""Delivery-error detection (Section 4.2, Algorithms 4 and 5).

The probabilistic mechanism may deliver a message although some causal
predecessor is still missing.  Applications recover from such a state with
an out-of-band procedure (e.g. anti-entropy), which is costly — so the
paper adds a cheap *alert* evaluated right before every delivery:

* **Algorithm 4** (:class:`BasicAlertDetector`): before delivering ``m``
  from ``p_j``, if *no* entry ``x ∈ f(p_j)`` satisfies
  ``V_i[x] = m.V[x] − 1``, then concurrent messages have covered all the
  sender's entries and the delivery may be premature → raise an alert.
  The key guarantee is one-sided: **no alert implies no error**.  Alerts
  themselves greatly over-estimate the number of violations.

* **Algorithm 5** (:class:`RefinedAlertDetector`): additionally require
  that some message in a list ``L`` of recently delivered messages
  dominates ``m`` on the sender's entries ``f(p_j)`` — evidence that the
  covering really came from concurrent traffic.  ``L`` is bounded; the
  paper suggests retaining messages for a window on the order of the
  propagation time, and notes gossip-based dissemination layers keep such
  a list anyway (for duplicate suppression).

Detectors are passive observers: they never change what the protocol
delivers.  The simulator cross-checks their alerts against the
ground-truth oracle to measure precision and recall
(``benchmarks/bench_detector_ablation.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.core.clocks import EntryVectorClock, Timestamp
from repro.core.errors import ConfigurationError

__all__ = [
    "DeliveryErrorDetector",
    "NullDetector",
    "BasicAlertDetector",
    "RefinedAlertDetector",
    "DetectorStats",
]


@dataclass
class DetectorStats:
    """Counters accumulated by a detector over its lifetime."""

    checks: int = 0
    alerts: int = 0

    @property
    def alert_rate(self) -> float:
        """Fraction of checked deliveries that raised an alert."""
        return self.alerts / self.checks if self.checks else 0.0


class DeliveryErrorDetector(ABC):
    """Interface of the pre-delivery alert check.

    :meth:`check` is called by the protocol endpoint with the local clock
    *before* the delivery increment, exactly as the paper prescribes
    ("if run when receiving a message, prior to the deliver function").
    """

    def __init__(self) -> None:
        self.stats = DetectorStats()

    def check(self, clock: EntryVectorClock, timestamp: Timestamp, now: float = 0.0) -> bool:
        """Return True when delivering this message *may* violate causality."""
        self.stats.checks += 1
        alert = self._evaluate(clock, timestamp, now)
        if alert:
            self.stats.alerts += 1
        return alert

    def on_delivered(self, timestamp: Timestamp, now: float = 0.0) -> None:
        """Observe a completed delivery (hook for stateful detectors)."""

    @abstractmethod
    def _evaluate(self, clock: EntryVectorClock, timestamp: Timestamp, now: float) -> bool:
        """Detector-specific alert predicate."""


class NullDetector(DeliveryErrorDetector):
    """Detector that never raises an alert (baseline / disabled)."""

    def _evaluate(self, clock: EntryVectorClock, timestamp: Timestamp, now: float) -> bool:
        return False


def _all_sender_entries_covered(clock: EntryVectorClock, timestamp: Timestamp) -> bool:
    """True when no sender entry sits exactly one below the message value.

    At delivery time Algorithm 2 guarantees ``V_i[x] >= m.V[x] - 1`` on the
    sender's entries, so "no entry equals ``m.V[x] - 1``" is equivalent to
    "every sender entry already reached ``m.V[x]``": the increments this
    message should have contributed were all supplied by concurrent
    messages sharing those entries.
    """
    local = clock.vector_view()[timestamp.sender_keys_array]
    sent = timestamp.vector[timestamp.sender_keys_array]
    return bool(np.all(local >= sent))


class BasicAlertDetector(DeliveryErrorDetector):
    """Algorithm 4: alert when all sender entries are already covered.

    Sound in one direction only — when it stays silent, the delivery is
    provably consistent with everything the mechanism can observe; when it
    fires, the delivery *may or may not* be a violation (the paper notes
    this over-estimates errors heavily under load).
    """

    def _evaluate(self, clock: EntryVectorClock, timestamp: Timestamp, now: float) -> bool:
        return _all_sender_entries_covered(clock, timestamp)


@dataclass(frozen=True)
class _RecentEntry:
    time: float
    timestamp: Timestamp


class RefinedAlertDetector(DeliveryErrorDetector):
    """Algorithm 5: Algorithm 4's alert filtered through a recent list L.

    An alert fires only when (a) all sender entries are covered, *and*
    (b) some recently delivered message dominates the incoming message on
    the sender's entries — i.e. we can exhibit a concrete prior delivery
    that consumed the values this message depends on.

    Args:
        window: retain delivered messages for this long (simulation time
            units); the paper recommends ``O(T_propagation)``.  ``None``
            disables age-based eviction.
        max_entries: hard bound on the length of L (keeps memory bounded
            even when time stands still, e.g. in unit tests).
        strict_domination: the paper's pseudo-code compares the local
            vector with a strict ``>`` in conjunct (a) while Algorithm 4
            uses the equivalent-of-``>=`` form; the published text is
            ambiguous ("V_i[x] > m.V_i[x]").  The default ``False``
            mirrors Algorithm 4's covering test so that every refined
            alert is also a basic alert (the refinement only removes
            alerts); ``True`` applies the literal strict reading.
    """

    def __init__(
        self,
        window: Optional[float] = None,
        max_entries: int = 1024,
        strict_domination: bool = False,
    ) -> None:
        super().__init__()
        if max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive, got {max_entries}")
        if window is not None and window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self._window = window
        self._max_entries = max_entries
        self._strict = strict_domination
        self._recent: Deque[_RecentEntry] = deque()
        self.evictions = 0  # entries aged out of L by the time window

    @property
    def recent_size(self) -> int:
        """Current length of the recent-deliveries list L."""
        return len(self._recent)

    def on_delivered(self, timestamp: Timestamp, now: float = 0.0) -> None:
        self._recent.append(_RecentEntry(time=now, timestamp=timestamp))
        while len(self._recent) > self._max_entries:
            self._recent.popleft()
        self._evict_old(now)

    def _evict_old(self, now: float) -> None:
        if self._window is None:
            return
        cutoff = now - self._window
        while self._recent and self._recent[0].time < cutoff:
            self._recent.popleft()
            self.evictions += 1

    def _evaluate(self, clock: EntryVectorClock, timestamp: Timestamp, now: float) -> bool:
        self._evict_old(now)
        keys = timestamp.sender_keys_array
        local = clock.vector_view()[keys]
        sent = timestamp.vector[keys]
        covered = bool(np.all(local > sent)) if self._strict else bool(np.all(local >= sent))
        if not covered:
            return False
        for entry in self._recent:
            prior = entry.timestamp
            if prior.size != timestamp.size:
                continue
            if prior.dominates_on(timestamp, keys):
                return True
        return False
