"""Exact combinatorics used by the key-assignment scheme (Algorithm 3).

The paper assigns each process a set of ``K`` distinct entries of an
``R``-entry vector.  A process draws a single integer ``set_id`` in
``[0, C(R, K))`` and expands it into the ``set_id``-th K-subset of
``{0, ..., R-1}``.  Two orderings of K-subsets are in common use and both
are provided here:

* **lexicographic** (`unrank_lex` / `rank_lex`): subsets sorted as tuples,
  e.g. for R=4, K=2: ``(0,1) < (0,2) < (0,3) < (1,2) < (1,3) < (2,3)``.
* **co-lexicographic** (`unrank_colex` / `rank_colex`): subsets sorted by
  their reversed tuples; the classic *combinadic* encoding.

Algorithm 3 of the paper walks candidate values while comparing ``set_id``
against binomial coefficients — a lexicographic unranking.  Its published
pseudo-code is slightly garbled by typesetting (the inner loop never
consumes ``set_id``); :func:`unrank_lex` implements the intended,
well-defined mapping and :func:`rank_lex` its exact inverse.  The paper's
required properties hold for both orderings and are verified by property
tests:

* every ``set_id`` yields exactly ``K`` distinct values in ``[0, R)``;
* distinct ``set_id`` values yield distinct sets, so the intersection of
  the key sets of two processes with different identities has size at most
  ``K - 1``.

All functions use exact integer arithmetic (no floating point), so they
remain correct for very large ``R``.
"""

from __future__ import annotations

from math import comb
from typing import Iterator, Sequence, Tuple

from repro.core.errors import ConfigurationError, RankOutOfRangeError

__all__ = [
    "binomial",
    "num_key_sets",
    "unrank_lex",
    "rank_lex",
    "unrank_colex",
    "rank_colex",
    "iter_combinations_lex",
    "validate_subset",
]


def binomial(n: int, k: int) -> int:
    """Return ``C(n, k)`` exactly; 0 when ``k < 0`` or ``k > n``.

    Thin wrapper over :func:`math.comb` that tolerates out-of-range ``k``
    (useful inside unranking loops) but rejects negative ``n``.
    """
    if n < 0:
        raise ConfigurationError(f"binomial: n must be >= 0, got {n}")
    if k < 0 or k > n:
        return 0
    return comb(n, k)


def num_key_sets(r: int, k: int) -> int:
    """Number of distinct key sets for vector size ``r`` and ``k`` keys.

    This is the size of the ``set_id`` space of the paper: ``C(r, k)``.
    """
    if r <= 0:
        raise ConfigurationError(f"vector size R must be positive, got {r}")
    if not 1 <= k <= r:
        raise ConfigurationError(f"key count K must satisfy 1 <= K <= R, got K={k}, R={r}")
    return comb(r, k)


def _check_rank(rank: int, n: int, k: int) -> None:
    total = binomial(n, k)
    if not 0 <= rank < total:
        raise RankOutOfRangeError(
            f"rank {rank} outside [0, C({n},{k})={total}) for {k}-subsets of {n} items"
        )


def unrank_lex(rank: int, n: int, k: int) -> Tuple[int, ...]:
    """Return the ``rank``-th ``k``-subset of ``{0..n-1}`` in lex order.

    This is the intended semantics of the paper's Algorithm 3: expand a
    ``set_id`` into the key set ``f(p_i)``.  Runs in ``O(n)`` candidate
    steps with ``O(1)`` incremental binomial updates, matching the paper's
    ``O(RK)`` complexity bound (each binomial evaluation costs ``O(K)``
    when computed from scratch; here they are updated multiplicatively).

    >>> [unrank_lex(i, 4, 2) for i in range(6)]
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    """
    if k == 0:
        if rank != 0:
            raise RankOutOfRangeError(f"rank {rank} invalid for k=0")
        return ()
    _check_rank(rank, n, k)
    result = []
    candidate = 0
    remaining = k
    # Number of subsets that keep `candidate` as their smallest element:
    # C(n - candidate - 1, remaining - 1).
    for _ in range(k):
        block = binomial(n - candidate - 1, remaining - 1)
        while rank >= block:
            rank -= block
            candidate += 1
            block = binomial(n - candidate - 1, remaining - 1)
        result.append(candidate)
        candidate += 1
        remaining -= 1
    return tuple(result)


def rank_lex(subset: Sequence[int], n: int) -> int:
    """Inverse of :func:`unrank_lex`: the lex rank of ``subset`` among
    ``len(subset)``-subsets of ``{0..n-1}``.

    >>> rank_lex((1, 3), 4)
    4
    """
    values = validate_subset(subset, n)
    k = len(values)
    rank = 0
    prev = -1
    remaining = k
    for value in values:
        for skipped in range(prev + 1, value):
            rank += binomial(n - skipped - 1, remaining - 1)
        prev = value
        remaining -= 1
    return rank


def unrank_colex(rank: int, n: int, k: int) -> Tuple[int, ...]:
    """Return the ``rank``-th ``k``-subset of ``{0..n-1}`` in colex order
    (the *combinadic* representation: ``rank = sum C(c_i, i+1)`` over the
    ascending elements ``c_0 < c_1 < ... < c_{k-1}``).

    >>> [unrank_colex(i, 4, 2) for i in range(6)]
    [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]
    """
    if k == 0:
        if rank != 0:
            raise RankOutOfRangeError(f"rank {rank} invalid for k=0")
        return ()
    _check_rank(rank, n, k)
    result = [0] * k
    remaining = rank
    candidate = n - 1
    for position in range(k, 0, -1):
        # Largest candidate with C(candidate, position) <= remaining.
        while binomial(candidate, position) > remaining:
            candidate -= 1
        result[position - 1] = candidate
        remaining -= binomial(candidate, position)
    return tuple(result)


def rank_colex(subset: Sequence[int], n: int) -> int:
    """Inverse of :func:`unrank_colex`.

    ``n`` is accepted for symmetry with :func:`rank_lex` and used only to
    validate the subset.
    """
    values = validate_subset(subset, n)
    return sum(binomial(value, index + 1) for index, value in enumerate(values))


def iter_combinations_lex(n: int, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every ``k``-subset of ``{0..n-1}`` in lexicographic order.

    Equivalent to ``(unrank_lex(i, n, k) for i in range(C(n,k)))`` but
    computed incrementally in ``O(1)`` amortised per subset.
    """
    if k == 0:
        yield ()
        return
    if k > n:
        return
    current = list(range(k))
    while True:
        yield tuple(current)
        # Find the rightmost element that can still be incremented.
        pivot = k - 1
        while pivot >= 0 and current[pivot] == n - k + pivot:
            pivot -= 1
        if pivot < 0:
            return
        current[pivot] += 1
        for tail in range(pivot + 1, k):
            current[tail] = current[tail - 1] + 1


def validate_subset(subset: Sequence[int], n: int) -> Tuple[int, ...]:
    """Check that ``subset`` is a strictly increasing sequence in ``[0, n)``
    and return it as a tuple.  Raises :class:`ConfigurationError` otherwise.
    """
    values = tuple(subset)
    if not values:
        return values
    prev = -1
    for value in values:
        if not isinstance(value, int):
            raise ConfigurationError(f"subset elements must be ints, got {value!r}")
        if value <= prev:
            raise ConfigurationError(f"subset must be strictly increasing, got {values}")
        if not 0 <= value < n:
            raise ConfigurationError(f"subset element {value} outside [0, {n})")
        prev = value
    return values
