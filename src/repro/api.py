"""The one-call assembly API: configure a node, get a running endpoint.

Hand-wiring a deployable participant used to take five constructors
(keyspace → clock → detector → endpoint → transport).  This module
collapses that into a declarative :class:`NodeConfig` plus two factories:

* :func:`create_endpoint` — a transport-less protocol endpoint (any
  member of the (n, r, k) clock family), for embedding in your own I/O;
* :func:`create_node` — a fully wired networked node: UDP transport (or
  any transport you pass), reliable session (acks, retransmission,
  anti-entropy) and the protocol endpoint.

Every point of the paper's design space is one config away::

    from repro.api import NodeConfig, create_node

    config = NodeConfig(r=128, k=3, scheme="probabilistic")
    node = await create_node("alice", config)          # binds loopback UDP
    node.add_peer(("127.0.0.1", 9001))
    await node.start()
    await node.broadcast({"op": "add", "item": "milk"})

The old constructors keep working — this is a facade, not a rewrite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Sequence, Tuple

from repro.core.clocks import EntryVectorClock
from repro.core.codec import JsonPayloadCodec, MessageCodec, RawBytesPayloadCodec
from repro.core.detector import DeliveryErrorDetector
from repro.core.errors import ConfigurationError
from repro.core.keyspace import HashKeyAssigner, KeyAssigner
from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord
from repro.core.registry import (
    ClockBuildContext,
    clock_schemes,
    detector_names,
    get_clock_spec,
    get_detector_spec,
    get_engine_spec,
)
from repro.net.adaptive import AdaptiveClockController, AdaptivePolicy
from repro.net.journal import NodeJournal
from repro.net.liveness import LivenessPolicy
from repro.net.membership import GroupMembership, MembershipConfig
from repro.net.node import ReliableCausalNode
from repro.net.overlay import DEFAULT_MAX_HOPS, PartialView
from repro.net.peer import Transport
from repro.net.session import RetransmitPolicy
from repro.net.udp import BatchedUdpTransport, UdpTransport

__all__ = [
    "NodeConfig",
    "create_clock",
    "create_detector",
    "create_endpoint",
    "create_node",
]

# Snapshots of the registries at import time (the built-ins).  Validation
# resolves through the live registry (repro.core.registry), so schemes,
# detectors and engines registered after import work verbatim.
SCHEMES = clock_schemes()
DETECTORS = detector_names()
PAYLOAD_CODECS = ("json", "raw")
IO_MODES = ("batched", "legacy", "mmsg")
DISSEMINATION_MODES = ("mesh", "overlay")

DeliveryHandler = Callable[[DeliveryRecord], None]


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to assemble one causal broadcast participant.

    Clock family (the paper's (a, b, c) design space):

    Attributes:
        r: vector size R (ignored by ``lamport``; equals N for ``vector``).
        k: entries per process K (``probabilistic`` only; the others fix it).
        scheme: ``probabilistic`` (n, r, k) | ``plausible`` (n, r, 1) |
            ``lamport`` (n, 1, 1) | ``vector`` (n, n, 1) | ``bloom``
            (per-event hashed keys) — or any scheme registered through
            :func:`repro.core.registry.register_clock`.
        n: system size; required by ``scheme="vector"`` (it sizes the vector).
        detector: pre-delivery alert check — ``none`` | ``basic``
            (Algorithm 4) | ``refined`` (Algorithm 5).
        keys: explicit key set (overrides the hash-derived assignment).
        keyspace_seed: salts the coordination-free hash key assignment,
            so disjoint deployments draw independent key sets.
        engine: pending-queue drain strategy — ``indexed`` (default, the
            vectorised entry-indexed buffer), ``naive`` (the reference
            full-rescan drain; identical delivery order, kept for
            differential testing), ``auto`` (naive with promotion) or
            ``hybrid`` (per-sender seq-sorted queues) — or any engine
            registered through
            :func:`repro.core.registry.register_engine`.

    Transport and reliability (used by :func:`create_node`):

    Attributes:
        host: bind address for the default UDP transport.
        port: bind port (0 picks an ephemeral port).
        io_mode: how the default UDP transport drives the socket —
            ``batched`` (default: one non-blocking socket draining up to
            ``rx_batch`` datagrams per event-loop wakeup and flushing
            sends in per-tick bursts), ``legacy`` (the per-datagram
            asyncio endpoint), or ``mmsg`` (batched plus an experimental
            ``sendmmsg(2)`` burst path where the platform supports it).
            Ignored when an explicit ``transport`` is passed.
        rx_batch: receive-batch budget — max datagrams drained per
            wakeup (``batched``/``mmsg`` modes).
        tx_batch: send-burst budget — max datagrams written per flush
            pass (``batched``/``mmsg`` modes).
        payload_codec: application payload wire format: ``json`` | ``raw``.
        ack_timeout: initial retransmit timeout in seconds.
        backoff_factor: exponential backoff multiplier per retransmission.
        max_retry_timeout: ceiling on the per-frame timeout.
        max_retries: retransmissions before a frame is left to anti-entropy.
        send_buffer: per-peer unacked-frame bound (backpressure beyond it).
        coalesce_mtu: per-datagram budget for frame coalescing — queued
            frames flush as one BATCH datagram when they fill it; 0
            disables coalescing (one datagram per frame).
        flush_interval: how long a queued frame may wait for company
            before its batch flushes anyway (seconds).
        ack_delay: delayed-ack window — received data is acknowledged
            once per window with one cumulative ACK, piggybacked onto
            outgoing batches when traffic is bidirectional; 0 restores
            ack-per-frame.
        wire_delta: delta-encode broadcast timestamps per link (only the
            entries changed since the last acked full-encoded message
            travel); False always sends the full vector.
        anti_entropy_interval: seconds between digest rounds (0 disables).
        store_limit: bound on the recent-messages store serving anti-entropy.
        max_pending: optional safety bound on the endpoint's pending queue.

    Durability and liveness (used by :func:`create_node`):

    Attributes:
        data_dir: directory for the node's crash journal (WAL +
            snapshots); ``None`` (the default) runs without durability.
            A restart pointed at the same directory resumes with its
            pre-crash vector clock, sequence numbers, and frontiers.
        journal_snapshot_interval: WAL records between snapshots.
        journal_fsync: fsync the WAL per append (survives machine
            crashes, not just process crashes; costly).
        heartbeat_interval: seconds between HEARTBEAT frames to every
            peer; 0 (the default) disables the failure detector.
        quarantine_after: silence after which a peer is quarantined
            (retransmissions pause, broadcasts skip it) until it is
            heard from again.

    Dissemination (used by :func:`create_node`):

    Attributes:
        dissemination: how broadcasts spread — ``mesh`` (the default:
            one reliable unicast per peer, exact but O(N) per
            broadcast at the origin) or ``overlay`` (bounded-fanout
            relay gossip over a partial view: O(fanout) per node per
            broadcast, anti-entropy heals the probabilistic tail).
        fanout: relay targets per push (``overlay`` only).
        view_size: bound on the gossip-maintained partial view
            (``overlay`` only; must be >= ``fanout``).
        piggyback_size: view entries sampled into each outgoing relay
            envelope for membership gossip (``overlay`` only).
        merge_probability: chance a received piggybacked sample is
            folded into the view — the lpbcast throttle against
            rich-get-richer view collapse (``overlay`` only).
        relay_max_hops: forwarding cutoff for relay envelopes
            (``overlay`` only; a healthy wave needs ~log_fanout(N)).

    Dynamic membership (used by :func:`create_node`):

    Attributes:
        membership: run the live group-view layer
            (:class:`~repro.net.membership.GroupMembership`).  With an
            empty ``seed_peers`` the node bootstraps a group of one;
            otherwise :func:`create_node` joins it through the seeds
            before returning.
        seed_peers: ``(host, port)`` addresses of running members the
            JOIN handshake contacts first.
        join_timeout: seconds to wait for a JOIN_ACK before retrying.
        join_retries: JOIN retransmissions after the first attempt.
        join_backoff: multiplier on the join timeout per attempt.
        evict_after: seconds a member may sit in liveness quarantine
            before the acting coordinator evicts it from the view
            (0 disables forced eviction; needs ``heartbeat_interval``
            > 0 to matter, since quarantine is what ages into it).
        view_announce_interval: seconds between the coordinator's
            periodic VIEW re-announcements and eviction sweeps.

    Adaptive clock sizing (used by :func:`create_node`):

    Attributes:
        adaptive: run the self-tuning (R, K) controller
            (:class:`~repro.net.adaptive.AdaptiveClockController`):
            every ``adaptive_interval`` seconds the node re-estimates
            the in-flight concurrency X from its own metrics stream,
            and the acting coordinator renegotiates the group's K via
            an epoch bump whenever the measured alert rate leaves
            ``adaptive_band``.  Requires ``membership=True``.
        adaptive_interval: seconds between controller decisions.
        adaptive_band: ``(low, high)`` target alert-rate band (alerts
            per delivery); inside it the controller holds.
        adaptive_k_max: upper bound on the negotiated K.
        adaptive_cooldown: minimum seconds between two epoch bumps.

    Observability (used by :func:`create_node`):

    Attributes:
        detector_window: ``detector="refined"`` only — retain delivered
            messages in the recent list L for this many seconds (the
            paper recommends the order of the propagation time);
            ``None`` keeps L bounded by count alone.
        metrics_path: append one metrics-registry snapshot per
            ``metrics_interval`` seconds to this JSONL file (plus a
            final line on close); ``None`` disables the exporter.
        metrics_interval: seconds between JSONL export lines.
        metrics_port: serve Prometheus text at
            ``http://127.0.0.1:<port>/metrics`` (0 picks an ephemeral
            port); ``None`` disables the endpoint.
    """

    r: int = 128
    k: int = 3
    scheme: str = "probabilistic"
    n: Optional[int] = None
    detector: str = "basic"
    keys: Optional[Tuple[int, ...]] = None
    keyspace_seed: int = 0
    engine: str = "indexed"
    host: str = "127.0.0.1"
    port: int = 0
    io_mode: str = "batched"
    rx_batch: int = 32
    tx_batch: int = 32
    payload_codec: str = "json"
    ack_timeout: float = 0.05
    backoff_factor: float = 2.0
    max_retry_timeout: float = 2.0
    max_retries: int = 10
    send_buffer: int = 1024
    coalesce_mtu: int = 1400
    flush_interval: float = 0.001
    ack_delay: float = 0.005
    wire_delta: bool = True
    anti_entropy_interval: float = 0.5
    store_limit: int = 8192
    max_pending: Optional[int] = None
    dissemination: str = "mesh"
    fanout: int = 3
    view_size: int = 12
    piggyback_size: int = 3
    merge_probability: float = 0.25
    relay_max_hops: int = DEFAULT_MAX_HOPS
    data_dir: Optional[str] = None
    journal_snapshot_interval: int = 256
    journal_fsync: bool = False
    heartbeat_interval: float = 0.0
    quarantine_after: float = 2.0
    membership: bool = False
    seed_peers: Tuple[Any, ...] = ()
    join_timeout: float = 1.0
    join_retries: int = 5
    join_backoff: float = 2.0
    evict_after: float = 10.0
    view_announce_interval: float = 2.0
    adaptive: bool = False
    adaptive_interval: float = 5.0
    adaptive_band: Tuple[float, float] = (0.0, 0.05)
    adaptive_k_max: int = 16
    adaptive_cooldown: float = 30.0
    detector_window: Optional[float] = None
    metrics_path: Optional[str] = None
    metrics_interval: float = 1.0
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        # Strict registry validation: unknown scheme / detector / engine
        # strings raise listing the registered names (never a silent
        # fallback — a typo like "basci" must not pick a detector).
        spec = get_clock_spec(self.scheme)
        get_detector_spec(self.detector)
        get_engine_spec(self.engine)
        if self.payload_codec not in PAYLOAD_CODECS:
            raise ConfigurationError(
                f"unknown payload codec {self.payload_codec!r}; "
                f"expected one of {PAYLOAD_CODECS}"
            )
        if self.io_mode not in IO_MODES:
            raise ConfigurationError(
                f"unknown io_mode {self.io_mode!r}; expected one of {IO_MODES}"
            )
        if self.dissemination not in DISSEMINATION_MODES:
            raise ConfigurationError(
                f"unknown dissemination {self.dissemination!r}; "
                f"expected one of {DISSEMINATION_MODES}"
            )
        if self.dissemination == "overlay":
            # Fails fast on bad overlay knobs (the view re-checks).
            self.build_overlay("__validate__")
        if self.rx_batch <= 0:
            raise ConfigurationError(f"rx_batch must be positive, got {self.rx_batch}")
        if self.tx_batch <= 0:
            raise ConfigurationError(f"tx_batch must be positive, got {self.tx_batch}")
        if spec.needs_dense_index and self.n is None:
            raise ConfigurationError(
                f"scheme={self.scheme!r} needs n (the system size)"
            )
        if self.r <= 0:
            raise ConfigurationError(f"vector size R must be positive, got {self.r}")
        if self.k <= 0:
            raise ConfigurationError(f"key count K must be positive, got {self.k}")
        if spec.fixed_k is None and spec.fixed_r is None and self.k > self.r:
            raise ConfigurationError(f"need K <= R, got K={self.k}, R={self.r}")
        if self.anti_entropy_interval < 0:
            raise ConfigurationError(
                f"anti_entropy_interval must be >= 0, got {self.anti_entropy_interval}"
            )
        if self.journal_snapshot_interval <= 0:
            raise ConfigurationError(
                f"journal_snapshot_interval must be positive, "
                f"got {self.journal_snapshot_interval}"
            )
        if self.heartbeat_interval < 0:
            raise ConfigurationError(
                f"heartbeat_interval must be >= 0, got {self.heartbeat_interval}"
            )
        if self.detector_window is not None and self.detector_window <= 0:
            raise ConfigurationError(
                f"detector_window must be > 0, got {self.detector_window}"
            )
        if self.metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got {self.metrics_interval}"
            )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ConfigurationError(
                f"metrics_port must lie in [0, 65535], got {self.metrics_port}"
            )
        if self.seed_peers and not self.membership:
            raise ConfigurationError(
                "seed_peers given but membership=False; enable the "
                "membership layer to join a group"
            )
        if self.membership:
            # Fails fast on bad membership knobs (the layer re-checks).
            self.membership_config()
        if self.adaptive:
            if not self.membership:
                raise ConfigurationError(
                    "adaptive=True needs membership=True: epoch bumps "
                    "are negotiated through the group view"
                )
            # Fails fast on bad controller knobs (the policy re-checks).
            self.adaptive_policy()
        # Fails fast on bad reliability knobs (the session re-checks).
        self.retransmit_policy()
        if self.heartbeat_interval > 0:
            # Fails fast on an inconsistent pair (the policy re-checks).
            LivenessPolicy(
                heartbeat_interval=self.heartbeat_interval,
                quarantine_after=self.quarantine_after,
            )

    def replace(self, **changes: Any) -> "NodeConfig":
        """A copy with the given fields changed (frozen-dataclass helper)."""
        return dataclasses.replace(self, **changes)

    def retransmit_policy(self) -> RetransmitPolicy:
        """The reliability knobs as a session policy."""
        return RetransmitPolicy(
            initial_timeout=self.ack_timeout,
            backoff_factor=self.backoff_factor,
            max_timeout=self.max_retry_timeout,
            max_retries=self.max_retries,
            send_buffer=self.send_buffer,
            coalesce_mtu=self.coalesce_mtu,
            flush_interval=self.flush_interval,
            ack_delay=self.ack_delay,
        )

    def build_overlay(self, node_id: Hashable) -> PartialView:
        """The overlay knobs as a fresh partial view for ``node_id``."""
        return PartialView(
            local_id=node_id,
            fanout=self.fanout,
            view_size=self.view_size,
            piggyback_size=self.piggyback_size,
            merge_probability=self.merge_probability,
            max_hops=self.relay_max_hops,
        )

    def adaptive_policy(self) -> AdaptivePolicy:
        """The adaptive clock-sizing knobs as a controller policy."""
        return AdaptivePolicy(
            interval=self.adaptive_interval,
            band=tuple(self.adaptive_band),
            k_max=self.adaptive_k_max,
            cooldown=self.adaptive_cooldown,
        )

    def membership_config(self) -> MembershipConfig:
        """The dynamic-membership knobs as a layer config."""
        return MembershipConfig(
            seed_peers=tuple(self.seed_peers),
            join_timeout=self.join_timeout,
            join_retries=self.join_retries,
            join_backoff=self.join_backoff,
            evict_after=self.evict_after,
            announce_interval=self.view_announce_interval,
        )


def _hash_keys(node_id: Hashable, config: NodeConfig, k: int) -> Tuple[int, ...]:
    """Coordination-free key assignment: stable per (seed, node id).

    Uses :class:`HashKeyAssigner` so a node leaving and rejoining gets
    the same keys without any shared assigner state — the right default
    for networked nodes that cannot consult a central allocator.
    """
    assigner = HashKeyAssigner(config.r, k)
    return assigner.assign((config.keyspace_seed, node_id)).keys


def create_clock(
    node_id: Hashable,
    config: NodeConfig,
    *,
    index: Optional[int] = None,
    assigner: Optional[KeyAssigner] = None,
) -> EntryVectorClock:
    """Build the configured clock-family member for ``node_id``.

    Resolves the scheme through :mod:`repro.core.registry` and fills a
    :class:`~repro.core.registry.ClockBuildContext` with what the spec's
    capability descriptors declare it needs.

    Args:
        node_id: the process identity (drives hash key assignment).
        config: the node configuration.
        index: dense process index, required by ``scheme="vector"``.
        assigner: optional coordinated :class:`KeyAssigner`; when given,
            ``assigner.assign(node_id)`` replaces the hash assignment
            (key-assignment schemes only).
    """
    spec = get_clock_spec(config.scheme)
    keys: Sequence[int] = ()
    if spec.needs_key_assignment:
        if config.keys is not None:
            keys = config.keys
        elif assigner is not None:
            keys = assigner.assign(node_id).keys
        else:
            keys = _hash_keys(node_id, config, spec.fixed_k or config.k)
    context = ClockBuildContext(
        node_id=node_id,
        r=config.r,
        k=spec.fixed_k or config.k,
        n=config.n,
        index=index,
        keys=tuple(int(key) for key in keys),
    )
    return spec.factory(context)


def create_detector(config: NodeConfig) -> DeliveryErrorDetector:
    """Build the configured delivery-error detector.

    Resolves through the detector registry: an unrecognized name raises
    :class:`ConfigurationError` listing the registered detectors.
    """
    return get_detector_spec(config.detector).build(window=config.detector_window)


def create_endpoint(
    node_id: Hashable,
    config: Optional[NodeConfig] = None,
    *,
    on_delivery: Optional[DeliveryHandler] = None,
    index: Optional[int] = None,
    assigner: Optional[KeyAssigner] = None,
) -> CausalBroadcastEndpoint:
    """Build a transport-less protocol endpoint from a config.

    The endpoint is the pure protocol machine (Algorithms 1–2 plus the
    configured detector); feed it yourself, or use :func:`create_node`
    for the batteries-included networked version.
    """
    config = config if config is not None else NodeConfig()
    return CausalBroadcastEndpoint(
        process_id=str(node_id),
        clock=create_clock(node_id, config, index=index, assigner=assigner),
        detector=create_detector(config),
        deliver_callback=on_delivery,
        max_pending=config.max_pending,
        engine=config.engine,
    )


def _message_codec(config: NodeConfig) -> MessageCodec:
    payload = JsonPayloadCodec() if config.payload_codec == "json" else RawBytesPayloadCodec()
    return MessageCodec(payload_codec=payload, scheme=config.scheme)


async def create_node(
    node_id: Hashable,
    config: Optional[NodeConfig] = None,
    *,
    transport: Optional[Transport] = None,
    on_delivery: Optional[DeliveryHandler] = None,
    index: Optional[int] = None,
    assigner: Optional[KeyAssigner] = None,
    start: bool = True,
) -> ReliableCausalNode:
    """Build (and by default start) a fully wired networked node.

    Args:
        node_id: this node's identity.
        config: the node configuration (defaults to :class:`NodeConfig()`).
        transport: datagram substrate; ``None`` binds a fresh UDP socket
            on ``(config.host, config.port)``.
        on_delivery: synchronous callback per delivery.
        index: dense process index (``scheme="vector"`` only).
        assigner: optional coordinated key assigner (see :func:`create_clock`).
        start: start the retransmit timer and anti-entropy loop before
            returning (pass False to start manually later).
    """
    config = config if config is not None else NodeConfig()
    spec = get_clock_spec(config.scheme)
    if transport is None:
        if config.io_mode == "legacy":
            transport = await UdpTransport.create(host=config.host, port=config.port)
        else:
            transport = await BatchedUdpTransport.create(
                host=config.host,
                port=config.port,
                rx_batch=config.rx_batch,
                tx_batch=config.tx_batch,
                mmsg=config.io_mode == "mmsg",
            )
    clock = create_clock(node_id, config, index=index, assigner=assigner)
    journal = None
    if config.data_dir is not None:
        journal = NodeJournal(
            data_dir=config.data_dir,
            node_id=node_id,
            r=clock.r,
            own_keys=clock.own_keys,
            snapshot_interval=config.journal_snapshot_interval,
            fsync=config.journal_fsync,
        )
    liveness = None
    if config.heartbeat_interval > 0:
        liveness = LivenessPolicy(
            heartbeat_interval=config.heartbeat_interval,
            quarantine_after=config.quarantine_after,
        )
    node = ReliableCausalNode(
        node_id=node_id,
        clock=clock,
        transport=transport,
        detector=create_detector(config),
        codec=_message_codec(config),
        on_delivery=on_delivery,
        policy=config.retransmit_policy(),
        anti_entropy_interval=config.anti_entropy_interval,
        store_limit=config.store_limit,
        max_pending=config.max_pending,
        engine=config.engine,
        journal=journal,
        liveness=liveness,
        overlay=(
            config.build_overlay(node_id)
            if config.dissemination == "overlay"
            else None
        ),
        # Delta wire encoding reconstructs sender keys from a static
        # per-sender table; schemes that draw keys per message (bloom)
        # cannot use it, whatever the config says.
        wire_delta=config.wire_delta and not spec.per_message_keys,
        metrics_path=config.metrics_path,
        metrics_interval=config.metrics_interval,
        metrics_port=config.metrics_port,
    )
    if config.membership:
        GroupMembership(node, config.membership_config(), assigner=assigner)
    if config.adaptive:
        node.adaptive = AdaptiveClockController(node, config.adaptive_policy())
    if start:
        await node.start()
        if node.membership is not None:
            if config.seed_peers:
                await node.membership.join()
            else:
                node.membership.bootstrap()
    return node
