"""JSONL metrics export: one registry snapshot per line.

The exporter is the durable half of the observability story: the HTTP
endpoint answers "what is happening now", the JSONL file answers "what
happened" — it is what the metered soak uploads from CI, what
``repro stats`` renders, and what the alert-rate sanity gate reads.

Each line is the :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
dict plus two timestamps: ``ts`` (the caller's monotonic clock, so
intervals between lines are exact) and ``wall`` (Unix epoch seconds, so
a human can line the file up with logs).  Appending is crash-friendly:
one ``write`` + ``flush`` per line, and the reader skips torn trailing
lines instead of failing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["JsonlExporter", "read_snapshots", "last_snapshot"]


class JsonlExporter:
    """Append registry snapshots to a JSONL file, one dict per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self.lines_written = 0

    def export(self, snapshot: dict, ts: float = 0.0) -> None:
        """Write one snapshot line (caller supplies its monotonic ``ts``)."""
        record = {"ts": ts, "wall": time.time()}
        record.update(snapshot)
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        self.lines_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_snapshots(path: Union[str, Path]) -> List[dict]:
    """Read every snapshot line from a JSONL export.

    A torn final line (the writer crashed mid-record) is skipped rather
    than raised — the file is an append-only log, and everything before
    the tear is still good data.
    """
    snapshots: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                snapshots.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return snapshots


def last_snapshot(path: Union[str, Path]) -> Optional[dict]:
    """The most recent complete snapshot in the file, or ``None``."""
    snapshots = read_snapshots(path)
    return snapshots[-1] if snapshots else None
